"""Sharded, process-parallel GSD for paper-scale fleets.

The paper runs Algorithm 2 over 200 decision groups standing in for 216 K
servers; pushing the reproduction toward that scale (10k+ heterogeneous
groups) outgrows one Python process.  :class:`ShardedGSDSolver` partitions
the fleet's server groups into contiguous shards, each *owned* by a
persistent worker process from a warm :class:`~repro.ipc.pool
.ShardWorkerPool`, and runs the Gibbs chain as a coordinator that scatters
speculative blocks of candidate configurations to the owners.

**Where the shard boundary sits -- and why.**  The obvious decomposition
(split each ν/μ bisection *round* across shards and reduce partial sums)
cannot be bit-identical to the single-process solver without reimplementing
numpy's pairwise-summation blocking across process boundaries, and at
realistic fleet sizes the per-round IPC latency exceeds the centralized
numpy cost of the round itself.  The boundary here is therefore placed at
**candidate granularity**: a candidate configuration (the chain state with
one group's speed flipped) is evaluated *entirely inside* the owner shard's
process by the PR 8 batched water-filling engine
(:meth:`~repro.solvers.fastpath.EvaluationCache.objective_of_batch`), whose
on-count-partitioned ``(K, G)`` pipeline already preserves numpy's
pairwise-summation blocking per candidate.  No floating-point reduction
ever crosses a shard boundary, so a sharded solve is bit-identical to the
single-process :class:`~repro.solvers.gsd.GSDSolver` -- for *any* shard
count -- by construction.  Parallelism comes from the chain's speculative
blocks (the PR 8 ``batched=True`` discipline): one block's candidates fan
out across the owner shards and are evaluated concurrently.

**Determinism contract.**

- ``draw_mode="central"`` (default): every chain draw (group pick,
  proposal, acceptance uniform) comes from the coordinator RNG in exactly
  the consumption order of :class:`~repro.solvers.gsd.GSDSolver`, including
  the speculative rewind-and-replay resync.  The solved action, its inner
  ν/μ/regime, the objective, and the chain-determined counters equal the
  single-process solver's bit for bit.
- ``draw_mode="local"``: each group's *proposal* draws come from a
  dedicated worker-held substream ``default_rng([draw_seed, g])`` -- the
  paper's autonomous-server reading -- while group picks and acceptance
  uniforms stay with the coordinator (two draws per iteration, always).
  Streams are keyed by group, not by shard, so results are invariant to
  the shard count; checkpoints capture every worker stream's position
  (mirrored to the coordinator on each reply that consumed randomness), so
  SIGKILL-anywhere resume stays bit-identical.

**Fault semantics.**  All protocol traffic -- configure, evaluate /
collect, set-level, resync, commit -- crosses an ordinary
:class:`~repro.solvers.messaging.MessageBus` whose registered "agents" are
:class:`ShardAgent` proxies forwarding frames over the IPC channel.  A
fault injector substitutes :class:`repro.faults.bus.FaultyMessageBus` via
``bus_factory`` exactly as it does for
:class:`~repro.solvers.messaging.DistributedGSD`, and the semantics map
one-to-one: *loss* means the frame was never forwarded, *delay* means the
worker did the work but the reply missed the window, *duplicate* means the
frame was forwarded twice (frame handlers are overwrite-idempotent;
duplicated evaluates are deduplicated by sequence number at collect time).
:func:`~repro.solvers.messaging.exchange` retry/ack applies per message; a
pricing/evaluation round still silent after the retry budget is treated as
a failed exploration (the chain moves on), while a set-level or commit
that cannot land escapes as :class:`~repro.solvers.messaging
.BusTimeoutError` to the simulation layer's degradation policy.  Bulk
state transfer (the pickled problem structure, keyed by fingerprint in the
warm pool) is host-level infrastructure, not protocol traffic, and is not
subject to bus faults.

**Worker-death recovery.**  A worker that dies (e.g. SIGKILL) surfaces as
a closed channel; the proxy reports a lost reply (``None``), and on the
next delivery attempt the session respawns the worker and replays its
state -- problem structure, slot deltas, the authoritative level mirror,
and (local mode) the owned RNG stream positions -- before re-forwarding
the in-flight request.  Because every decision the chain made is
coordinator-side and every worker-side value is recomputed from replayed
state, recovery is invisible in the results: a run with a killed worker is
bit-identical to one without.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Sequence

import numpy as np

from ..cluster.fleet import FleetAction
from ..ipc.pool import ShardWorkerPool, worker_loop
from ..ipc.transport import Channel, ChannelClosedError
from .base import SlotSolution, SlotSolver
from .deadline import DeadlineExceededError, SolveDeadline
from .fastpath import EvaluationCache, FastPathStats
from .gsd import _BLOCK_MAX, _BLOCK_MIN, _OBJECTIVE_FLOOR, GSDTrace
from .load_distribution import distribute_load
from .messaging import BusTimeoutError, Message, MessageBus
from .problem import InfeasibleError, SlotProblem

__all__ = ["ShardPlan", "ShardAgent", "ShardedGSDSolver", "problem_fingerprint"]

#: Slot-varying ``SlotProblem`` fields shipped as per-slot deltas; the
#: remaining fields (fleet, substrate models) form the structure the warm
#: pool keys by fingerprint.
_SLOT_FIELDS = (
    "arrival_rate",
    "onsite",
    "price",
    "q",
    "V",
    "beta",
    "gamma",
    "delay_unit_cost",
    "peak_power_cap",
    "max_delay_cost",
    "network_delay",
    "pue_override",
    "slot_hours",
)

#: Neutral values the structure fingerprint normalizes the slot fields to.
_NEUTRAL_SLOT = dict(
    arrival_rate=0.0,
    onsite=0.0,
    price=0.0,
    q=0.0,
    V=1.0,
    beta=0.0,
    gamma=0.5,
    delay_unit_cost=0.0,
    peak_power_cap=None,
    max_delay_cost=None,
    network_delay=0.0,
    pue_override=None,
    slot_hours=1.0,
)


def problem_fingerprint(problem: SlotProblem) -> tuple[str, bytes]:
    """``(fingerprint, payload)`` for the problem's slot-invariant structure.

    The payload is the pickled problem with every per-slot scalar
    normalized away; the fingerprint keys the worker pool's warm cache, so
    consecutive slots over the same fleet ship only small delta dicts.
    """
    structure = replace(problem, prev_on_counts=None, **_NEUTRAL_SLOT)
    payload = pickle.dumps(structure, protocol=min(5, pickle.HIGHEST_PROTOCOL))
    return hashlib.sha256(payload).hexdigest()[:16], payload


def _slot_overrides(problem: SlotProblem) -> dict[str, Any]:
    """The per-slot delta dict a worker applies over the cached structure."""
    overrides: dict[str, Any] = {f: getattr(problem, f) for f in _SLOT_FIELDS}
    overrides["prev_on_counts"] = (
        None
        if problem.prev_on_counts is None
        else np.asarray(problem.prev_on_counts, dtype=np.float64)
    )
    return overrides


# ======================================================================
# Shard layout
# ======================================================================
@dataclass(frozen=True)
class ShardPlan:
    """Contiguous partition of ``num_groups`` groups into ``num_shards``.

    The first ``num_groups % num_shards`` shards own one extra group (the
    ``np.array_split`` convention), so any shard count -- divisor or not --
    yields a total, non-overlapping ownership map.
    """

    num_groups: int
    num_shards: int

    def __post_init__(self) -> None:
        if self.num_groups < 1:
            raise ValueError("need at least one group")
        if not 1 <= self.num_shards <= self.num_groups:
            raise ValueError("need 1 <= num_shards <= num_groups")

    @property
    def offsets(self) -> np.ndarray:
        """``offsets[i]:offsets[i+1]`` is shard ``i``'s group range."""
        base, extra = divmod(self.num_groups, self.num_shards)
        sizes = np.full(self.num_shards, base, dtype=np.int64)
        sizes[:extra] += 1
        return np.concatenate([[0], np.cumsum(sizes)])

    def owner(self, group: int) -> int:
        """The shard owning ``group``."""
        if not 0 <= group < self.num_groups:
            raise IndexError(f"group {group} out of range")
        return int(np.searchsorted(self.offsets, group, side="right") - 1)

    def groups(self, shard: int) -> range:
        """The contiguous group range shard ``shard`` owns."""
        off = self.offsets
        return range(int(off[shard]), int(off[shard + 1]))


# ======================================================================
# Worker program (runs in the forked child)
# ======================================================================
def _shard_worker_main(channel: Channel, index: int) -> None:
    """Entry point of one shard worker: a dispatch loop over solver ops."""
    from ..state.serialize import decode_rng, encode_rng

    problems: dict[str, SlotProblem] = {}
    state: dict[str, Any] = {
        "problem": None,
        "cache": None,
        "levels": None,
        "owned": range(0),
        "group_rngs": {},
        "explore": None,  # (rows, {g: snapshot}) of the last explore block
    }

    def _rng_states(groups) -> dict[int, dict]:
        rngs = state["group_rngs"]
        return {int(g): encode_rng(rngs[g]) for g in groups if g in rngs}

    def on_load_problem(frame: dict) -> dict:
        problems[frame["key"]] = pickle.loads(frame["payload"])
        while len(problems) > 4:  # tiny LRU: slots rarely juggle >2 fleets
            problems.pop(next(iter(problems)))
        return {}

    def on_begin(frame: dict) -> dict:
        base = problems.get(frame["key"])
        if base is None:
            return {"error": "unknown problem fingerprint", "missing_problem": True}
        problem = replace(base, **frame["overrides"])
        state["problem"] = problem
        state["cache"] = EvaluationCache(problem, warm_start=False)
        state["levels"] = np.asarray(frame["levels"], dtype=np.int64).copy()
        lo, hi = frame["owned"]
        state["owned"] = range(lo, hi)
        state["group_rngs"] = {
            int(g): decode_rng(s) for g, s in frame.get("group_rngs", {}).items()
        }
        state["explore"] = None
        return {}

    def on_sync_levels(frame: dict) -> dict:
        state["levels"] = np.asarray(frame["levels"], dtype=np.int64).copy()
        return {}

    def on_set_level(frame: dict) -> dict:
        state["levels"][int(frame["group"])] = int(frame["level"])
        return {}

    def on_explore(frame: dict) -> dict:
        """Draw one proposal per row from the owned per-group substreams."""
        rows = frame["rows"]  # [(block_index, group), ...] in block order
        rngs = state["group_rngs"]
        fleet = state["problem"].fleet
        snapshot = {g: rngs[g].bit_generator.state for _, g in rows}
        proposals = [
            int(rngs[g].integers(-1, fleet.num_levels[g])) for _, g in rows
        ]
        state["explore"] = (rows, snapshot)
        return {"proposals": proposals, "states": _rng_states({g for _, g in rows})}

    def on_resync(frame: dict) -> dict:
        """Un-draw speculative proposals past the consumed block prefix."""
        consumed = int(frame["consumed"])
        explore = state["explore"]
        if explore is None:
            return {"states": {}}
        rows, snapshot = explore
        rngs = state["group_rngs"]
        fleet = state["problem"].fleet
        for g, snap in snapshot.items():
            rngs[g].bit_generator.state = snap
        for bi, g in rows:
            if bi < consumed:
                rngs[g].integers(-1, fleet.num_levels[g])
        state["explore"] = None
        return {"states": _rng_states({g for _, g in rows})}

    def on_evaluate(frame: dict) -> dict:
        """Score this shard's slice of a speculative candidate block."""
        rows = frame["rows"]  # [(block_index, group | None, proposal), ...]
        levels = state["levels"]
        batch = np.repeat(levels[None, :], len(rows), axis=0)
        for r, (_, g, proposal) in enumerate(rows):
            if g is not None:
                batch[r, g] = proposal
        objectives = state["cache"].objective_of_batch(batch)
        return {"objectives": [float(v) for v in objectives]}

    def on_commit(frame: dict) -> dict:
        """Adopt the final configuration; optionally solve it exactly."""
        levels = np.asarray(frame["levels"], dtype=np.int64).copy()
        state["levels"] = levels
        cache: EvaluationCache = state["cache"]
        reply: dict[str, Any] = {
            # Raw dataclass fields (not ``as_dict``: its derived keys are
            # read-only properties) so the coordinator can sum shard stats.
            "stats": asdict(cache.stats),
            "states": _rng_states(state["owned"]),
        }
        if frame.get("want_solution"):
            problem: SlotProblem = state["problem"]
            dist = distribute_load(problem, levels)
            action = FleetAction(levels=levels, per_server_load=dist.per_server_load)
            reply.update(
                per_server_load=dist.per_server_load,
                evaluation=problem.evaluate(action),
                nu=float(dist.nu),
                regime=dist.regime,
                electricity_weight=float(dist.electricity_weight),
                inner_iters=int(dist.inner_iters),
            )
        return reply

    worker_loop(
        channel,
        {
            "load_problem": on_load_problem,
            "begin": on_begin,
            "sync_levels": on_sync_levels,
            "set_level": on_set_level,
            "explore": on_explore,
            "resync": on_resync,
            "evaluate": on_evaluate,
            "commit": on_commit,
        },
    )


# ======================================================================
# Coordinator side: session, proxy agents
# ======================================================================
class _ShardSession:
    """Authoritative per-solve state the coordinator can replay into a
    respawned worker: the problem (structure + slot deltas), the current
    level vector, and the local-mode RNG stream mirror."""

    def __init__(
        self,
        pool: ShardWorkerPool,
        plan: ShardPlan,
        fingerprint: str,
        payload: bytes,
        overrides: dict[str, Any],
        io_timeout_s: float,
    ):
        self.pool = pool
        self.plan = plan
        self.fingerprint = fingerprint
        self.payload = payload
        self.overrides = overrides
        self.io_timeout_s = io_timeout_s
        self.levels: np.ndarray | None = None
        self.rng_mirror: dict[int, dict] = {}

    # ------------------------------------------------------------------
    def _begin_frame_fields(self, shard: int) -> dict[str, Any]:
        owned = self.plan.groups(shard)
        return {
            "key": self.fingerprint,
            "overrides": self.overrides,
            "levels": self.levels,
            "owned": (owned.start, owned.stop),
            "group_rngs": {
                g: self.rng_mirror[g] for g in owned if g in self.rng_mirror
            },
        }

    def _checked(self, shard: int, op: str, reply: dict | None) -> dict:
        if reply is None:
            raise ChannelClosedError(
                f"shard {shard} silent on {op!r} for {self.io_timeout_s}s"
            )
        if "error" in reply:
            raise RuntimeError(f"shard {shard} failed {op!r}: {reply['error']}")
        return reply

    def prepare(self, shard: int) -> None:
        """Ship the heavy problem structure once per fingerprint (warm-pool
        key); raw infrastructure traffic, deliberately outside the bus."""
        handle = self.pool.worker(shard)
        if not handle.alive:
            # Worker died between solves (host failure, not a bus fault):
            # replace it before first contact; the fresh cache re-ships.
            handle = self.pool.respawn(shard)
        if handle.knows(self.fingerprint):
            return
        reply = self.pool.request(
            shard,
            "load_problem",
            key=self.fingerprint,
            payload=self.payload,
            timeout=self.io_timeout_s,
        )
        self._checked(shard, "load_problem", reply)
        handle.mark_known(self.fingerprint)

    def revive(self, shard: int):
        """Respawn a dead worker and replay everything it must hold."""
        handle = self.pool.respawn(shard)
        self.prepare(shard)
        reply = self.pool.request(
            shard, "begin", timeout=self.io_timeout_s, **self._begin_frame_fields(shard)
        )
        self._checked(shard, "begin", reply)
        return handle


class ShardAgent:
    """Coordinator-side bus proxy for one shard worker.

    Registered on the (possibly faulty) :class:`MessageBus` like any
    :class:`~repro.solvers.messaging.ServerAgent`; ``handle`` forwards the
    message as an IPC frame and maps transport outcomes onto the bus
    contract -- a silent or dead worker is a lost reply (``None``), never
    an exception, so :func:`~repro.solvers.messaging.exchange` retry/ack
    and :class:`BusTimeoutError` fallback apply unchanged.
    """

    def __init__(self, name: str, shard: int, session: _ShardSession):
        self.name = name
        self.shard = shard
        self.session = session
        self._pending: tuple[int, dict] | None = None  # in-flight evaluate
        self._result: tuple[int, dict] | None = None  # cached collect reply

    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> Message | None:
        # Worker death is a *host* failure, not a modeled bus fault, so one
        # delivery heals it in place (respawn + state replay + re-forward)
        # rather than burning the sender's retry budget: a run with a
        # killed worker stays bit-identical to one without.  A second death
        # in the same delivery is reported as a lost reply (``None``) and
        # escalates through the usual retry / BusTimeoutError path.
        for _attempt in range(2):
            try:
                self._heal()
                if msg.kind == "evaluate":
                    return self._forward_async(msg)
                if msg.kind == "collect":
                    return self._collect(msg)
                return self._roundtrip(msg)
            except ChannelClosedError:
                continue
        return None

    def _heal(self) -> None:
        if not self.session.pool.worker(self.shard).alive:
            handle = self.session.revive(self.shard)
            if self._pending is not None and (
                self._result is None or self._result[0] != self._pending[0]
            ):
                # The in-flight evaluate died with the worker; re-forward it
                # so the pending collect can still complete.
                handle.channel.send(self._pending[1])

    def _reply(self, msg: Message, kind: str, **payload: Any) -> Message:
        return Message(self.name, msg.sender, kind, payload)

    # ------------------------------------------------------------------
    def _roundtrip(self, msg: Message) -> Message | None:
        session = self.session
        reply = session.pool.request(
            self.shard, msg.kind, timeout=session.io_timeout_s, **msg.payload
        )
        if reply is None:
            return None  # reply missed the window: sender retries
        if "error" in reply:
            if reply.get("missing_problem"):
                # Fingerprint cache miss (first contact after respawn by an
                # external actor): re-ship and retry once, transparently.
                session.pool.worker(self.shard).forget_all()
                session.prepare(self.shard)
                return self._roundtrip(msg)
            raise RuntimeError(f"{self.name}: {reply['error']}")
        return self._reply(msg, "ack", **{
            k: v for k, v in reply.items() if k not in ("seq", "op")
        })

    def _forward_async(self, msg: Message) -> Message:
        pool = self.session.pool
        seq = pool.next_seq()
        frame = {"seq": seq, "op": "evaluate"}
        frame.update(msg.payload)
        pool.worker(self.shard).channel.send(frame)
        self._pending = (seq, frame)
        self._result = None
        return self._reply(msg, "ack", seq=seq)

    def _collect(self, msg: Message) -> Message | None:
        if self._pending is None:
            return None  # nothing in flight this round
        seq = self._pending[0]
        if self._result is not None and self._result[0] == seq:
            reply = self._result[1]
        else:
            reply = self.session.pool.collect(
                self.shard, seq, timeout=self.session.io_timeout_s
            )
            if reply is None:
                return None
            if "error" in reply:
                raise RuntimeError(f"{self.name}: {reply['error']}")
            self._result = (seq, reply)
        return self._reply(msg, "evaluated", objectives=reply["objectives"])


# ======================================================================
# The solver
# ======================================================================
class ShardedGSDSolver(SlotSolver):
    """Algorithm 2 over a process-sharded fleet (see module docstring).

    Parameters
    ----------
    shards:
        Worker-process count.  Shards in excess of the group count idle;
        the ownership map handles non-divisor counts.
    iterations, delta, rng, initial_levels, record_history, failed_groups:
        Exactly as :class:`~repro.solvers.gsd.GSDSolver`.
    draw_mode:
        ``"central"`` (default, bit-identical to ``GSDSolver``) or
        ``"local"`` (per-group worker substreams; shard-count invariant).
    draw_seed:
        Seed of the local-mode per-group substreams
        (``default_rng([draw_seed, g])``).
    bus_factory, retries:
        Fault-injection hooks, exactly as
        :class:`~repro.solvers.messaging.DistributedGSD`.
    deadline_ms:
        Per-solve wall-clock budget, enforced at speculative-block
        granularity (anytime incumbent on expiry, like ``GSDSolver``).
    io_timeout_s:
        Transport safety net per IPC round-trip.  This is *not* the fault
        model -- modeled loss/delay/duplication happens on the bus -- just
        the bound after which a wedged worker counts as a lost reply.
    """

    def __init__(
        self,
        *,
        shards: int,
        iterations: int = 500,
        delta: float | Callable[[int], float] = 1e6,
        rng: np.random.Generator | None = None,
        initial_levels: Sequence[int] | np.ndarray | None = None,
        record_history: bool = False,
        failed_groups: Sequence[int] | None = None,
        draw_mode: str = "central",
        draw_seed: int = 1,
        bus_factory: Callable[[], MessageBus] | None = None,
        retries: int = 0,
        deadline_ms: float | None = None,
        io_timeout_s: float = 120.0,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not callable(delta) and delta <= 0:
            raise ValueError("temperature delta must be positive")
        if draw_mode not in ("central", "local"):
            raise ValueError("draw_mode must be 'central' or 'local'")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if io_timeout_s <= 0:
            raise ValueError("io_timeout_s must be positive")
        self.shards = shards
        self.iterations = iterations
        self.delta = delta
        self.rng = rng if rng is not None else np.random.default_rng(1)
        self.initial_levels = (
            None
            if initial_levels is None
            else np.asarray(initial_levels, dtype=np.int64).copy()
        )
        self.record_history = record_history
        self.failed_groups = (
            np.unique(np.asarray(failed_groups, dtype=np.int64))
            if failed_groups is not None
            else np.empty(0, dtype=np.int64)
        )
        self.draw_mode = draw_mode
        self.draw_seed = int(draw_seed)
        self.bus_factory = bus_factory
        self.retries = retries
        self.deadline_ms = deadline_ms
        self.io_timeout_s = io_timeout_s
        self.last_bus: MessageBus | None = None
        self._pool: ShardWorkerPool | None = None
        self._solve_count = 0
        self._retries_used = 0
        #: Coordinator mirror of the local-mode worker stream positions,
        #: refreshed by every reply that consumed worker randomness; this
        #: is what checkpoints capture.
        self._group_rng_state: dict[int, dict] = {}

    # ------------------------------------------------------------ lifecycle
    @property
    def pool(self) -> ShardWorkerPool:
        """The warm worker pool, spawned on first use."""
        if self._pool is None:
            self._pool = ShardWorkerPool(self.shards, _shard_worker_main)
        return self._pool

    def close(self) -> None:
        """Terminate the worker pool (idempotent; pool respawns on reuse)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ShardedGSDSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Chain RNG, solve counter, and worker RNG stream positions."""
        from ..state.serialize import encode_rng, encode_rng_states

        state: dict[str, Any] = {
            "rng": encode_rng(self.rng),
            "solve_count": self._solve_count,
            "draw_mode": self.draw_mode,
        }
        if self.draw_mode == "local":
            state["group_rngs"] = encode_rng_states(self._group_rng_state)
        return state

    def load_state_dict(self, state: dict) -> None:
        from ..state.serialize import decode_rng, decode_rng_states

        self.rng = decode_rng(state["rng"])
        self._solve_count = int(state["solve_count"])
        self._group_rng_state = decode_rng_states(state.get("group_rngs", {}))

    # ------------------------------------------------------------------
    def _temperature(self, iteration: int) -> float:
        return self.delta(iteration) if callable(self.delta) else float(self.delta)

    def _exchange(
        self, bus: MessageBus, recipient: str, kind: str, payload: dict[str, Any]
    ) -> Message:
        """Retry/ack exchange with the coordinator's accounting (the same
        discipline as :class:`~repro.solvers.messaging.DualLoadCoordinator`)."""
        for attempt in range(self.retries + 1):
            reply = bus.send(Message("driver", recipient, kind, payload))
            if reply is not None:
                if attempt:
                    self._retries_used += attempt
                return reply
        self._retries_used += self.retries
        raise BusTimeoutError(
            f"no reply from {recipient!r} to {kind!r} after "
            f"{self.retries + 1} attempt(s)"
        )

    # ------------------------------------------------------------------
    def solve(self, problem: SlotProblem) -> SlotSolution:
        sp = self.telemetry.span("sharded.solve")
        with sp:
            return self._solve(problem, sp)

    def _solve(self, problem: SlotProblem, sp) -> SlotSolution:
        deadline = SolveDeadline(self.deadline_ms)
        problem.check_feasible()
        fleet = problem.fleet
        rng = self.rng
        G = fleet.num_groups
        if self.failed_groups.size and (
            self.failed_groups.min() < 0 or self.failed_groups.max() >= G
        ):
            raise ValueError("failed group index out of range")
        healthy = np.setdiff1d(np.arange(G), self.failed_groups)
        if healthy.size == 0:
            raise ValueError("every group has failed")

        S = min(self.shards, G)
        plan = ShardPlan(G, S)
        fingerprint, payload = problem_fingerprint(problem)
        session = _ShardSession(
            self.pool, plan, fingerprint, payload,
            _slot_overrides(problem), self.io_timeout_s,
        )
        bus = self.bus_factory() if self.bus_factory is not None else MessageBus()
        agents = [ShardAgent(f"shard-{i}", i, session) for i in range(S)]
        for a in agents:
            bus.register(a)
        self.last_bus = bus
        respawns_before = self.pool.respawns

        local = self.draw_mode == "local"
        if local:
            # Per-group substreams, resumed from the checkpoint mirror.
            for g in range(G):
                if g not in self._group_rng_state:
                    self._group_rng_state[g] = np.random.default_rng(
                        [self.draw_seed, g]
                    ).bit_generator.state
            session.rng_mirror = dict(self._group_rng_state)

        if self.initial_levels is not None:
            levels = self.initial_levels.copy()
            if levels.shape != (G,):
                raise ValueError("initial_levels must have one entry per group")
        else:
            levels = (fleet.num_levels - 1).astype(np.int64)
        levels[self.failed_groups] = -1
        session.levels = levels

        # Configure every shard over the bus (faults and retries apply;
        # the heavy structure ships out-of-band, keyed by fingerprint).
        for i in range(S):
            session.prepare(i)
            self._exchange(
                bus, f"shard-{i}", "begin", session._begin_frame_fields(i)
            )

        def evaluate_rows(
            rows_by_shard: dict[int, list[tuple[int, int | None, int]]],
        ) -> dict[int, float]:
            """Scatter candidate rows to their owner shards and gather.

            Rows of a shard whose evaluate or collect round stays silent
            past the retry budget come back ``inf`` -- a lost pricing
            round is a failed exploration, exactly the
            :class:`DistributedGSD` stance.
            """
            t0 = time.perf_counter() if sp else 0.0
            posted: list[int] = []
            for shard in sorted(rows_by_shard):
                try:
                    self._exchange(
                        bus, f"shard-{shard}", "evaluate",
                        {"rows": rows_by_shard[shard]},
                    )
                    posted.append(shard)
                except BusTimeoutError:
                    pass
            out: dict[int, float] = {}
            for shard in posted:
                try:
                    reply = self._exchange(bus, f"shard-{shard}", "collect", {})
                except BusTimeoutError:
                    continue
                for (bi, _, _), obj in zip(
                    rows_by_shard[shard], reply.payload["objectives"]
                ):
                    out[bi] = float(obj)
            for shard, rows in rows_by_shard.items():
                for bi, _, _ in rows:
                    out.setdefault(bi, np.inf)
            if sp:
                sp.add("sharded.evaluate", time.perf_counter() - t0)
            return out

        def score_base(base_levels: np.ndarray) -> float:
            return evaluate_rows({0: [(0, None, 0)]})[0]

        current = score_base(levels)
        if not np.isfinite(current):
            levels = (fleet.num_levels - 1).astype(np.int64)
            levels[self.failed_groups] = -1
            session.levels = levels
            for i in range(S):
                self._exchange(
                    bus, f"shard-{i}", "sync_levels", {"levels": levels}
                )
            current = score_base(levels)
        best_levels, best = levels.copy(), current

        hist_chain = np.empty(self.iterations)
        hist_best = np.empty(self.iterations)
        hist_acc = np.zeros(self.iterations, dtype=bool)
        hist_temp = np.empty(self.iterations)
        n_solves = 0
        last_improve = 0
        spec_blocks = spec_full = spec_resyncs = spec_wasted = 0

        tele = self.telemetry
        started = time.perf_counter() if tele.enabled else 0.0
        solve_index = -1
        if tele.enabled:
            solve_index = self._solve_count
            self._solve_count += 1

        # Speculative block loop: identical structure (and, in central
        # mode, identical RNG consumption) to GSDSolver's batched path;
        # only the candidate scoring crosses the bus.
        it = 0
        block = _BLOCK_MIN
        while it < self.iterations:
            if deadline.expired():
                break
            B = min(block, self.iterations - it)
            spec_blocks += 1
            snapshot = rng.bit_generator.state
            specs: list[tuple[int, int, float | None]] = []
            if local:
                # Group picks + uniforms stay central (always two draws per
                # iteration); proposals come from the owners' substreams.
                picks = [
                    int(healthy[rng.integers(0, healthy.size)]) for _ in range(B)
                ]
                uniforms = [float(rng.random()) for _ in range(B)]
                explore_by_shard: dict[int, list[tuple[int, int]]] = {}
                for bi, g in enumerate(picks):
                    explore_by_shard.setdefault(plan.owner(g), []).append((bi, g))
                proposals: dict[int, int] = {}
                explored_shards = sorted(explore_by_shard)
                for shard in explored_shards:
                    reply = self._exchange(
                        bus, f"shard-{shard}", "explore",
                        {"rows": explore_by_shard[shard]},
                    )
                    for (bi, _), p in zip(
                        explore_by_shard[shard], reply.payload["proposals"]
                    ):
                        proposals[bi] = int(p)
                    session.rng_mirror.update(
                        {int(g): s for g, s in reply.payload["states"].items()}
                    )
                for bi in range(B):
                    g = picks[bi]
                    p = proposals[bi]
                    u = uniforms[bi] if p != levels[g] else None
                    specs.append((g, p, u))
            else:
                explored_shards = []
                for _ in range(B):
                    g = int(healthy[rng.integers(0, healthy.size)])
                    proposal = int(rng.integers(-1, fleet.num_levels[g]))
                    if proposal == levels[g]:
                        specs.append((g, proposal, None))  # no eval, no uniform
                    else:
                        specs.append((g, proposal, float(rng.random())))

            cand = [bi for bi in range(B) if specs[bi][2] is not None]
            objs: dict[int, float] = {}
            if cand:
                rows_by_shard: dict[int, list[tuple[int, int | None, int]]] = {}
                for bi in cand:
                    g, proposal, _ = specs[bi]
                    rows_by_shard.setdefault(plan.owner(g), []).append(
                        (bi, g, proposal)
                    )
                objs = evaluate_rows(rows_by_shard)

            finite: dict[int, bool] = {}
            consumed = 0
            diverged = False
            for bi in range(B):
                i = it + bi
                delta = self._temperature(i)
                hist_temp[i] = delta
                g, proposal, u = specs[bi]
                if u is None:
                    hist_chain[i], hist_best[i] = current, best
                    consumed += 1
                    continue
                explored = float(objs[bi])
                n_solves += 1
                is_finite = bool(np.isfinite(explored))
                finite[bi] = is_finite
                if is_finite:
                    ge = max(explored, _OBJECTIVE_FLOOR)
                    gs = max(current, _OBJECTIVE_FLOOR)
                    exponent = np.clip(
                        delta * (1.0 / ge - 1.0 / gs), -700.0, 700.0
                    )
                    accept = u < 1.0 / (1.0 + np.exp(-exponent))
                else:
                    accept = False
                    if not local:
                        diverged = True  # scalar GSD draws no uniform here
                if accept:
                    levels[g] = proposal
                    session.levels = levels
                    # The accept/revert broadcast (Algorithm 2 line 5) must
                    # reach every shard or their mirrors diverge; escape as
                    # BusTimeoutError to the degradation policy otherwise.
                    for i2 in range(S):
                        self._exchange(
                            bus, f"shard-{i2}", "set_level",
                            {"group": int(g), "level": int(proposal)},
                        )
                    current = explored
                    hist_acc[i] = True
                    if explored < best:
                        best = explored
                        best_levels = levels.copy()
                        last_improve = i + 1
                    diverged = True  # later rows scored a stale base
                hist_chain[i], hist_best[i] = current, best
                consumed += 1
                if diverged:
                    break

            if diverged:
                spec_resyncs += 1
                spec_wasted += len(cand) - sum(1 for bi in cand if bi < consumed)
                rng.bit_generator.state = snapshot
                if local:
                    # Central stream: two draws per consumed iteration.
                    for k in range(consumed):
                        rng.integers(0, healthy.size)
                        rng.random()
                    # Worker substreams: un-draw the discarded proposals.
                    for shard in explored_shards:
                        reply = self._exchange(
                            bus, f"shard-{shard}", "resync",
                            {"consumed": consumed},
                        )
                        session.rng_mirror.update(
                            {int(g): s for g, s in reply.payload["states"].items()}
                        )
                else:
                    for k in range(consumed):
                        g2 = int(healthy[rng.integers(0, healthy.size)])
                        rng.integers(-1, fleet.num_levels[g2])
                        if specs[k][2] is not None and finite.get(k, False):
                            rng.random()
                block = _BLOCK_MIN
            else:
                spec_full += 1
                block = min(2 * block, _BLOCK_MAX)
            it += consumed

        completed = it
        truncated = completed < self.iterations
        if truncated:
            hist_chain = hist_chain[:completed]
            hist_best = hist_best[:completed]
            hist_acc = hist_acc[:completed]
            hist_temp = hist_temp[:completed]
            if tele.enabled:
                tele.emit(
                    "deadline.expired",
                    solver=self.name(),
                    budget_ms=float(self.deadline_ms),
                    elapsed_ms=deadline.elapsed_ms(),
                    completed=completed,
                    planned=self.iterations,
                    best_feasible=bool(np.isfinite(best)),
                )
                tele.metrics.counter("deadline.expirations").inc()
            if not np.isfinite(best):
                raise DeadlineExceededError(
                    f"sharded GSD deadline ({self.deadline_ms} ms) expired "
                    f"after {completed}/{self.iterations} iterations with no "
                    "feasible incumbent"
                )

        if not np.isfinite(best):
            raise InfeasibleError(
                "GSD chain never reached a configuration satisfying the "
                "operational caps; increase iterations or relax the caps"
            )

        # Final commit: land the best configuration on every shard and have
        # shard 0 produce the exact solution.  Like DistributedGSD, a
        # transient outage gets a few whole-round retries; a persistent one
        # escapes to the caller's degradation policy.
        t_final = time.perf_counter() if sp else 0.0
        commit_attempts = 1 if self.retries == 0 else 3
        stats = FastPathStats()
        solution_reply: Message | None = None
        for attempt in range(commit_attempts):
            try:
                stats = FastPathStats()
                for i in range(S):
                    reply = self._exchange(
                        bus, f"shard-{i}", "commit",
                        {"levels": best_levels, "want_solution": i == 0},
                    )
                    for key, value in reply.payload["stats"].items():
                        setattr(stats, key, getattr(stats, key) + int(value))
                    if local:
                        states = {
                            int(g): s
                            for g, s in reply.payload["states"].items()
                        }
                        session.rng_mirror.update(states)
                    if i == 0:
                        solution_reply = reply
                break
            except BusTimeoutError:
                if attempt == commit_attempts - 1:
                    raise
        assert solution_reply is not None
        if local:
            self._group_rng_state.update(session.rng_mirror)
        pay = solution_reply.payload
        action = FleetAction(
            levels=best_levels, per_server_load=pay["per_server_load"]
        )
        final_evaluation = pay["evaluation"]
        if sp:
            sp.add("sharded.finalize", time.perf_counter() - t_final)

        if tele.enabled:
            elapsed = time.perf_counter() - started
            acceptance = float(hist_acc.mean()) if completed else 0.0
            metrics = tele.metrics
            metrics.counter("gsd.solves").inc()
            metrics.counter("gsd.inner_solves").inc(stats.inner_solves)
            metrics.counter("gsd.evaluations").inc(n_solves)
            metrics.histogram("gsd.solve_time_s").observe(elapsed)
            metrics.histogram("gsd.acceptance_rate").observe(acceptance)
            tele.emit(
                "sharded.solve",
                solve_index=solve_index,
                shards=S,
                iterations=completed,
                inner_solves=stats.inner_solves,
                evaluations=n_solves,
                best_objective=float(best),
                acceptance_rate=acceptance,
                messages=bus.delivered,
                respawns=self.pool.respawns - respawns_before,
                solve_time_s=elapsed,
            )

        info: dict[str, Any] = {
            "chain_levels": levels.copy(),
            "inner_solves": stats.inner_solves,
            "evaluations": n_solves,
            "fastpath": stats.as_dict(),
            "final_objective": best,
            "speculation": {
                "enabled": True,
                "blocks": spec_blocks,
                "full_blocks": spec_full,
                "resyncs": spec_resyncs,
                "wasted_evaluations": spec_wasted,
            },
            "sharding": {
                "shards": S,
                "draw_mode": self.draw_mode,
                "plan": [len(plan.groups(i)) for i in range(S)],
                "respawns": self.pool.respawns - respawns_before,
            },
            "load_distribution": {
                "nu": pay["nu"],
                "regime": pay["regime"],
                "electricity_weight": pay["electricity_weight"],
                "inner_iters": pay["inner_iters"],
            },
            "messages": bus.delivered,
            "messages_by_kind": dict(bus.by_kind),
            "retries_used": self._retries_used,
        }
        if self.deadline_ms is not None:
            info["deadline"] = {
                "budget_ms": float(self.deadline_ms),
                "elapsed_ms": deadline.elapsed_ms(),
                "expired": truncated,
                "completed": completed,
                "planned": self.iterations,
            }
        fault_stats = getattr(bus, "fault_stats", None)
        if fault_stats is not None:
            info["bus_faults"] = fault_stats()
        if self.record_history:
            info["trace"] = GSDTrace(
                chain_objective=hist_chain,
                best_objective=hist_best,
                accepted=hist_acc,
                temperature=hist_temp,
            )
        return SlotSolution(action=action, evaluation=final_evaluation, info=info)
