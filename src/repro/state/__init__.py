"""Crash-safe run state: atomic writes, checkpoints, and record files.

Long-horizon COCA runs carry state the paper's guarantees depend on -- the
Eq. (17) carbon-deficit queue, the applied-``V`` history, the switching
state, every seeded RNG stream -- and a process crash at slot 5,000 of an
8,760-slot budgeting period used to lose all of it.  This package makes a
run *survivable*:

- :mod:`~repro.state.atomic` -- the shared write-temp + fsync + rename
  pattern, so no consumer of this repo ever reads a torn file;
- :mod:`~repro.state.serialize` -- exact JSON round-trips for the pieces a
  checkpoint must carry (numpy arrays, RNG bit-generator states, fleet
  actions) plus the environment fingerprint a resume validates against;
- :mod:`~repro.state.checkpoint` -- versioned, CRC-checksummed checkpoint
  files in a bounded rotation, with corrupt-skipping recovery;
- :mod:`~repro.state.records` -- :class:`~repro.sim.metrics.SimulationRecord`
  save/load for bit-exact golden diffs.

The contract extends the fault subsystem's replay guarantee across process
boundaries: kill a run at slot ``k``, ``repro resume`` from the newest
valid checkpoint, and the remaining slots replay **bit-identically** to an
uninterrupted run.  See ``docs/OPERATIONS.md`` for the runbook.
"""

from .atomic import atomic_write_bytes, atomic_write_text, commit_file, fsync_dir
from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointWriter,
    checkpoint_path,
    dumps_checkpoint,
    latest_valid_checkpoint,
    list_checkpoints,
    load_checkpoint,
    loads_checkpoint,
    write_checkpoint,
)
from .records import load_record, record_mismatches, save_record
from .serialize import (
    canonical_dumps,
    decode_action,
    decode_array,
    decode_rng,
    decode_rng_states,
    encode_action,
    encode_array,
    encode_rng,
    encode_rng_states,
    environment_fingerprint,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointWriter",
    "atomic_write_bytes",
    "atomic_write_text",
    "canonical_dumps",
    "checkpoint_path",
    "commit_file",
    "decode_action",
    "decode_array",
    "decode_rng",
    "dumps_checkpoint",
    "encode_action",
    "encode_array",
    "encode_rng",
    "encode_rng_states",
    "decode_rng_states",
    "environment_fingerprint",
    "fsync_dir",
    "latest_valid_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "load_record",
    "loads_checkpoint",
    "record_mismatches",
    "save_record",
    "write_checkpoint",
]
