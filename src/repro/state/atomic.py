"""Atomic, durable file writes (write temp + fsync + rename).

POSIX ``rename(2)`` within one filesystem is atomic: readers observe either
the old file or the complete new one, never a prefix.  Combined with an
``fsync`` of the data before the rename (so the content is on disk when the
name flips) and an ``fsync`` of the containing directory after (so the
rename itself survives a power cut), this is the standard recipe for files
that must never be seen torn -- checkpoints, fault schedules, metrics
snapshots, finished traces.

Two shapes are provided:

- :func:`atomic_write_bytes` / :func:`atomic_write_text` -- one-shot
  replacement of a whole file (checkpoints, ``--schedule-out``);
- :func:`commit_file` -- finalize a file handle that *streamed* into a
  temporary path (the JSONL tracer writes ``<path>.part`` during the run
  and commits it into place on close, so a crash leaves the readable
  ``.part`` prefix for forensics and never a torn final file).
"""

from __future__ import annotations

import os
import tempfile
from typing import IO

__all__ = ["atomic_write_bytes", "atomic_write_text", "commit_file", "fsync_dir"]


def fsync_dir(path: str) -> None:
    """Best-effort fsync of the directory containing ``path``.

    Durability of a rename requires syncing the directory entry; some
    filesystems (and most CI containers) refuse ``open(dir)`` or
    ``fsync`` on directories, which is fine -- atomicity does not depend
    on it, only power-cut durability does.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def commit_file(fh: IO, final_path: str, *, sync: bool = True) -> None:
    """Flush, fsync, close ``fh`` and atomically rename it to ``final_path``.

    ``fh`` must be an open handle whose ``name`` is a real path on the same
    filesystem as ``final_path`` (a sibling temp file).  After this returns
    the target exists with the complete content; the temp name is gone.
    """
    fh.flush()
    if sync:
        os.fsync(fh.fileno())
    fh.close()
    os.replace(fh.name, final_path)
    if sync:
        fsync_dir(final_path)


def atomic_write_bytes(path: str, data: bytes, *, sync: bool = True) -> None:
    """Atomically replace ``path`` with ``data``.

    The temp file lives in the target's directory (same filesystem, so the
    rename is atomic) with a unique name (safe under concurrent writers,
    e.g. parallel sweeps checkpointing side by side).  On any error the
    temp file is removed and the original ``path`` is left untouched.
    """
    path = str(path)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix="." + os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if sync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if sync:
        fsync_dir(path)


def atomic_write_text(path: str, text: str, *, sync: bool = True) -> None:
    """Atomically replace ``path`` with UTF-8 encoded ``text``."""
    atomic_write_bytes(path, text.encode("utf-8"), sync=sync)
