"""Versioned, checksummed, atomically-written checkpoint files.

File format (two lines of UTF-8 text, so a checkpoint is greppable):

.. code-block:: text

    {"crc32": C, "format": "repro-checkpoint", "payload_bytes": N, "slot": K, "version": 1}
    {...canonical JSON payload, exactly N bytes...}

The CRC is computed over ``b"<slot>\\n" + payload``, so a bit flip anywhere
-- in the payload, in the header's slot field, or in the separator -- is
detected: payload flips break the CRC directly, a flipped ``slot`` digit
disagrees with the checksummed one, a flipped ``payload_bytes`` digit fails
the length check, and a mangled header fails to parse.  Truncation fails
the length check before the CRC is even consulted.

Writes go through :func:`repro.state.atomic.atomic_write_bytes` (temp +
fsync + rename), so a crash mid-write leaves the previous rotation intact
and never a torn file.  :func:`latest_valid_checkpoint` walks the rotation
newest-first, skipping (and reporting, via ``state.checkpoint_rejected``
telemetry) anything corrupt -- the recovery path after an unclean shutdown.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass

from ..telemetry import Telemetry, coerce
from .atomic import atomic_write_bytes
from .serialize import canonical_dumps

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointWriter",
    "dumps_checkpoint",
    "latest_valid_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "loads_checkpoint",
    "write_checkpoint",
]

#: Format discriminator in every checkpoint header.
CHECKPOINT_MAGIC = "repro-checkpoint"
#: Current checkpoint schema revision; readers reject files from the future.
CHECKPOINT_VERSION = 1

_FILENAME = "ckpt-{slot:08d}.json"
_FILENAME_RE = re.compile(r"^ckpt-(\d{8})\.json$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, parsed, or validated."""


@dataclass(frozen=True)
class Checkpoint:
    """One validated checkpoint: the slot it resumes *into* plus the state."""

    slot: int
    state: dict
    path: str | None = None


def _crc(slot: int, payload: bytes) -> int:
    return zlib.crc32(f"{slot}\n".encode() + payload) & 0xFFFFFFFF


def dumps_checkpoint(slot: int, state: dict) -> bytes:
    """Serialize ``state`` into the two-line checkpoint format."""
    if slot < 0:
        raise CheckpointError("checkpoint slot must be non-negative")
    payload = canonical_dumps(state)
    header = canonical_dumps(
        {
            "format": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "slot": int(slot),
            "payload_bytes": len(payload),
            "crc32": _crc(slot, payload),
        }
    )
    return header + b"\n" + payload + b"\n"


def loads_checkpoint(data: bytes, *, path: str | None = None) -> Checkpoint:
    """Parse and validate checkpoint bytes; raises :class:`CheckpointError`
    on any corruption (truncation, bit flips, wrong format, future version)."""
    where = f" ({path})" if path else ""
    newline = data.find(b"\n")
    if newline < 0:
        raise CheckpointError(f"checkpoint has no header line{where}")
    try:
        header = json.loads(data[:newline])
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"checkpoint header is not valid JSON{where}: {exc}")
    if not isinstance(header, dict) or header.get("format") != CHECKPOINT_MAGIC:
        raise CheckpointError(f"not a {CHECKPOINT_MAGIC} file{where}")
    version = header.get("version")
    if not isinstance(version, int) or version > CHECKPOINT_VERSION or version < 1:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r}{where} "
            f"(this build reads <= {CHECKPOINT_VERSION})"
        )
    slot = header.get("slot")
    expected_bytes = header.get("payload_bytes")
    expected_crc = header.get("crc32")
    if not isinstance(slot, int) or not isinstance(expected_bytes, int) or not isinstance(expected_crc, int):
        raise CheckpointError(f"checkpoint header fields malformed{where}")
    payload = data[newline + 1 :]
    if payload.endswith(b"\n"):
        payload = payload[:-1]
    if len(payload) != expected_bytes:
        raise CheckpointError(
            f"checkpoint truncated{where}: header promises {expected_bytes} "
            f"payload bytes, found {len(payload)}"
        )
    if _crc(slot, payload) != expected_crc:
        raise CheckpointError(f"checkpoint checksum mismatch{where}")
    try:
        state = json.loads(payload)
    except (ValueError, UnicodeDecodeError) as exc:  # pragma: no cover - CRC guards this
        raise CheckpointError(f"checkpoint payload is not valid JSON{where}: {exc}")
    if not isinstance(state, dict):
        raise CheckpointError(f"checkpoint payload must be a JSON object{where}")
    return Checkpoint(slot=slot, state=state, path=path)


def checkpoint_path(directory: str, slot: int) -> str:
    """The rotation filename for ``slot`` inside ``directory``."""
    return os.path.join(str(directory), _FILENAME.format(slot=int(slot)))


def write_checkpoint(directory: str, slot: int, state: dict, *, sync: bool = True) -> str:
    """Atomically write one checkpoint file; returns its path."""
    os.makedirs(str(directory), exist_ok=True)
    path = checkpoint_path(directory, slot)
    atomic_write_bytes(path, dumps_checkpoint(slot, state), sync=sync)
    return path


def load_checkpoint(path: str) -> Checkpoint:
    """Read and validate one checkpoint file."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}")
    return loads_checkpoint(data, path=str(path))


def list_checkpoints(directory: str) -> list[str]:
    """Rotation files in ``directory``, oldest (lowest slot) first.

    Only well-*named* files are listed; validity is the loader's job.
    """
    try:
        names = os.listdir(str(directory))
    except OSError:
        return []
    matched = sorted(
        (int(m.group(1)), name)
        for name in names
        if (m := _FILENAME_RE.match(name)) is not None
    )
    return [os.path.join(str(directory), name) for _, name in matched]


def latest_valid_checkpoint(
    directory: str, *, telemetry: Telemetry | None = None
) -> Checkpoint | None:
    """The newest checkpoint in ``directory`` that validates.

    Corrupt files (truncated by a crash, bit-flipped on disk) are skipped
    newest-first with a ``state.checkpoint_rejected`` telemetry event each,
    so recovery falls back to the previous good rotation entry instead of
    failing outright.  Returns ``None`` when nothing validates.
    """
    tele = coerce(telemetry)
    for path in reversed(list_checkpoints(directory)):
        try:
            return load_checkpoint(path)
        except CheckpointError as exc:
            if tele.enabled:
                tele.emit("state.checkpoint_rejected", path=str(path), error=str(exc))
                tele.metrics.counter("state.checkpoints_rejected").inc()
    return None


class CheckpointWriter:
    """Cadenced checkpoint writes with a bounded rotation.

    Parameters
    ----------
    directory:
        Where the rotation lives (created on first write).
    every:
        Write cadence in slots: a checkpoint lands after each slot ``t``
        with ``(t + 1) % every == 0``.
    keep:
        Rotation depth; older files beyond the ``keep`` newest are deleted
        after each successful write (at least 2 is sensible, so a corrupt
        newest file still has a fallback).
    sync:
        Fsync data and directory on each write (disable only in tests).
    """

    def __init__(self, directory: str, *, every: int = 1, keep: int = 3, sync: bool = True):
        if every < 1:
            raise ValueError("checkpoint cadence `every` must be >= 1")
        if keep < 1:
            raise ValueError("rotation depth `keep` must be >= 1")
        self.directory = str(directory)
        self.every = int(every)
        self.keep = int(keep)
        self.sync = sync
        self.written = 0
        self.telemetry: Telemetry = coerce(None)

    def bind_telemetry(self, telemetry: Telemetry | None) -> None:
        """Attach the run's telemetry (``state.checkpoint`` events)."""
        self.telemetry = coerce(telemetry)

    def due(self, slot: int) -> bool:
        """Whether a checkpoint is scheduled at resume-slot ``slot``."""
        return slot > 0 and slot % self.every == 0

    def write(self, slot: int, state: dict) -> str:
        """Write one checkpoint now (regardless of cadence) and rotate."""
        path = write_checkpoint(self.directory, slot, state, sync=self.sync)
        self.written += 1
        self._rotate()
        tele = self.telemetry
        if tele.enabled:
            tele.emit(
                "state.checkpoint",
                slot=int(slot),
                path=path,
                bytes=os.path.getsize(path),
                kept=min(self.written, self.keep),
            )
            tele.metrics.counter("state.checkpoints").inc()
        return path

    def maybe_write(self, slot: int, build_state) -> str | None:
        """Write at the cadence; ``build_state`` is only called when due, so
        off-cadence slots pay nothing for state capture."""
        if not self.due(slot):
            return None
        return self.write(slot, build_state())

    def _rotate(self) -> None:
        for path in list_checkpoints(self.directory)[: -self.keep or None]:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - racing cleanup is fine
                pass
