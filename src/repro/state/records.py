"""Bit-exact save/load/diff of :class:`~repro.sim.metrics.SimulationRecord`.

A record file is the artifact the crash-recovery harness and the CI
``resume-smoke`` job compare: an interrupted-then-resumed run must produce
a record **byte-for-byte equal** to the uninterrupted golden.  ``np.savez``
preserves every float64 bit, and :func:`record_mismatches` compares with
``np.array_equal`` -- no tolerances anywhere, by design.
"""

from __future__ import annotations

import dataclasses
import io

import numpy as np

from ..sim.metrics import SimulationRecord
from .atomic import atomic_write_bytes

__all__ = ["load_record", "record_mismatches", "save_record"]

_ARRAY_FIELDS = tuple(
    f.name for f in dataclasses.fields(SimulationRecord) if f.name != "controller"
)


def save_record(record: SimulationRecord, path: str) -> None:
    """Atomically write ``record`` as an ``.npz`` archive."""
    buf = io.BytesIO()
    arrays = {name: np.asarray(getattr(record, name)) for name in _ARRAY_FIELDS}
    np.savez(buf, controller=np.asarray(record.controller), **arrays)
    atomic_write_bytes(str(path), buf.getvalue())


def load_record(path: str) -> SimulationRecord:
    """Inverse of :func:`save_record`."""
    with np.load(str(path), allow_pickle=False) as data:
        return SimulationRecord(
            controller=str(data["controller"]),
            **{name: data[name] for name in _ARRAY_FIELDS},
        )


def record_mismatches(a: SimulationRecord, b: SimulationRecord) -> list[str]:
    """Names of fields where two records differ *at all* (bitwise on arrays).

    Empty list means the records are identical -- the pass condition for
    resume verification.
    """
    bad = []
    if a.controller != b.controller:
        bad.append("controller")
    for name in _ARRAY_FIELDS:
        if not np.array_equal(np.asarray(getattr(a, name)), np.asarray(getattr(b, name))):
            bad.append(name)
    return bad
