"""Exact JSON round-trips for checkpointed run state.

A checkpoint must restore a run *bit-identically*, so every encoder here is
lossless:

- floats survive because ``json.dumps`` emits ``repr(float)``, the shortest
  decimal that parses back to the same IEEE-754 double;
- numpy arrays carry their dtype string so ``float64``/``int64`` content
  reconstructs exactly;
- RNG state is the bit generator's own state dict (plain ints and strings;
  Python's JSON handles the 128-bit PCG64 words natively).

:func:`canonical_dumps` is the byte-level normal form the checkpoint CRC is
computed over: sorted keys, no whitespace, ``allow_nan=False`` (a NaN in
run state is a bug upstream, not something to round-trip -- telemetry
sanitizes non-finite values to ``null`` at its own boundary).  Because the
form is canonical, save -> load -> save is byte-identical, which is what
the hypothesis suite in ``tests/test_state.py`` pins.
"""

from __future__ import annotations

import json
import zlib
from typing import Any

import numpy as np

from ..cluster.fleet import FleetAction

__all__ = [
    "canonical_dumps",
    "decode_action",
    "decode_array",
    "decode_rng",
    "decode_rng_states",
    "encode_action",
    "encode_array",
    "encode_rng",
    "encode_rng_states",
    "environment_fingerprint",
]


def _plain(value: Any):
    """Normalize numpy scalars/arrays to native JSON types (exactly)."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(
        f"state value of type {type(value).__name__} is not JSON-serializable"
    )


def canonical_dumps(value: Any) -> bytes:
    """The canonical (sorted, compact, strict) JSON bytes of ``value``."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False, default=_plain
    ).encode("utf-8")


# ---------------------------------------------------------------- arrays
def encode_array(arr: np.ndarray | None) -> dict | None:
    """Lossless JSON form of an array (``None`` passes through)."""
    if arr is None:
        return None
    arr = np.asarray(arr)
    return {"dtype": arr.dtype.str, "data": arr.tolist()}


def decode_array(obj: dict | None) -> np.ndarray | None:
    """Inverse of :func:`encode_array`."""
    if obj is None:
        return None
    return np.asarray(obj["data"], dtype=np.dtype(obj["dtype"]))


def encode_action(action: FleetAction | None) -> dict | None:
    """Lossless JSON form of a fleet action (levels + per-server loads)."""
    if action is None:
        return None
    return {
        "levels": encode_array(action.levels),
        "per_server_load": encode_array(action.per_server_load),
    }


def decode_action(obj: dict | None) -> FleetAction | None:
    """Inverse of :func:`encode_action`."""
    if obj is None:
        return None
    return FleetAction(
        levels=decode_array(obj["levels"]),
        per_server_load=decode_array(obj["per_server_load"]),
    )


# ---------------------------------------------------------------- RNG state
def encode_rng(rng: np.random.Generator) -> dict:
    """The generator's full bit-generator state (JSON-safe as-is)."""
    return rng.bit_generator.state


def decode_rng(state: dict) -> np.random.Generator:
    """A fresh generator positioned exactly at ``state``."""
    cls = getattr(np.random, str(state["bit_generator"]))
    bit_generator = cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def encode_rng_states(states: dict[int, dict]) -> dict[str, dict]:
    """A keyed family of bit-generator states, JSON-safe and key-sorted.

    Used for per-group RNG substreams (the sharded solver's local draw
    mode): keys become strings for JSON, sorted so the canonical encoding
    is stable regardless of insertion order.
    """
    return {str(int(k)): v for k, v in sorted(states.items())}


def decode_rng_states(obj: dict[str, dict]) -> dict[int, dict]:
    """Inverse of :func:`encode_rng_states` (keys back to ints)."""
    return {int(k): v for k, v in obj.items()}


# ---------------------------------------------------------------- fingerprint
def environment_fingerprint(environment) -> int:
    """CRC32 over the environment's input traces.

    A checkpoint is only meaningful against the exact environment that
    produced it (same workload, prices, renewables, horizon); resuming
    against anything else would *silently* break the bit-identity contract.
    The fingerprint is cheap (one pass over four float64 arrays) and
    rebuilt deterministically from the scenario arguments, so a resume can
    refuse a mismatched world up front.

    Environments that know their own identity better than their trace
    arrays do -- e.g. :class:`repro.serve.LiveEnvironment`, whose "traces"
    are a growing prefix of resolved feed frames -- expose a
    ``fingerprint()`` method, which wins over the generic trace walk.
    """
    fingerprint = getattr(environment, "fingerprint", None)
    if callable(fingerprint):
        return int(fingerprint())
    crc = zlib.crc32(str(environment.horizon).encode())
    for values in (
        environment.workload.values,
        environment.price.values,
        environment.portfolio.onsite.values,
        environment.portfolio.offsite.values,
    ):
        crc = zlib.crc32(np.ascontiguousarray(values, dtype=np.float64).tobytes(), crc)
    return crc & 0xFFFFFFFF
