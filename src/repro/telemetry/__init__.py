"""Telemetry: structured tracing, metrics, and profiling for the pipeline.

The subsystem has three layers, bundled by :class:`Telemetry`:

- **Tracing** (:mod:`~repro.telemetry.tracer`): structured per-slot events
  -- controller decisions, deficit-queue updates, realized outcomes,
  dropped load, GSD iteration summaries -- streamed to memory or JSONL.
- **Metrics** (:mod:`~repro.telemetry.metrics`): counters, gauges, and
  exact-percentile histograms (opt-in bounded reservoirs for long-running
  services) in a name-keyed registry, renderable as Prometheus text
  exposition (:mod:`~repro.telemetry.prometheus`).
- **Profiling** (:mod:`~repro.telemetry.timing`,
  :mod:`~repro.telemetry.spans`): scoped wall-clock timers wired into the
  hot paths (P3 solves, the slot loop, geo dispatch), nested into
  parent-linked attribution spans when one is open.

Everything is opt-in: ``simulate()``, the solvers, and the sweep drivers
take ``telemetry=None``, and the disabled default (:data:`NULL_TELEMETRY`)
is a true no-op, so uninstrumented runs are bit-identical to a build
without this package.  See ``docs/OBSERVABILITY.md`` for the event schema
and metric names.
"""

from .bundle import NULL_TELEMETRY, Telemetry, coerce
from .exporters import (
    TraceError,
    load_trace,
    metrics_to_markdown,
    read_jsonl_events,
    write_jsonl_events,
    write_metrics,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .prometheus import render_prometheus
from .spans import NULL_SPAN, Span, SpanStack, SpanTimer
from .summary import render_trace_summary, span_hotspots, trace_summary_tables
from .timing import NULL_TIMER, ScopedTimer
from .tracer import (
    NULL_TRACER,
    SCHEMA_VERSION,
    InMemoryTracer,
    JsonlTracer,
    NullTracer,
    RingBufferTracer,
    Tracer,
    new_run_id,
)

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "coerce",
    "SCHEMA_VERSION",
    "new_run_id",
    "TraceError",
    "load_trace",
    "Tracer",
    "NullTracer",
    "InMemoryTracer",
    "JsonlTracer",
    "RingBufferTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ScopedTimer",
    "NULL_TIMER",
    "Span",
    "SpanStack",
    "SpanTimer",
    "NULL_SPAN",
    "render_prometheus",
    "span_hotspots",
    "read_jsonl_events",
    "write_jsonl_events",
    "metrics_to_markdown",
    "write_metrics",
    "trace_summary_tables",
    "render_trace_summary",
]
