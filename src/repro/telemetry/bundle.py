"""The ``Telemetry`` bundle threaded through the pipeline.

One object carries both halves of the observability story -- the event
:class:`~repro.telemetry.tracer.Tracer` and the
:class:`~repro.telemetry.metrics.MetricsRegistry` -- so instrumented code
takes a single optional ``telemetry=`` parameter.  ``None`` resolves to the
shared :data:`NULL_TELEMETRY`, whose ``enabled`` flag is False: hot paths
guard with ``if telemetry.enabled:`` and uninstrumented runs execute the
exact same arithmetic (and RNG draws) as before the subsystem existed.

Process-pool workers use :meth:`Telemetry.recording` +
:meth:`Telemetry.drain` to ship their events and metric state back to the
parent, which folds them in with :meth:`Telemetry.absorb` -- event order
then matches serial execution because the parent absorbs in task order.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .spans import NULL_SPAN, Span, SpanStack, SpanTimer, _NullSpan
from .timing import NULL_TIMER, ScopedTimer
from .tracer import NULL_TRACER, InMemoryTracer, Tracer

__all__ = ["Telemetry", "NULL_TELEMETRY", "coerce"]


class Telemetry:
    """A tracer plus a metrics registry, passed as one handle."""

    enabled: bool = True

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        *,
        spans: bool = True,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = SpanStack(self.tracer)
        # ``spans=False`` keeps event tracing while suppressing span
        # attribution -- the knob bench_span_overhead uses to price spans
        # alone, available to any caller that wants leaner traces.
        self._spans_enabled = bool(spans)

    @classmethod
    def recording(cls) -> "Telemetry":
        """A telemetry whose events accumulate in memory (tests, workers)."""
        return cls(tracer=InMemoryTracer())

    # ----------------------------------------------------- conveniences
    def emit(self, kind: str, /, **fields) -> None:
        """Forward one event to the tracer."""
        self.tracer.emit(kind, **fields)

    def timer(self, name: str) -> ScopedTimer | SpanTimer:
        """A scoped timer recording into histogram ``name``.

        When a span is already open (and the tracer is listening), the timer
        additionally closes the loop on attribution: the same clock pair
        feeds the histogram *and* the enclosing span's aggregated child
        bucket, so existing timer call sites nest under slot/solve spans
        for free.
        """
        histogram = self.metrics.histogram(name)
        if self._spans_enabled and self.tracer.enabled and self.spans._stack:
            return SpanTimer(histogram, self.spans._stack[-1], name)
        return ScopedTimer(histogram)

    def span(self, name: str, /, **fields) -> Span | _NullSpan:
        """Open an attribution span (use as ``with telemetry.span(...)``).

        Returns the shared no-op :data:`NULL_SPAN` when no tracer is
        listening, so spans cost nothing on metrics-only or disabled runs.
        """
        if not self._spans_enabled or not self.tracer.enabled:
            return NULL_SPAN
        return self.spans.open(name, fields or None)

    @property
    def events(self) -> list[dict]:
        """Recorded events, when the tracer keeps them; else empty."""
        return getattr(self.tracer, "events", [])

    # ----------------------------------------------------- pool transport
    def drain(self) -> tuple[list[dict], dict]:
        """Picklable payload ``(events, metrics_state)`` for the parent."""
        return list(self.events), self.metrics.state()

    def absorb(self, events: list[dict], metrics_state: dict) -> None:
        """Fold a worker's drained payload into this telemetry."""
        for event in events:
            fields = dict(event)
            kind = fields.pop("kind")
            self.tracer.emit(kind, **fields)
        self.metrics.merge_state(metrics_state)


class _NullTelemetry(Telemetry):
    """Disabled bundle: no events, no metrics, no clock reads."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(tracer=NULL_TRACER)

    def emit(self, kind: str, /, **fields) -> None:
        pass

    def timer(self, name: str):
        return NULL_TIMER

    def span(self, name: str, /, **fields):
        return NULL_SPAN


#: Shared disabled instance; ``coerce(None)`` returns it.
NULL_TELEMETRY = _NullTelemetry()


def coerce(telemetry: Telemetry | None) -> Telemetry:
    """Resolve an optional parameter to a usable bundle."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
