"""Exporters: read traces back, snapshot metrics to CSV or markdown.

The JSONL trace format is self-describing (every line is one event dict
with a ``kind``), so round-tripping is just ``json.loads`` per line.
Metrics snapshots flatten :meth:`MetricsRegistry.snapshot_rows` into either
CSV (machine consumption) or a markdown table (reports); ``write_metrics``
picks by file extension.
"""

from __future__ import annotations

import csv
import json

from .metrics import MetricsRegistry

__all__ = [
    "read_jsonl_events",
    "write_jsonl_events",
    "metrics_to_markdown",
    "write_metrics",
]

#: Column order of a metrics snapshot (union over instrument types).
_SNAPSHOT_COLUMNS = (
    "metric",
    "type",
    "value",
    "count",
    "mean",
    "p50",
    "p90",
    "p99",
    "max",
)


def read_jsonl_events(path: str) -> list[dict]:
    """Load a JSONL trace written by :class:`~repro.telemetry.tracer.JsonlTracer`."""
    events: list[dict] = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSONL event") from exc
            if not isinstance(event, dict) or "kind" not in event:
                raise ValueError(f"{path}:{line_no}: event must be a dict with a 'kind'")
            events.append(event)
    return events


def write_jsonl_events(events: list[dict], path: str) -> None:
    """Write events (dicts with a ``kind``) as a JSONL trace file."""
    from .tracer import JsonlTracer

    with JsonlTracer(path) as tracer:
        for event in events:
            fields = dict(event)
            kind = fields.pop("kind")
            tracer.emit(kind, **fields)


def _snapshot_table(registry: MetricsRegistry) -> tuple[list[str], list[dict]]:
    rows = registry.snapshot_rows()
    used = [c for c in _SNAPSHOT_COLUMNS if any(c in row for row in rows)]
    return used, rows


def metrics_to_markdown(registry: MetricsRegistry, *, title: str | None = None) -> str:
    """Render the registry snapshot as a markdown table."""
    columns, rows = _snapshot_table(registry)
    lines: list[str] = []
    if title:
        lines.append(f"# {title}\n")
    if not rows:
        lines.append("(no metrics recorded)")
        return "\n".join(lines) + "\n"

    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.6g}"
        return str(v)

    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(fmt(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines) + "\n"


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Snapshot the registry to ``path``: markdown for ``.md``, else CSV."""
    if str(path).endswith(".md"):
        with open(path, "w") as fh:
            fh.write(metrics_to_markdown(registry, title="metrics snapshot"))
        return
    columns, rows = _snapshot_table(registry)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns or list(_SNAPSHOT_COLUMNS))
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
