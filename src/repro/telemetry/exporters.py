"""Exporters: read traces back, snapshot metrics to CSV or markdown.

The JSONL trace format is self-describing (every line is one event dict
with a ``kind``), so round-tripping is just ``json.loads`` per line.
Metrics snapshots flatten :meth:`MetricsRegistry.snapshot_rows` into either
CSV (machine consumption) or a markdown table (reports); ``write_metrics``
picks by file extension.
"""

from __future__ import annotations

import csv
import json
import os

from .metrics import MetricsRegistry
from .tracer import SCHEMA_VERSION

__all__ = [
    "TraceError",
    "read_jsonl_events",
    "load_trace",
    "write_jsonl_events",
    "metrics_to_markdown",
    "write_metrics",
]


class TraceError(ValueError):
    """A trace file cannot be consumed: missing, empty, corrupt, or from an
    incompatible (newer) schema version.  The message is written for a CLI
    user, so commands print it verbatim instead of a traceback."""

#: Column order of a metrics snapshot (union over instrument types).
_SNAPSHOT_COLUMNS = (
    "metric",
    "type",
    "value",
    "count",
    "mean",
    "p50",
    "p90",
    "p99",
    "max",
)


def read_jsonl_events(path: str, *, tolerate_torn_tail: bool = False) -> list[dict]:
    """Load a JSONL trace written by :class:`~repro.telemetry.tracer.JsonlTracer`.

    ``tolerate_torn_tail`` accepts a trace whose *final* line is truncated
    or unparseable -- the signature of reading a ``.part`` file while (or
    after) a writer was killed mid-append -- by dropping that line.  Invalid
    lines anywhere else still raise: those are corruption, not liveness.
    """
    events: list[dict] = []
    with open(path) as fh:
        lines = fh.readlines()
    last_line_no = len(lines)
    for line_no, line in enumerate(lines, 1):
        is_tail = line_no == last_line_no and (
            not line.endswith("\n") or tolerate_torn_tail
        )
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
            if not isinstance(event, dict) or "kind" not in event:
                raise ValueError("event must be a dict with a 'kind'")
        except (json.JSONDecodeError, ValueError) as exc:
            if tolerate_torn_tail and is_tail:
                break  # a writer was mid-append; the prefix is the trace
            raise ValueError(f"{path}:{line_no}: invalid JSONL event") from exc
        events.append(event)
    return events


def load_trace(path: str) -> list[dict]:
    """Load a trace for a CLI consumer, with human-readable failures.

    Wraps :func:`read_jsonl_events` and raises :class:`TraceError` (whose
    message is safe to print verbatim) when the file is missing, is empty,
    is not valid JSONL, or contains events stamped with a schema version
    newer than this build understands.  Pre-``schema_version`` traces
    (schema 1, written before the field existed) are accepted.

    A ``.part`` path -- the in-progress stream of a still-running (or
    killed) run -- is read with a tolerated torn tail, so operators can
    inspect a live service.  When ``path`` itself is missing but a
    ``.part`` sibling exists, the error says so instead of a bare
    not-found: the run just has not committed its trace yet.
    """
    path = str(path)
    in_progress = path.endswith(".part")
    if not os.path.exists(path):
        hint = ""
        if not in_progress and os.path.exists(path + ".part"):
            hint = (
                f"\nhint: {path}.part exists -- the run is still in progress "
                f"(or was killed); read the live stream with: {path}.part"
            )
        raise TraceError(f"trace file not found: {path}{hint}")
    try:
        events = read_jsonl_events(path, tolerate_torn_tail=in_progress)
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    except ValueError as exc:
        raise TraceError(f"corrupt trace: {exc}") from exc
    if not events:
        raise TraceError(f"trace {path} is empty (no events); was the run traced?")
    newest = max(int(e.get("schema_version", 1)) for e in events)
    if newest > SCHEMA_VERSION:
        raise TraceError(
            f"trace {path} uses event schema version {newest}, but this build "
            f"only understands versions <= {SCHEMA_VERSION}; upgrade repro to read it"
        )
    return events


def write_jsonl_events(events: list[dict], path: str) -> None:
    """Write events (dicts with a ``kind``) as a JSONL trace file."""
    from .tracer import JsonlTracer

    with JsonlTracer(path) as tracer:
        for event in events:
            fields = dict(event)
            kind = fields.pop("kind")
            tracer.emit(kind, **fields)


def _snapshot_table(registry: MetricsRegistry) -> tuple[list[str], list[dict]]:
    rows = registry.snapshot_rows()
    used = [c for c in _SNAPSHOT_COLUMNS if any(c in row for row in rows)]
    return used, rows


def metrics_to_markdown(registry: MetricsRegistry, *, title: str | None = None) -> str:
    """Render the registry snapshot as a markdown table."""
    columns, rows = _snapshot_table(registry)
    lines: list[str] = []
    if title:
        lines.append(f"# {title}\n")
    if not rows:
        lines.append("(no metrics recorded)")
        return "\n".join(lines) + "\n"

    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.6g}"
        return str(v)

    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(fmt(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines) + "\n"


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Snapshot the registry to ``path``: markdown for ``.md``, else CSV."""
    if str(path).endswith(".md"):
        with open(path, "w") as fh:
            fh.write(metrics_to_markdown(registry, title="metrics snapshot"))
        return
    columns, rows = _snapshot_table(registry)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns or list(_SNAPSHOT_COLUMNS))
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
