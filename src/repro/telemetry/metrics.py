"""Run-level metrics: counters, gauges, and histograms behind one registry.

Where the tracer answers "what happened at slot t", the registry answers
"how did the run behave overall": how long P3 solves took, how many GSD
iterations were needed, how deep the deficit queue got.  Components
get-or-create instruments by name (``registry.histogram("gsd.solve_time_s")``)
so metric identity is a string contract, not an object one -- the same
convention as Prometheus-style registries in production controllers.

Histograms keep raw observations by default (batch runs are at most a few
hundred thousand slots), so any percentile is exact; registries from
process-pool workers merge losslessly via :meth:`MetricsRegistry.state` /
:meth:`MetricsRegistry.merge_state`.

Long-running services are the exception: ``repro serve`` observes one
latency sample per slot forever, so an unbounded raw list is a slow memory
leak.  ``MetricsRegistry(reservoir=N)`` opts every histogram into a
deterministic seeded reservoir (Algorithm R): the first ``N`` observations
are kept verbatim (percentiles stay exact), after which each new sample
replaces a uniformly-chosen slot, giving a uniform sample of the whole
stream under fixed memory.  ``count``/``total``/``mean``/``max`` stay exact
in either mode via running accumulators.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing total (events, MWh, solves)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for signed values")
        self.value += amount


class Gauge:
    """Last-observed value of a fluctuating quantity (queue depth, rate)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


class Histogram:
    """Distribution of observations: exact by default, reservoir-bounded opt-in.

    Without ``reservoir``, every observation is retained and percentiles are
    exact (the original contract).  With ``reservoir=N``, at most ``N``
    observations are kept -- exact until ``N`` samples have arrived, a
    seeded uniform reservoir sample of the full stream afterwards -- while
    ``count``/``total``/``mean``/``max`` remain exact running statistics.
    The replacement draws come from a private ``numpy`` generator seeded
    from ``(seed, crc32(name))``, so identically-configured registries fed
    the same stream keep identical samples (no global RNG is touched).
    """

    __slots__ = ("name", "_values", "_reservoir", "_rng", "_stream", "_count", "_total", "_max")

    def __init__(self, name: str, *, reservoir: int | None = None, seed: int = 0) -> None:
        if reservoir is not None and reservoir <= 0:
            raise ValueError("reservoir size must be positive (or None for exact)")
        self.name = name
        self._values: list[float] = []
        self._reservoir = reservoir
        self._rng = (
            np.random.default_rng([seed, zlib.crc32(name.encode("utf-8"))])
            if reservoir is not None
            else None
        )
        self._stream = 0  # samples offered to the reservoir (drives slot choice)
        self._count = 0  # logical observations (exact, survives merges)
        self._total = 0.0
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        v = float(value)
        self._count += 1
        self._total += v
        if v > self._max:
            self._max = v
        self._offer(v)

    def _offer(self, v: float) -> None:
        self._stream += 1
        r = self._reservoir
        if r is None or len(self._values) < r:
            self._values.append(v)
        else:
            j = int(self._rng.integers(0, self._stream))
            if j < r:
                self._values[j] = v

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        # Unbounded histograms recompute from the raw list so merged and
        # serial registries agree bit-for-bit (same left-to-right sum);
        # bounded (or cross-mode merged) ones use the running accumulator.
        if self._reservoir is None and self._count == len(self._values):
            return float(sum(self._values))
        return self._total

    @property
    def mean(self) -> float:
        return self.total / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Percentile ``p`` in [0, 100] (linear interpolation).

        Exact in unbounded mode; in reservoir mode, computed over the
        uniform sample (exact until the reservoir first fills).
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self._values:
            return 0.0
        return float(np.percentile(np.asarray(self._values), p))

    def values(self) -> np.ndarray:
        """Copy of the retained observations (the reservoir sample if bounded)."""
        return np.asarray(self._values, dtype=np.float64)

    def _ingest(
        self,
        values,
        count: int | None = None,
        total: float | None = None,
        vmax: float | None = None,
    ) -> None:
        """Fold another histogram's exported state into this one."""
        vals = [float(v) for v in values]
        n = int(count) if count is not None else len(vals)
        t = float(total) if total is not None else float(sum(vals))
        m = float(vmax) if vmax is not None else (max(vals) if vals else None)
        if self._reservoir is None:
            self._values.extend(vals)
            self._stream += len(vals)
        else:
            for v in vals:
                self._offer(v)
        self._count += n
        self._total += t
        if m is not None and m > self._max:
            self._max = m


class MetricsRegistry:
    """Name -> instrument store with get-or-create accessors.

    A name is bound to one instrument type for the registry's lifetime;
    asking for the same name with a different accessor raises, catching
    typo-induced double registration early.
    """

    def __init__(self, *, reservoir: int | None = None, seed: int = 0) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._reservoir = reservoir
        self._seed = seed

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(name, reservoir=self._reservoir, seed=self._seed)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, not a Histogram"
            )
        return instrument

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # ----------------------------------------------------- reporting
    def snapshot_rows(self) -> list[dict]:
        """One flat dict per instrument, sorted by name (table-ready)."""
        rows: list[dict] = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                rows.append({"metric": name, "type": "counter", "value": inst.value})
            elif isinstance(inst, Gauge):
                rows.append({"metric": name, "type": "gauge", "value": inst.value})
            else:
                rows.append(
                    {
                        "metric": name,
                        "type": "histogram",
                        "count": inst.count,
                        "mean": inst.mean,
                        "p50": inst.percentile(50),
                        "p90": inst.percentile(90),
                        "p99": inst.percentile(99),
                        "max": inst.max,
                    }
                )
        return rows

    # ----------------------------------------------------- merge transport
    def state(self) -> dict:
        """Picklable full state (for process-pool workers)."""
        return {
            "counters": {
                n: i.value for n, i in self._instruments.items() if isinstance(i, Counter)
            },
            "gauges": {
                n: i.value for n, i in self._instruments.items() if isinstance(i, Gauge)
            },
            "histograms": {
                n: {
                    "values": list(i._values),
                    "count": i._count,
                    "total": i.total,
                    "max": i._max if i._count else None,
                }
                for n, i in self._instruments.items()
                if isinstance(i, Histogram)
            },
        }

    def merge_state(self, state: dict) -> None:
        """Fold another registry's :meth:`state` into this one.

        Counters add, histograms concatenate (or feed the reservoir when
        bounded), gauges take the incoming value (last write wins, matching
        serial execution order).  Histogram payloads may be the legacy bare
        list of values or the dict form carrying exact count/total/max.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in state.get("histograms", {}).items():
            hist = self.histogram(name)
            if isinstance(payload, dict):
                hist._ingest(
                    payload.get("values", ()),
                    count=payload.get("count"),
                    total=payload.get("total"),
                    vmax=payload.get("max"),
                )
            else:
                hist._ingest(payload)
