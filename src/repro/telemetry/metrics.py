"""Run-level metrics: counters, gauges, and histograms behind one registry.

Where the tracer answers "what happened at slot t", the registry answers
"how did the run behave overall": how long P3 solves took, how many GSD
iterations were needed, how deep the deficit queue got.  Components
get-or-create instruments by name (``registry.histogram("gsd.solve_time_s")``)
so metric identity is a string contract, not an object one -- the same
convention as Prometheus-style registries in production controllers.

Histograms keep raw observations (runs are at most a few hundred thousand
slots), so any percentile is exact; registries from process-pool workers
merge losslessly via :meth:`MetricsRegistry.state` /
:meth:`MetricsRegistry.merge_state`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing total (events, MWh, solves)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for signed values")
        self.value += amount


class Gauge:
    """Last-observed value of a fluctuating quantity (queue depth, rate)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


class Histogram:
    """Distribution of observations with exact percentiles."""

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return float(sum(self._values))

    @property
    def mean(self) -> float:
        return self.total / self.count if self._values else 0.0

    @property
    def max(self) -> float:
        return float(max(self._values)) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile ``p`` in [0, 100] (linear interpolation)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self._values:
            return 0.0
        return float(np.percentile(np.asarray(self._values), p))

    def values(self) -> np.ndarray:
        """Copy of the raw observations."""
        return np.asarray(self._values, dtype=np.float64)


class MetricsRegistry:
    """Name -> instrument store with get-or-create accessors.

    A name is bound to one instrument type for the registry's lifetime;
    asking for the same name with a different accessor raises, catching
    typo-induced double registration early.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # ----------------------------------------------------- reporting
    def snapshot_rows(self) -> list[dict]:
        """One flat dict per instrument, sorted by name (table-ready)."""
        rows: list[dict] = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                rows.append({"metric": name, "type": "counter", "value": inst.value})
            elif isinstance(inst, Gauge):
                rows.append({"metric": name, "type": "gauge", "value": inst.value})
            else:
                rows.append(
                    {
                        "metric": name,
                        "type": "histogram",
                        "count": inst.count,
                        "mean": inst.mean,
                        "p50": inst.percentile(50),
                        "p90": inst.percentile(90),
                        "p99": inst.percentile(99),
                        "max": inst.max,
                    }
                )
        return rows

    # ----------------------------------------------------- merge transport
    def state(self) -> dict:
        """Picklable full state (for process-pool workers)."""
        return {
            "counters": {
                n: i.value for n, i in self._instruments.items() if isinstance(i, Counter)
            },
            "gauges": {
                n: i.value for n, i in self._instruments.items() if isinstance(i, Gauge)
            },
            "histograms": {
                n: list(i._values)
                for n, i in self._instruments.items()
                if isinstance(i, Histogram)
            },
        }

    def merge_state(self, state: dict) -> None:
        """Fold another registry's :meth:`state` into this one.

        Counters add, histograms concatenate, gauges take the incoming
        value (last write wins, matching serial execution order).
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, values in state.get("histograms", {}).items():
            self.histogram(name)._values.extend(float(v) for v in values)
