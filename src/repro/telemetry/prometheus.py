"""Prometheus text exposition for the :class:`MetricsRegistry`.

Renders the registry in the Prometheus text format (version 0.0.4) so a
standard scraper pointed at the serve loop's ``/metrics`` endpoint ingests
the controller's cost/carbon/latency series with zero glue:

- :class:`~repro.telemetry.metrics.Counter` -> ``counter`` with the
  conventional ``_total`` suffix,
- :class:`~repro.telemetry.metrics.Gauge` -> ``gauge``,
- :class:`~repro.telemetry.metrics.Histogram` -> ``summary`` with
  ``{quantile="..."}`` sample lines plus exact ``_sum``/``_count``
  (quantiles come from the histogram's retained observations -- exact in
  batch mode, reservoir-sampled under ``repro serve``).

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): the registry's dotted names map dots to
underscores under a ``repro_`` namespace prefix, e.g.
``sim.solve_time_s`` -> ``repro_sim_solve_time_s``.
"""

from __future__ import annotations

import math
import re

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_prometheus", "PROMETHEUS_CONTENT_TYPE"]

#: Content-Type an HTTP endpoint should serve the rendered text under.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Summary quantiles exposed per histogram.
_QUANTILES = (0.5, 0.9, 0.99)

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str) -> str:
    sanitized = _INVALID.sub("_", name)
    if prefix:
        sanitized = f"{prefix}_{sanitized}"
    if not re.match(r"[a-zA-Z_:]", sanitized):
        sanitized = f"_{sanitized}"
    return sanitized


def _fmt(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry, *, prefix: str = "repro") -> str:
    """Render every instrument as Prometheus text exposition (0.0.4).

    Output is sorted by metric name, so identical registries render
    identical text (golden-testable).
    """
    lines: list[str] = []
    instruments = registry._instruments
    for name in sorted(instruments):
        inst = instruments[name]
        pname = _metric_name(name, prefix)
        if isinstance(inst, Counter):
            lines.append(f"# HELP {pname}_total Counter {name!r}.")
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {_fmt(inst.value)}")
        elif isinstance(inst, Gauge):
            lines.append(f"# HELP {pname} Gauge {name!r}.")
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_fmt(inst.value)}")
        elif isinstance(inst, Histogram):
            lines.append(f"# HELP {pname} Summary of histogram {name!r}.")
            lines.append(f"# TYPE {pname} summary")
            for q in _QUANTILES:
                lines.append(
                    f'{pname}{{quantile="{q}"}} {_fmt(inst.percentile(q * 100.0))}'
                )
            lines.append(f"{pname}_sum {_fmt(inst.total)}")
            lines.append(f"{pname}_count {inst.count}")
    return "\n".join(lines) + "\n" if lines else ""
