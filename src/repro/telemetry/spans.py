"""Hierarchical spans: parent-linked wall-clock attribution (schema v3).

Flat histograms answer "how long did P3 solves take overall"; spans answer
"where inside one solve did the time go".  ``with telemetry.span("gsd.solve")
as sp:`` opens a node on the per-telemetry :class:`SpanStack`; on exit one
``span`` event is emitted carrying the span's name, its id, its parent's id,
and both inclusive (``elapsed_s``) and exclusive (``exclusive_s``) wall time,
so a reader can rebuild the tree slot -> solve -> inner bisection without any
side channel.

Two design points keep the hot path honest:

* **Aggregated child buckets.**  The GSD inner loop evaluates thousands of
  candidate configurations per solve; emitting one event each would blow the
  PR 2 <=5% overhead budget.  :meth:`Span.add` instead accumulates
  ``(count, seconds)`` per child name, and the parent's single ``span``
  event carries them embedded as a ``children`` field
  (``{name: [count, seconds]}``) -- readers synthesize the child rows.
  Attribution stays exact; event volume stays O(spans), not O(buckets),
  which is what keeps span instrumentation inside the overhead budget.
* **Null variants.**  Disabled telemetry (and enabled telemetry with a null
  tracer) hands out the shared :data:`NULL_SPAN`, whose enter/exit/add do
  nothing -- no clock reads, no allocation, so uninstrumented runs remain
  bit-identical.

Span ids are small integers assigned in open order by the owning
:class:`SpanStack` -- deterministic for a deterministic workload, and unique
within a trace when combined with the ``run_id`` stamped by the tracer
(process-pool workers each run their own stack and run_id).
"""

from __future__ import annotations

import time

from .tracer import Tracer

__all__ = ["Span", "SpanStack", "SpanTimer", "NULL_SPAN"]


class Span:
    """One node of the attribution tree; a reentrant-free context manager."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "fields",
        "elapsed",
        "_stack",
        "_start",
        "_child_s",
        "_buckets",
    )

    def __init__(
        self,
        stack: "SpanStack",
        name: str,
        span_id: int,
        parent_id: int | None,
        depth: int,
        fields: dict,
    ) -> None:
        self._stack = stack
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.fields = fields
        self.elapsed = 0.0
        self._start = 0.0
        self._child_s = 0.0
        self._buckets: dict[str, list[float]] | None = None

    def __enter__(self) -> "Span":
        self._stack._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.elapsed = time.perf_counter() - self._start
        self._stack._pop(self)
        return False

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Accumulate ``seconds`` into the aggregated child bucket ``name``.

        Cheap enough for per-iteration hot loops: one dict update, no event
        until the parent closes.
        """
        buckets = self._buckets
        if buckets is None:
            buckets = self._buckets = {}
        slot = buckets.get(name)
        if slot is None:
            buckets[name] = [count, seconds]
        else:
            slot[0] += count
            slot[1] += seconds

    @property
    def exclusive(self) -> float:
        """Self time: inclusive minus time attributed to children."""
        return max(self.elapsed - self._child_s, 0.0)

    def __bool__(self) -> bool:
        return True


class _NullSpan:
    """Do-nothing span handed out when no tracer is listening."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    depth = 0
    elapsed = 0.0
    exclusive = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        pass

    def __bool__(self) -> bool:
        return False


#: Shared stateless instance; ``bool(NULL_SPAN)`` is False so callers can
#: write ``sp = telemetry.span(...)`` and guard bucket bookkeeping with
#: ``if sp:`` at zero cost on uninstrumented runs.
NULL_SPAN = _NullSpan()


class SpanStack:
    """Per-telemetry stack of open spans; emits ``span`` events on close."""

    __slots__ = ("tracer", "_stack", "_next_id")

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._stack: list[Span] = []
        self._next_id = 1

    @property
    def active(self) -> Span | None:
        """Innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def path(self) -> tuple[str, ...]:
        """Names of the open spans, outermost first."""
        return tuple(span.name for span in self._stack)

    def open(self, name: str, fields: dict | None = None) -> Span:
        """Build a span parented to the current innermost open span."""
        parent = self._stack[-1] if self._stack else None
        span_id = self._next_id
        self._next_id += 1
        return Span(
            self,
            name,
            span_id,
            parent.span_id if parent is not None else None,
            parent.depth + 1 if parent is not None else 0,
            fields or {},
        )

    # ------------------------------------------------------------ internals
    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exceptions unwinding through nested spans: pop everything
        # above ``span`` (those blocks exited abnormally without __exit__).
        stack = self._stack
        while stack:
            top = stack.pop()
            if top is span:
                break
        parent = stack[-1] if stack else None
        buckets = span._buckets
        if buckets:
            # One embedded dict instead of one event per bucket: at ~6
            # buckets/slot the difference is the whole overhead budget.
            # The span is closed, so handing the live dict to the tracer
            # is safe -- nothing mutates it afterwards.
            for count_seconds in buckets.values():
                span._child_s += count_seconds[1]
            self.tracer.emit(
                "span",
                name=span.name,
                span_id=span.span_id,
                parent_id=span.parent_id,
                depth=span.depth,
                elapsed_s=span.elapsed,
                exclusive_s=span.exclusive,
                children=buckets,
                **span.fields,
            )
        else:
            self.tracer.emit(
                "span",
                name=span.name,
                span_id=span.span_id,
                parent_id=span.parent_id,
                depth=span.depth,
                elapsed_s=span.elapsed,
                exclusive_s=span.exclusive,
                **span.fields,
            )
        if parent is not None:
            parent._child_s += span.elapsed


class SpanTimer:
    """Span-aware scoped timer: one clock pair feeds both sinks.

    Returned by :meth:`Telemetry.timer` when a span is already open, so the
    existing ``gsd.*``/``cd.*``/``sim.*`` timer call sites gain parent
    attribution without being touched: the elapsed time lands in the named
    histogram exactly as before *and* in the enclosing span's aggregated
    child bucket of the same name (it rides the parent's own ``span`` event
    rather than paying for one of its own).
    """

    __slots__ = ("_histogram", "_parent", "name", "elapsed", "_start")

    def __init__(self, histogram, parent: Span, name: str) -> None:
        self._histogram = histogram
        self._parent = parent
        self.name = name
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "SpanTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.elapsed = time.perf_counter() - self._start
        self._parent.add(self.name, self.elapsed)
        if self._histogram is not None:
            self._histogram.observe(self.elapsed)
        return False
