"""Trace summarization: turn a JSONL event stream back into tables.

``python -m repro telemetry run.jsonl`` lands here.  The summarizer only
relies on the shared event schema (see ``docs/OBSERVABILITY.md``): slot
events carry ``t``, timing fields end in ``_s``, and solver events are
namespaced (``gsd.*``, ``geo.*``).  Unknown kinds still appear in the
event-count table, so traces from future instrumentation degrade
gracefully.
"""

from __future__ import annotations

from collections import Counter as TallyCounter

import numpy as np

__all__ = ["trace_summary_tables", "render_trace_summary", "span_hotspots"]


def span_hotspots(events: list[dict], *, top: int = 20) -> list[dict]:
    """Aggregate v3 ``span`` events into a tree-rendered hotspot table.

    Spans are grouped by their *name path* (root -> ... -> name, resolved
    through ``parent_id`` links within each ``run_id``), so the thousands of
    per-slot ``slot -> gsd.solve -> gsd.inner_bisection`` instances collapse
    into one row each.  Rows come back in depth-first tree order, children
    sorted by inclusive time; the ``top`` highest-inclusive paths are kept
    (plus any ancestors needed to render the tree).  Traces without span
    events -- schema v1/v2, or uninstrumented runs -- yield an empty list.
    """
    # span_id -> (name, parent_id), per run so worker ids never collide.
    index: dict[tuple, tuple[str, object]] = {}
    span_events: list[dict] = []
    for event in events:
        if event.get("kind") != "span":
            continue
        span_events.append(event)
        key = (event.get("run_id"), event.get("span_id"))
        index[key] = (str(event.get("name", "?")), event.get("parent_id"))

    if not span_events:
        return []

    path_cache: dict[tuple, tuple[str, ...]] = {}

    def resolve_path(run: object, span_id: object) -> tuple[str, ...]:
        key = (run, span_id)
        cached = path_cache.get(key)
        if cached is not None:
            return cached
        entry = index.get(key)
        if entry is None:
            path: tuple[str, ...] = ("?",)
        else:
            name, parent_id = entry
            if parent_id is None:
                path = (name,)
            else:
                path = resolve_path(run, parent_id) + (name,)
        path_cache[key] = path
        return path

    aggregates: dict[tuple[str, ...], dict] = {}
    for event in span_events:
        path = resolve_path(event.get("run_id"), event.get("span_id"))
        agg = aggregates.setdefault(path, {"count": 0, "incl": 0.0, "excl": 0.0})
        agg["count"] += int(event.get("count", 1))
        agg["incl"] += float(event.get("elapsed_s", 0.0))
        agg["excl"] += float(event.get("exclusive_s", event.get("elapsed_s", 0.0)))
        # Aggregated child buckets ride the parent's event as a
        # ``children`` field ({name: [count, seconds]}); synthesize their
        # rows so the tree shows slot -> solve -> inner-bisection even
        # though the hot loop never paid for child events.
        for child_name, payload in (event.get("children") or {}).items():
            child_path = path + (str(child_name),)
            child = aggregates.setdefault(
                child_path, {"count": 0, "incl": 0.0, "excl": 0.0}
            )
            child["count"] += int(payload[0])
            child["incl"] += float(payload[1])
            child["excl"] += float(payload[1])

    root_total = sum(a["incl"] for p, a in aggregates.items() if len(p) == 1)
    ranked = sorted(aggregates, key=lambda p: aggregates[p]["incl"], reverse=True)
    keep: set[tuple[str, ...]] = set()
    for path in ranked[: max(top, 1)]:
        for depth in range(1, len(path) + 1):
            keep.add(path[:depth])

    rows: list[dict] = []

    def walk(prefix: tuple[str, ...]) -> None:
        children = [
            p for p in aggregates if len(p) == len(prefix) + 1 and p[: len(prefix)] == prefix
        ]
        for path in sorted(children, key=lambda p: aggregates[p]["incl"], reverse=True):
            if path not in keep:
                continue
            agg = aggregates[path]
            rows.append(
                {
                    "span": "  " * (len(path) - 1) + path[-1],
                    "count": agg["count"],
                    "incl [ms]": agg["incl"] * 1e3,
                    "excl [ms]": agg["excl"] * 1e3,
                    "% total": (100.0 * agg["incl"] / root_total) if root_total else 0.0,
                }
            )
            walk(path)

    walk(())
    return rows


def _percentile_row(label: str, values: list[float]) -> dict:
    arr = np.asarray(values, dtype=np.float64)
    return {
        "timer": label,
        "count": int(arr.size),
        "mean [ms]": float(arr.mean()) * 1e3,
        "p50 [ms]": float(np.percentile(arr, 50)) * 1e3,
        "p90 [ms]": float(np.percentile(arr, 90)) * 1e3,
        "p99 [ms]": float(np.percentile(arr, 99)) * 1e3,
        "max [ms]": float(arr.max()) * 1e3,
    }


def trace_summary_tables(events: list[dict]) -> dict[str, list[dict]]:
    """Digest events into named row tables.

    Returns a dict with (possibly empty) entries:

    ``events``
        One row per event kind with its count and ``t`` coverage.
    ``run``
        Aggregates over ``slot.outcome`` / ``queue.update`` events (cost,
        brown energy, dropped load, queue depth).
    ``timings``
        Wall-time percentiles per timing source (``slot.decision`` solve
        times, ``gsd.solve`` solve times, ``geo.dispatch`` times).
    ``gsd``
        Chain statistics from ``gsd.solve`` events.
    ``spans``
        Tree-rendered hotspot table from v3 ``span`` events (empty for
        v1/v2 traces; see :func:`span_hotspots`).
    """
    kinds: TallyCounter = TallyCounter()
    t_range: dict[str, tuple[float, float]] = {}
    timings: dict[str, list[float]] = {}
    outcome = {"cost": 0.0, "brown": 0.0, "dropped": 0.0, "slots": 0}
    queue_depths: list[float] = []
    gsd = {"solves": 0, "iterations": 0.0, "accept": [], "converged_at": []}

    for event in events:
        kind = event["kind"]
        kinds[kind] += 1
        t = event.get("t")
        if t is not None:
            lo, hi = t_range.get(kind, (t, t))
            t_range[kind] = (min(lo, t), max(hi, t))

        if kind == "slot.decision" and "solve_time_s" in event:
            timings.setdefault("slot.decision/solve_time_s", []).append(
                float(event["solve_time_s"])
            )
        elif kind == "slot.outcome":
            outcome["cost"] += float(event.get("cost", 0.0))
            outcome["brown"] += float(event.get("brown_energy", 0.0))
            outcome["dropped"] += float(event.get("dropped", 0.0))
            outcome["slots"] += 1
        elif kind == "queue.update":
            queue_depths.append(float(event.get("after", 0.0)))
        elif kind == "gsd.solve":
            gsd["solves"] += 1
            gsd["iterations"] += float(event.get("iterations", 0.0))
            if "acceptance_rate" in event:
                gsd["accept"].append(float(event["acceptance_rate"]))
            if "iterations_to_convergence" in event:
                gsd["converged_at"].append(float(event["iterations_to_convergence"]))
            if "solve_time_s" in event:
                timings.setdefault("gsd.solve/solve_time_s", []).append(
                    float(event["solve_time_s"])
                )
        elif kind == "geo.dispatch" and "solve_time_s" in event:
            timings.setdefault("geo.dispatch/solve_time_s", []).append(
                float(event["solve_time_s"])
            )

    tables: dict[str, list[dict]] = {
        "events": [],
        "run": [],
        "timings": [],
        "gsd": [],
        "spans": span_hotspots(events),
    }
    for kind in sorted(kinds):
        row = {"event": kind, "count": kinds[kind]}
        if kind in t_range:
            row["first t"] = t_range[kind][0]
            row["last t"] = t_range[kind][1]
        tables["events"].append(row)

    if outcome["slots"]:
        tables["run"].append(
            {
                "slots": outcome["slots"],
                "total cost [$]": outcome["cost"],
                "avg cost [$/h]": outcome["cost"] / outcome["slots"],
                "brown [MWh]": outcome["brown"],
                "dropped [req/s]": outcome["dropped"],
                "queue max [MWh]": max(queue_depths) if queue_depths else 0.0,
                "queue final [MWh]": queue_depths[-1] if queue_depths else 0.0,
            }
        )

    for label in sorted(timings):
        tables["timings"].append(_percentile_row(label, timings[label]))

    if gsd["solves"]:
        tables["gsd"].append(
            {
                "solves": gsd["solves"],
                "avg iterations": gsd["iterations"] / gsd["solves"],
                "avg acceptance": (
                    float(np.mean(gsd["accept"])) if gsd["accept"] else 0.0
                ),
                "avg iters-to-best": (
                    float(np.mean(gsd["converged_at"])) if gsd["converged_at"] else 0.0
                ),
            }
        )
    return tables


def render_trace_summary(
    events: list[dict], *, title: str | None = None, spans: bool = False
) -> str:
    """Human-readable digest of a trace (the ``repro telemetry`` output).

    With ``spans=True`` (the CLI's ``--spans`` flag) the digest appends the
    hierarchical hotspot table; v2 traces carry no span events and render a
    one-line note instead.
    """
    # Imported lazily: analysis pulls in the sweep drivers, which import
    # telemetry -- a module-level import here would cycle.
    from ..analysis.tables import render_table

    tables = trace_summary_tables(events)
    sections: list[str] = []
    head = f"{len(events)} events"
    if title:
        head = f"{title}: {head}"
    sections.append(head)
    if tables["events"]:
        sections.append(render_table(tables["events"], title="event counts"))
    if tables["run"]:
        sections.append(render_table(tables["run"], title="run aggregates"))
    if tables["timings"]:
        sections.append(render_table(tables["timings"], title="solve-time percentiles"))
    if tables["gsd"]:
        sections.append(render_table(tables["gsd"], title="GSD chain statistics"))
    if spans:
        if tables["spans"]:
            sections.append(
                render_table(tables["spans"], title="span hotspots (inclusive time)")
            )
        else:
            sections.append(
                "(no span events: pre-v3 trace or span-uninstrumented run)"
            )
    if len(sections) == 1:
        sections.append("(empty trace)")
    return "\n\n".join(sections)
