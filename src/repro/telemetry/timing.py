"""Scoped wall-clock timers feeding histograms.

``with telemetry.timer("gsd.solve_time_s") as t:`` measures the block with
``time.perf_counter`` and records the elapsed seconds into the named
histogram; ``t.elapsed`` is available afterwards for attaching to events.
Disabled telemetry hands out the shared :data:`NULL_TIMER`, whose enter and
exit do nothing at all -- the hot loops stay clean of clock syscalls.
"""

from __future__ import annotations

import time

from .metrics import Histogram

__all__ = ["ScopedTimer", "NULL_TIMER"]


class ScopedTimer:
    """Context manager timing one block into an optional histogram."""

    __slots__ = ("_histogram", "_start", "elapsed")

    def __init__(self, histogram: Histogram | None = None) -> None:
        self._histogram = histogram
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "ScopedTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.elapsed = time.perf_counter() - self._start
        if self._histogram is not None:
            self._histogram.observe(self.elapsed)
        return False


class _NullTimer:
    """Do-nothing timer handed out by disabled telemetry."""

    __slots__ = ()
    elapsed = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: Shared stateless instance.
NULL_TIMER = _NullTimer()
