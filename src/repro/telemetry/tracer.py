"""Structured event tracing: the per-slot audit trail of a run.

Every instrumented component (the slot simulator, COCA's deficit queue,
GSD's Markov chain, the geo dispatcher) reports what it did as *events* --
flat dicts with a ``kind`` discriminator plus arbitrary scalar fields --
through a :class:`Tracer`.  The paper's claims live in exactly this state
(the queue ``q(t)``, the weight ``V w(t) + q(t)``, GSD's acceptance rate),
so the trace is what lets a run be audited after the fact.

Three sinks are provided:

=================  ======================================================
:class:`NullTracer`     the default: ``enabled`` is False and ``emit`` is
                        a no-op, so uninstrumented runs pay nothing
:class:`InMemoryTracer` appends events to a list (tests, process workers)
:class:`JsonlTracer`    streams one JSON object per line to a file
=================  ======================================================

Hot paths guard event *construction* with ``if telemetry.enabled:`` so the
no-op default never even builds the field dict.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

__all__ = ["Tracer", "NullTracer", "InMemoryTracer", "JsonlTracer", "NULL_TRACER"]


def _jsonable(value: Any):
    """Fallback JSON encoder for numpy scalars and arrays."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"event field of type {type(value).__name__} is not JSON-serializable")


class Tracer:
    """Event sink interface.

    ``enabled`` is the hot-path guard: when False, callers skip building
    event payloads entirely.  Subclasses override :meth:`emit`; sinks that
    hold resources also override :meth:`close` (tracers are context
    managers).
    """

    enabled: bool = True

    def emit(self, kind: str, /, **fields) -> None:
        """Record one event of ``kind`` with scalar ``fields``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resource; idempotent."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class NullTracer(Tracer):
    """The zero-overhead default sink: drops everything."""

    enabled = False

    def emit(self, kind: str, /, **fields) -> None:
        pass


#: Shared no-op instance; safe because a NullTracer has no state.
NULL_TRACER = NullTracer()


class InMemoryTracer(Tracer):
    """Appends events (as plain dicts) to :attr:`events`.

    The workhorse of tests and of process-pool workers, whose event lists
    are pickled back to the parent and absorbed into its telemetry.
    """

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, kind: str, /, **fields) -> None:
        event = {"kind": kind}
        event.update(fields)
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class JsonlTracer(Tracer):
    """Streams events to ``path`` as JSON Lines (one object per line).

    The file is written incrementally, so a crashed run still leaves a
    valid prefix; read it back with
    :func:`repro.telemetry.exporters.read_jsonl_events`.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = open(self.path, "w")
        self.count = 0

    def emit(self, kind: str, /, **fields) -> None:
        event = {"kind": kind}
        event.update(fields)
        self._fh.write(json.dumps(event, default=_jsonable))
        self._fh.write("\n")
        self.count += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()
