"""Structured event tracing: the per-slot audit trail of a run.

Every instrumented component (the slot simulator, COCA's deficit queue,
GSD's Markov chain, the geo dispatcher) reports what it did as *events* --
flat dicts with a ``kind`` discriminator plus arbitrary scalar fields --
through a :class:`Tracer`.  The paper's claims live in exactly this state
(the queue ``q(t)``, the weight ``V w(t) + q(t)``, GSD's acceptance rate),
so the trace is what lets a run be audited after the fact.

Three sinks are provided:

=================  ======================================================
:class:`NullTracer`     the default: ``enabled`` is False and ``emit`` is
                        a no-op, so uninstrumented runs pay nothing
:class:`InMemoryTracer` appends events to a list (tests, process workers)
:class:`JsonlTracer`    streams one JSON object per line to a file
=================  ======================================================

Hot paths guard event *construction* with ``if telemetry.enabled:`` so the
no-op default never even builds the field dict.

Every recorded event is stamped with ``schema_version`` (the trace format
revision, :data:`SCHEMA_VERSION`) and ``run_id`` (a short identifier fixed
per tracer instance), so consumers -- the monitors, the dashboard, the
summarizer -- can validate a trace and join or separate multi-run files.
A caller that passes either field explicitly (worker-event absorption,
round-tripping an existing trace) wins over the stamp.
"""

from __future__ import annotations

import json
import uuid
from typing import Any

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "Tracer",
    "NullTracer",
    "InMemoryTracer",
    "JsonlTracer",
    "RingBufferTracer",
    "NULL_TRACER",
    "new_run_id",
    "sanitize_json_value",
]

#: Trace-format revision stamped on every event.  Bump when the event
#: schema changes incompatibly; readers reject traces from the future.
#: v3 added parent-linked ``span`` events (purely additive: v2 readers of
#: this codebase never existed, and v3 readers accept v1/v2 traces, which
#: simply contain no spans).
SCHEMA_VERSION = 3


def new_run_id() -> str:
    """A short random identifier naming one tracer's stream of events."""
    return uuid.uuid4().hex[:12]


def _jsonable(value: Any):
    """Fallback JSON encoder for numpy scalars and arrays."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"event field of type {type(value).__name__} is not JSON-serializable")


def sanitize_json_value(value: Any):
    """Make ``value`` strict-JSON safe: non-finite floats become ``None``.

    ``json.dumps`` happily writes ``Infinity``/``NaN`` tokens, which are
    *not* JSON -- strict parsers (browsers, ``jq``, other languages) reject
    the whole line.  Events hit this for real: a GSD chain that starts from
    an infeasible configuration reports ``chain_objective = inf`` until the
    first feasible acceptance.  Sinks that write JSON to disk run every
    event through this walk, mapping non-finite floats to ``null`` (the
    reader-side convention for "no finite value") and normalizing numpy
    scalars/arrays along the way.
    """
    if isinstance(value, bool | np.bool_):
        return bool(value)
    if isinstance(value, float | np.floating):
        f = float(value)
        return f if np.isfinite(f) else None
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, dict):
        return {k: sanitize_json_value(v) for k, v in value.items()}
    if isinstance(value, list | tuple):
        return [sanitize_json_value(v) for v in value]
    if isinstance(value, np.ndarray):
        return sanitize_json_value(value.tolist())
    return value


class Tracer:
    """Event sink interface.

    ``enabled`` is the hot-path guard: when False, callers skip building
    event payloads entirely.  Subclasses override :meth:`emit`; sinks that
    hold resources also override :meth:`close` (tracers are context
    managers).
    """

    enabled: bool = True

    def emit(self, kind: str, /, **fields) -> None:
        """Record one event of ``kind`` with scalar ``fields``."""
        raise NotImplementedError

    def emit_event(self, event: dict) -> None:
        """Record one pre-built event dict (must carry ``kind``).

        The fast path for taps that already assembled the full event --
        equivalent to ``emit(event["kind"], **rest)`` but without unpacking
        and rebuilding; sinks override it to consume the dict directly.
        """
        fields = dict(event)
        kind = fields.pop("kind")
        self.emit(kind, **fields)

    def close(self) -> None:
        """Release any underlying resource; idempotent."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class NullTracer(Tracer):
    """The zero-overhead default sink: drops everything."""

    enabled = False

    def emit(self, kind: str, /, **fields) -> None:
        pass

    def emit_event(self, event: dict) -> None:
        pass


#: Shared no-op instance; safe because a NullTracer has no state.
NULL_TRACER = NullTracer()


class InMemoryTracer(Tracer):
    """Appends events (as plain dicts) to :attr:`events`.

    The workhorse of tests and of process-pool workers, whose event lists
    are pickled back to the parent and absorbed into its telemetry.
    """

    def __init__(self, *, run_id: str | None = None) -> None:
        self.run_id = run_id if run_id is not None else new_run_id()
        self.events: list[dict] = []

    def emit(self, kind: str, /, **fields) -> None:
        event = {"kind": kind, "schema_version": SCHEMA_VERSION, "run_id": self.run_id}
        event.update(fields)
        self.events.append(event)

    def emit_event(self, event: dict) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class RingBufferTracer(Tracer):
    """Keeps the newest ``maxlen`` events, optionally forwarding everything.

    A forever-running service cannot hold its whole event stream in memory
    the way :class:`InMemoryTracer` does, but live dashboard renders still
    need a window of recent events.  This tracer keeps a bounded deque and
    forwards every event (unbounded, to disk) to an optional ``inner``
    sink, so the ring can sit in the middle of a tracer chain.
    """

    def __init__(self, maxlen: int = 4096, *, inner: Tracer | None = None,
                 run_id: str | None = None) -> None:
        from collections import deque

        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.run_id = run_id if run_id is not None else new_run_id()
        self.events: "deque[dict]" = deque(maxlen=maxlen)
        self.inner = inner if inner is not None else NULL_TRACER
        self.count = 0

    def emit(self, kind: str, /, **fields) -> None:
        event = {"kind": kind, "schema_version": SCHEMA_VERSION, "run_id": self.run_id}
        event.update(fields)
        self.emit_event(event)

    def emit_event(self, event: dict) -> None:
        self.events.append(event)
        self.count += 1
        if self.inner.enabled:
            self.inner.emit_event(event)

    def close(self) -> None:
        self.inner.close()


class JsonlTracer(Tracer):
    """Streams events to ``path`` as JSON Lines (one object per line).

    Events stream into a ``<path>.part`` sibling which is atomically
    committed (flush + fsync + rename) to ``path`` on :meth:`close`, so a
    reader never sees a torn final trace.  A *crashed* run leaves the
    readable ``.part`` prefix behind for forensics -- every line already
    written is a complete JSON object -- while the committed ``path`` from
    any previous run stays intact; read either back with
    :func:`repro.telemetry.exporters.read_jsonl_events`.
    """

    def __init__(self, path: str, *, run_id: str | None = None) -> None:
        self.path = str(path)
        self.run_id = run_id if run_id is not None else new_run_id()
        self._fh = open(self.path + ".part", "w")
        self.count = 0

    def emit(self, kind: str, /, **fields) -> None:
        event = {"kind": kind, "schema_version": SCHEMA_VERSION, "run_id": self.run_id}
        event.update(fields)
        self.emit_event(event)

    def emit_event(self, event: dict) -> None:
        # allow_nan=False backstops the sanitizer: a non-finite float
        # slipping through is a loud TypeError here, never an invalid line.
        self._fh.write(
            json.dumps(
                sanitize_json_value(event), default=_jsonable, allow_nan=False
            )
        )
        self._fh.write("\n")
        self.count += 1

    def close(self) -> None:
        if not self._fh.closed:
            from ..state.atomic import commit_file

            commit_file(self._fh, self.path)
