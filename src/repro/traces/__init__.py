"""Trace substrate: hourly workload, renewable, and price series.

The generators here substitute for the paper's proprietary inputs (FIU and
MSR workload logs, CAISO renewable and price feeds) with seeded synthetic
equivalents documented module-by-module; see DESIGN.md section 2.
"""

from .base import HOURS_PER_DAY, HOURS_PER_WEEK, HOURS_PER_YEAR, Trace
from .io import (
    append_jsonl_rows,
    iter_jsonl_rows,
    load_traces,
    save_traces,
    trace_from_csv,
    trace_to_csv,
)
from .forecast import (
    EWMA,
    Forecaster,
    Persistence,
    SeasonalEWMA,
    SeasonalNaive,
    forecast_workload,
)
from .noise import PredictionModel, noisy_prediction, overestimate
from .price import DEFAULT_MEAN_PRICE, price_trace
from .solar import solar_trace
from .wind import wind_trace
from .workload_fiu import DEFAULT_PEAK_REQ_PER_S, fiu_workload
from .workload_msr import msr_week, msr_workload

__all__ = [
    "Trace",
    "append_jsonl_rows",
    "iter_jsonl_rows",
    "HOURS_PER_DAY",
    "HOURS_PER_WEEK",
    "HOURS_PER_YEAR",
    "fiu_workload",
    "msr_week",
    "msr_workload",
    "solar_trace",
    "wind_trace",
    "price_trace",
    "DEFAULT_MEAN_PRICE",
    "DEFAULT_PEAK_REQ_PER_S",
    "PredictionModel",
    "overestimate",
    "noisy_prediction",
    "Forecaster",
    "Persistence",
    "SeasonalNaive",
    "EWMA",
    "SeasonalEWMA",
    "forecast_workload",
    "save_traces",
    "load_traces",
    "trace_to_csv",
    "trace_from_csv",
]
