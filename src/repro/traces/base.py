"""Trace containers for hourly time series.

Every exogenous input to the COCA simulation -- workload arrival rates,
on-site/off-site renewable supply, electricity price -- is an hourly time
series over the budgeting period (the paper uses one year = 8760 slots).
:class:`Trace` is a thin, immutable wrapper around a 1-D ``float64`` NumPy
array that carries a name and a unit, and provides the handful of
transformations the experiments need: scaling to a target peak or total,
slicing, repetition, noise-free resampling, and moving averages.

The guides for this domain ask for vectorized NumPy throughout; all methods
here operate on whole arrays and return *new* traces (views are never
mutated in place, because traces are shared across experiment sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

import numpy as np

__all__ = ["Trace", "HOURS_PER_DAY", "HOURS_PER_WEEK", "HOURS_PER_YEAR"]

HOURS_PER_DAY = 24
HOURS_PER_WEEK = 7 * 24
#: Non-leap year, matching the paper's Jan 1 -- Dec 31, 2012 budgeting period
#: truncated to 365 days (the paper reports hourly traces for one year).
HOURS_PER_YEAR = 365 * 24


@dataclass(frozen=True)
class Trace:
    """An immutable hourly time series.

    Parameters
    ----------
    values:
        1-D array of per-slot values. Stored as ``float64`` and made
        read-only so that traces can be shared between runs safely.
    name:
        Human-readable identifier (e.g. ``"fiu-workload"``).
    unit:
        Unit string for reporting (e.g. ``"req/s"``, ``"MW"``, ``"$/MWh"``).
    """

    values: np.ndarray
    name: str = "trace"
    unit: str = ""

    def __post_init__(self) -> None:
        arr = np.asarray(self.values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"trace must be 1-D, got shape {arr.shape}")
        if arr.size == 0:
            raise ValueError("trace must be non-empty")
        if not np.all(np.isfinite(arr)):
            raise ValueError("trace contains non-finite values")
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "values", arr)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.values.size)

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    def __getitem__(self, t: int) -> float:
        return float(self.values[t])

    @property
    def horizon(self) -> int:
        """Number of time slots in the trace."""
        return len(self)

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    @property
    def peak(self) -> float:
        """Maximum value over the trace."""
        return float(self.values.max())

    @property
    def total(self) -> float:
        """Sum over all slots (e.g. total energy for an MW trace of 1 h slots)."""
        return float(self.values.sum())

    @property
    def mean(self) -> float:
        """Arithmetic mean over all slots."""
        return float(self.values.mean())

    # ------------------------------------------------------------------
    # Transformations (all return new traces)
    # ------------------------------------------------------------------
    def scale(self, factor: float) -> "Trace":
        """Multiply every value by ``factor``."""
        return replace(self, values=self.values * float(factor))

    def scale_to_peak(self, peak: float) -> "Trace":
        """Rescale so the maximum equals ``peak`` (paper: FIU trace scaled to
        a 1.1 M req/s peak)."""
        if self.peak <= 0:
            raise ValueError("cannot rescale a non-positive trace to a peak")
        return self.scale(float(peak) / self.peak)

    def scale_to_total(self, total: float) -> "Trace":
        """Rescale so the sum over slots equals ``total`` (paper: renewables
        scaled so on-site supply covers ~20% of consumption)."""
        if self.total <= 0:
            raise ValueError("cannot rescale a non-positive trace to a total")
        return self.scale(float(total) / self.total)

    def normalized(self) -> "Trace":
        """Divide by the peak so values lie in [min/peak, 1] (Fig. 1 style)."""
        return self.scale_to_peak(1.0)

    def clip(self, lo: float = 0.0, hi: float = np.inf) -> "Trace":
        """Clip values into ``[lo, hi]``."""
        return replace(self, values=np.clip(self.values, lo, hi))

    def shift(self, offset: float) -> "Trace":
        """Add a constant offset to every value."""
        return replace(self, values=self.values + float(offset))

    def slice(self, start: int, stop: int) -> "Trace":
        """Return the sub-trace for slots ``start:stop``."""
        if not (0 <= start < stop <= len(self)):
            raise ValueError(f"invalid slice [{start}:{stop}] for horizon {len(self)}")
        return replace(self, values=self.values[start:stop])

    def repeat_to(self, horizon: int) -> "Trace":
        """Tile the trace until it covers ``horizon`` slots, truncating the
        final repetition (paper: MSR one-week trace repeated for a year)."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        reps = int(np.ceil(horizon / len(self)))
        return replace(self, values=np.tile(self.values, reps)[:horizon])

    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> "Trace":
        """Apply an arbitrary vectorized transformation to the values."""
        return replace(self, values=np.asarray(fn(self.values), dtype=np.float64))

    def with_noise(
        self, rng: np.random.Generator, relative: float, floor: float = 0.0
    ) -> "Trace":
        """Multiply by i.i.d. uniform noise in ``[1-relative, 1+relative]``.

        This is the paper's recipe for extending the MSR week to a year
        ("adding random noises of up to +/-40%").
        """
        if relative < 0:
            raise ValueError("relative noise must be non-negative")
        factors = rng.uniform(1.0 - relative, 1.0 + relative, size=len(self))
        return replace(self, values=np.maximum(self.values * factors, floor))

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def moving_average(self, window: int) -> np.ndarray:
        """Trailing moving average with a growing head window.

        Entry ``t`` is the mean of slots ``max(0, t-window+1) .. t``. The
        paper's Fig. 2(c,d) uses a 45-day (1080-slot) trailing window.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        csum = np.concatenate(([0.0], np.cumsum(self.values)))
        t = np.arange(len(self))
        lo = np.maximum(t - window + 1, 0)
        return (csum[t + 1] - csum[lo]) / (t - lo + 1)

    def running_average(self) -> np.ndarray:
        """Cumulative running average: entry ``t`` is the mean of slots
        ``0..t`` (paper Fig. 3 footnote)."""
        return np.cumsum(self.values) / np.arange(1, len(self) + 1)

    def daily_profile(self) -> np.ndarray:
        """Mean value for each hour-of-day (length-24 array)."""
        n = (len(self) // HOURS_PER_DAY) * HOURS_PER_DAY
        if n == 0:
            raise ValueError("trace shorter than one day")
        return self.values[:n].reshape(-1, HOURS_PER_DAY).mean(axis=0)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}[{len(self)}h] unit={self.unit or '-'} "
            f"mean={self.mean:.4g} peak={self.peak:.4g} total={self.total:.4g}"
        )
