"""Workload forecasters: realistic hour-ahead prediction.

The paper assumes the *current* slot's arrival rate is known exactly and
shows robustness to overestimation; PerfectHP additionally gets perfect
48-hour forecasts.  Real operators run forecasters.  This module provides
the standard simple ones so experiments can replace the perfect-information
assumption with realistic prediction error:

* :class:`Persistence` -- predict the previous slot's value (the strongest
  naive baseline at one-hour horizons).
* :class:`SeasonalNaive` -- predict the value one season ago (e.g. the same
  hour yesterday or last week), the right naive model for strongly diurnal
  workloads.
* :class:`EWMA` -- exponentially weighted average of past values.
* :class:`SeasonalEWMA` -- an EWMA *per hour-of-season* (a lightweight
  Holt-Winters): tracks both level shifts and the diurnal profile.

All forecasters are strictly causal: the prediction for slot ``t`` uses
values up to ``t - 1`` only.  :func:`forecast_workload` runs one over a
trace and returns the (predicted, actual) pair the simulator consumes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from .base import HOURS_PER_DAY, Trace
from .noise import PredictionModel

__all__ = [
    "Forecaster",
    "Persistence",
    "SeasonalNaive",
    "EWMA",
    "SeasonalEWMA",
    "forecast_workload",
]


class Forecaster(ABC):
    """Causal one-step-ahead forecaster over an hourly series."""

    @abstractmethod
    def predict_series(self, values: np.ndarray) -> np.ndarray:
        """Predictions ``p[t]`` using only ``values[:t]``; ``p[0]`` falls
        back to ``values[0]`` (no history -- treated as a warm start, not a
        leak, since slot 0's decision error washes out of every experiment
        here)."""

    def name(self) -> str:
        """Identifier for reports."""
        return type(self).__name__


@dataclass(frozen=True)
class Persistence(Forecaster):
    """Predict the previous value."""

    def predict_series(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.empty_like(values)
        out[0] = values[0]
        out[1:] = values[:-1]
        return out


@dataclass(frozen=True)
class SeasonalNaive(Forecaster):
    """Predict the value one season (default one day) ago."""

    season: int = HOURS_PER_DAY

    def __post_init__(self) -> None:
        if self.season < 1:
            raise ValueError("season must be positive")

    def predict_series(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.empty_like(values)
        s = self.season
        # Before a full season of history exists, fall back to persistence.
        out[0] = values[0]
        head = min(s, values.size)
        out[1:head] = values[: head - 1]
        if values.size > s:
            out[s:] = values[:-s]
        return out


@dataclass(frozen=True)
class EWMA(Forecaster):
    """Exponentially weighted moving average of the past."""

    alpha: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")

    def predict_series(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.empty_like(values)
        level = values[0]
        out[0] = level
        for t in range(1, values.size):
            level += self.alpha * (values[t - 1] - level)
            out[t] = level
        return out


@dataclass(frozen=True)
class SeasonalEWMA(Forecaster):
    """Per-hour-of-season EWMA with a shared multiplicative level.

    Maintains (a) a seasonal profile ``c[h]`` updated at rate ``gamma_s``
    and (b) a global level updated at rate ``alpha`` from the deseasonalized
    observations -- a lightweight multiplicative Holt-Winters without trend.
    """

    season: int = HOURS_PER_DAY
    alpha: float = 0.2
    gamma_s: float = 0.1

    def __post_init__(self) -> None:
        if self.season < 1:
            raise ValueError("season must be positive")
        if not (0.0 < self.alpha <= 1.0 and 0.0 < self.gamma_s <= 1.0):
            raise ValueError("smoothing rates must be in (0, 1]")

    def predict_series(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.empty_like(values)
        profile = np.ones(self.season)
        level = max(values[0], 1e-12)
        out[0] = values[0]
        for t in range(1, values.size):
            h = t % self.season
            out[t] = level * profile[h]
            # Update with the value that just realized (t-1's slot).
            h_prev = (t - 1) % self.season
            obs = values[t - 1]
            deseason = obs / max(profile[h_prev], 1e-12)
            level += self.alpha * (deseason - level)
            if level > 0:
                profile[h_prev] += self.gamma_s * (obs / max(level, 1e-12) - profile[h_prev])
        return out


def forecast_workload(actual: Trace, forecaster: Forecaster) -> PredictionModel:
    """Run a forecaster over an actual workload trace and return the
    (predicted, actual) pair, with predictions floored at zero."""
    predicted = np.maximum(forecaster.predict_series(actual.values), 0.0)
    return PredictionModel(
        predicted=Trace(
            predicted, name=f"{actual.name}-{forecaster.name()}", unit=actual.unit
        ),
        actual=actual,
    )
