"""Trace persistence: NPZ bundles and CSV interchange.

Experiments that take minutes to calibrate (paper-scale scenarios) want
their traces saved once and reloaded; users with *real* trace data (their
own workload logs, utility price feeds) need a way in.  NPZ bundles keep
name/unit metadata and round-trip exactly; CSV is the lowest-common-
denominator import/export (one header line ``name,unit`` comment, one value
per row).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from .base import Trace

__all__ = [
    "save_traces",
    "load_traces",
    "trace_to_csv",
    "trace_from_csv",
    "append_jsonl_rows",
    "iter_jsonl_rows",
]


def save_traces(path: str | pathlib.Path, **traces: Trace) -> None:
    """Save named traces to one ``.npz`` bundle (values + metadata)."""
    if not traces:
        raise ValueError("nothing to save")
    payload: dict[str, np.ndarray] = {}
    for key, trace in traces.items():
        payload[f"{key}__values"] = trace.values
        payload[f"{key}__meta"] = np.array([trace.name, trace.unit])
    np.savez_compressed(path, **payload)


def load_traces(path: str | pathlib.Path) -> dict[str, Trace]:
    """Load a bundle written by :func:`save_traces`."""
    with np.load(path, allow_pickle=False) as data:
        keys = sorted(
            k[: -len("__values")] for k in data.files if k.endswith("__values")
        )
        if not keys:
            raise ValueError(f"{path} contains no traces")
        out = {}
        for key in keys:
            meta = data[f"{key}__meta"]
            out[key] = Trace(
                data[f"{key}__values"], name=str(meta[0]), unit=str(meta[1])
            )
        return out


def append_jsonl_rows(
    path: str | pathlib.Path, rows: list[dict], *, truncate: bool = False
) -> None:
    """Append ``rows`` to a JSONL file, one object per line, flushed.

    The producer side of a live signal feed (``repro serve --source
    file``): each row lands as one complete line, so a tailing consumer
    never parses a torn record.  ``truncate`` starts the file over.
    """
    path = pathlib.Path(path)
    with path.open("w" if truncate else "a") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True))
            fh.write("\n")
        fh.flush()


def iter_jsonl_rows(path: str | pathlib.Path):
    """Yield the complete rows of a JSONL file, tolerating a torn tail.

    The read-at-rest counterpart of :func:`append_jsonl_rows` -- a final
    line without its newline (a producer killed mid-append) is skipped,
    matching the tailing reader's behaviour.
    """
    with pathlib.Path(path).open() as fh:
        for line in fh:
            if not line.endswith("\n"):
                return
            line = line.strip()
            if line:
                yield json.loads(line)


def trace_to_csv(trace: Trace, path: str | pathlib.Path) -> None:
    """Write one trace as CSV: a ``# name,unit`` comment then one value per
    line with its slot index."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        fh.write(f"# {trace.name},{trace.unit}\n")
        fh.write("slot,value\n")
        for t, v in enumerate(trace.values):
            fh.write(f"{t},{float(v)!r}\n")


def trace_from_csv(path: str | pathlib.Path) -> Trace:
    """Read a trace written by :func:`trace_to_csv` (or any two-column
    ``slot,value`` CSV; a leading ``# name,unit`` comment is honored)."""
    path = pathlib.Path(path)
    name, unit = path.stem, ""
    values: list[float] = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].strip().split(",", 1)
                name = parts[0].strip() or name
                if len(parts) > 1:
                    unit = parts[1].strip()
                continue
            if line.lower().startswith("slot"):
                continue
            _, value = line.split(",", 1)
            values.append(float(value))
    if not values:
        raise ValueError(f"{path} contains no data rows")
    return Trace(np.asarray(values), name=name, unit=unit)
