"""Prediction-error and overestimation models for sensitivity studies.

COCA consumes the *current-slot* workload arrival rate as an input.  The
paper's sensitivity study (Fig. 5(c)) stresses this assumption two ways:

* **Overestimation factor** ``phi >= 1``: the controller provisions for
  ``phi * lambda(t)`` while the data center actually serves ``lambda(t)``.
  The paper notes this also subsumes imperfect service-rate modeling, and
  reports that costs rise by <2.5% even at 20% overestimation.
* **Prediction noise**: hour-ahead estimates that are off by a random
  multiplicative factor, which we expose for additional robustness studies.

These helpers produce *pairs* of traces -- what the controller believes and
what the environment delivers -- so the simulator can feed each side its own
view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Trace

__all__ = ["PredictionModel", "overestimate", "noisy_prediction"]


@dataclass(frozen=True)
class PredictionModel:
    """A (believed, actual) pair of workload traces.

    Attributes
    ----------
    predicted:
        What the controller sees when making slot decisions.
    actual:
        What arrives and is actually served / billed.
    """

    predicted: Trace
    actual: Trace

    def __post_init__(self) -> None:
        if len(self.predicted) != len(self.actual):
            raise ValueError("predicted and actual traces must share a horizon")

    @property
    def horizon(self) -> int:
        """Number of slots covered by the pair."""
        return len(self.actual)

    @property
    def mean_absolute_relative_error(self) -> float:
        """Mean |predicted - actual| / actual over slots with actual > 0."""
        a = self.actual.values
        p = self.predicted.values
        mask = a > 0
        if not mask.any():
            return 0.0
        return float(np.mean(np.abs(p[mask] - a[mask]) / a[mask]))


def overestimate(actual: Trace, phi: float) -> PredictionModel:
    """Uniform workload overestimation by factor ``phi >= 1`` (Fig. 5(c)).

    The controller plans for ``phi * lambda(t)``; arrivals stay at
    ``lambda(t)``.
    """
    if phi < 1.0:
        raise ValueError("overestimation factor phi must be >= 1")
    return PredictionModel(predicted=actual.scale(phi), actual=actual)


def noisy_prediction(
    actual: Trace,
    rng: np.random.Generator,
    *,
    relative_error: float = 0.1,
    bias: float = 0.0,
) -> PredictionModel:
    """Hour-ahead prediction with multiplicative error.

    Each slot's prediction is ``actual * (1 + bias) * U`` with
    ``U ~ Uniform[1-relative_error, 1+relative_error]``, floored at zero.
    """
    if relative_error < 0:
        raise ValueError("relative_error must be non-negative")
    factors = (1.0 + bias) * rng.uniform(
        1.0 - relative_error, 1.0 + relative_error, size=len(actual)
    )
    predicted = Trace(
        np.maximum(actual.values * factors, 0.0),
        name=f"{actual.name}-predicted",
        unit=actual.unit,
    )
    return PredictionModel(predicted=predicted, actual=actual)
