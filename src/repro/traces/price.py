"""Synthetic hourly real-time electricity price trace.

The paper assumes the data center participates in a real-time (hourly)
electricity market and uses CAISO's 2012 hourly price for Mountain View.
We synthesize a price series with the structure real-time LMP data shows:

* a diurnal shape (cheap overnight, expensive late afternoon),
* a weekday premium over weekends,
* a seasonal summer peak (air-conditioning load),
* mean-reverting stochastic wander, and
* occasional short lognormal price spikes (scarcity events).

Prices are in $/MWh, the native unit of wholesale markets; typical values
land in the $25-70/MWh band with spikes to a few hundred, matching 2012-era
CAISO statistics.
"""

from __future__ import annotations

import numpy as np

from .base import HOURS_PER_DAY, HOURS_PER_YEAR, Trace

__all__ = ["price_trace", "DEFAULT_MEAN_PRICE"]

#: Approximate 2012 CAISO average day-ahead price, $/MWh.
DEFAULT_MEAN_PRICE = 35.0


def _diurnal_shape() -> np.ndarray:
    """Hour-of-day multipliers for the price curve (length 24)."""
    hours = np.arange(HOURS_PER_DAY)
    evening_peak = np.exp(-0.5 * ((hours - 17.5) / 3.0) ** 2)
    morning_ramp = 0.4 * np.exp(-0.5 * ((hours - 8.0) / 2.0) ** 2)
    return 0.75 + 0.5 * evening_peak + morning_ramp


def price_trace(
    horizon: int = HOURS_PER_YEAR,
    *,
    mean_price: float = DEFAULT_MEAN_PRICE,
    seed: int = 55,
    rng: np.random.Generator | None = None,
    spike_rate_per_day: float = 0.08,
    spike_scale: float = 2.5,
    floor: float = 5.0,
) -> Trace:
    """Generate an hourly real-time price trace in $/MWh.

    Parameters
    ----------
    horizon:
        Number of hourly slots.
    mean_price:
        Target mean price ($/MWh) after shaping.
    seed, rng:
        Randomness controls (``rng`` wins if supplied).
    spike_rate_per_day:
        Expected scarcity-spike onsets per day.
    spike_scale:
        Mean multiplicative height of a spike.
    floor:
        Lower clamp ($/MWh); real-time prices rarely stay below this and the
        controller's cost model assumes non-negative prices.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    gen = rng if rng is not None else np.random.default_rng(seed)

    hour = np.arange(horizon)
    hod = hour % HOURS_PER_DAY
    dow = (hour // HOURS_PER_DAY) % 7
    weekday = np.where(dow < 5, 1.0, 0.88)
    seasonal = 1.0 + 0.18 * np.exp(
        -0.5 * (((hour / HOURS_PER_DAY) % 365 - 200.0) / 40.0) ** 2
    )

    shape = _diurnal_shape()[hod] * weekday * seasonal

    # Mean-reverting wander (Ornstein-Uhlenbeck in discrete time).
    wander = np.empty(horizon)
    rho, sigma = 0.95, 0.035
    innov = gen.normal(0.0, sigma, size=horizon)
    wander[0] = innov[0]
    for t in range(1, horizon):
        wander[t] = rho * wander[t - 1] + innov[t]

    values = shape * np.exp(wander)

    # Scarcity spikes: short-lived multiplicative excursions.
    n_spikes = gen.poisson(spike_rate_per_day * horizon / HOURS_PER_DAY)
    for _ in range(n_spikes):
        onset = int(gen.integers(0, horizon))
        duration = int(gen.integers(1, 4))
        height = 1.0 + gen.exponential(spike_scale - 1.0)
        values[onset : onset + duration] *= height

    trace = Trace(values, name="electricity-price", unit="$/MWh")
    trace = trace.scale(mean_price / trace.mean)
    return trace.clip(lo=floor)
