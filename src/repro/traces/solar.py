"""Synthetic hourly solar-generation trace.

The paper obtains hourly solar generation for Mountain View, CA (2012) from
the California ISO and scales it so on-site renewables cover roughly 20% of
data center consumption.  CAISO's historical feed is not bundled here, so we
synthesize an hourly photovoltaic output series from first principles:

* a clear-sky envelope from solar geometry (day length and midday intensity
  vary over the year at Mountain View's latitude, ~37.4 N),
* an AR(1) daily "cloudiness" state (weather persists across days),
* intra-day attenuation noise (passing clouds),
* zero output at night.

Output is normalized to a unit clear-sky peak; callers scale it to a target
energy total via :meth:`repro.traces.base.Trace.scale_to_total`.
"""

from __future__ import annotations

import numpy as np

from .base import HOURS_PER_DAY, HOURS_PER_YEAR, Trace

__all__ = ["solar_trace"]

#: Latitude used for the clear-sky geometry (Mountain View, CA).
_LATITUDE_DEG = 37.4


def _clear_sky(horizon_days: int) -> np.ndarray:
    """Hourly clear-sky output for ``horizon_days`` days, unit midsummer peak.

    Uses the standard solar-declination formula and the cosine of the solar
    zenith angle clamped at zero (night).
    """
    lat = np.radians(_LATITUDE_DEG)
    day = np.arange(horizon_days).repeat(HOURS_PER_DAY)
    hour = np.tile(np.arange(HOURS_PER_DAY, dtype=np.float64), horizon_days)
    # Solar declination (radians), day 0 = Jan 1.
    decl = np.radians(23.45) * np.sin(2.0 * np.pi * (284 + day + 1) / 365.0)
    hour_angle = np.radians(15.0 * (hour + 0.5 - 12.0))
    cos_zenith = np.sin(lat) * np.sin(decl) + np.cos(lat) * np.cos(decl) * np.cos(
        hour_angle
    )
    return np.maximum(cos_zenith, 0.0)


def solar_trace(
    horizon: int = HOURS_PER_YEAR,
    *,
    seed: int = 77,
    rng: np.random.Generator | None = None,
    cloud_persistence: float = 0.75,
    cloud_depth: float = 0.65,
) -> Trace:
    """Generate a normalized hourly solar trace.

    Parameters
    ----------
    horizon:
        Number of hourly slots.
    seed, rng:
        Randomness controls (``rng`` wins if supplied).
    cloud_persistence:
        AR(1) coefficient of the day-to-day cloudiness state in [0, 1).
    cloud_depth:
        Maximum fractional attenuation on a fully overcast day.

    Returns
    -------
    Trace
        Non-negative generation in arbitrary units (unit clear-sky peak);
        scale with :meth:`Trace.scale_to_total` or :meth:`Trace.scale_to_peak`.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    gen = rng if rng is not None else np.random.default_rng(seed)

    days = int(np.ceil(horizon / HOURS_PER_DAY))
    envelope = _clear_sky(days)

    # Day-level cloudiness in [0, 1]: AR(1) on a latent Gaussian squashed
    # through a logistic, so overcast spells cluster.
    latent = np.empty(days)
    innov = gen.normal(0.0, 0.8, size=days)
    latent[0] = innov[0]
    for d in range(1, days):
        latent[d] = cloud_persistence * latent[d - 1] + innov[d]
    cloudiness = 1.0 / (1.0 + np.exp(-latent))  # 0 = clear, 1 = overcast
    daily_factor = 1.0 - cloud_depth * cloudiness

    # Intra-day passing-cloud attenuation.
    intra = gen.uniform(0.85, 1.0, size=days * HOURS_PER_DAY)
    values = envelope * daily_factor.repeat(HOURS_PER_DAY) * intra
    return Trace(values[:horizon], name="solar", unit="MW")
