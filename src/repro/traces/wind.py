"""Synthetic hourly wind-generation trace.

Companion to :mod:`repro.traces.solar`: the paper mixes CAISO solar and wind
for its on-site and off-site renewable supplies.  Wind differs from solar in
the ways that matter to an online energy-budgeting controller: it is
available at night, far less diurnally structured, strongly autocorrelated
over hours-to-days, and occasionally calm for long stretches.

We model hub-height wind speed as an AR(1) process with a Weibull-like
marginal (the standard wind-resource model), then map speed to turbine power
through the canonical cut-in / rated / cut-out power curve.
"""

from __future__ import annotations

import numpy as np

from .base import HOURS_PER_YEAR, Trace

__all__ = ["wind_trace"]


def _power_curve(
    speed: np.ndarray, cut_in: float, rated: float, cut_out: float
) -> np.ndarray:
    """Map wind speed (m/s) to normalized turbine output in [0, 1].

    Cubic ramp between cut-in and rated speed, flat at 1 until cut-out,
    zero outside -- the textbook three-segment curve.
    """
    ramp = ((speed - cut_in) / (rated - cut_in)) ** 3
    out = np.where(speed < cut_in, 0.0, np.where(speed < rated, ramp, 1.0))
    return np.where(speed >= cut_out, 0.0, out)


def wind_trace(
    horizon: int = HOURS_PER_YEAR,
    *,
    seed: int = 88,
    rng: np.random.Generator | None = None,
    persistence: float = 0.96,
    mean_speed: float = 7.0,
    speed_sigma: float = 3.2,
    cut_in: float = 3.0,
    rated: float = 12.0,
    cut_out: float = 25.0,
    seasonal_amplitude: float = 0.15,
) -> Trace:
    """Generate a normalized hourly wind-power trace.

    Parameters
    ----------
    horizon:
        Number of hourly slots.
    seed, rng:
        Randomness controls (``rng`` wins if supplied).
    persistence:
        Hourly AR(1) coefficient of the latent wind-speed process.
    mean_speed, speed_sigma:
        Marginal mean and spread of hub-height wind speed (m/s).
    cut_in, rated, cut_out:
        Turbine power-curve breakpoints (m/s).
    seasonal_amplitude:
        Relative strength of the springtime wind maximum typical of
        California sites.

    Returns
    -------
    Trace
        Output in [0, 1] (fraction of rated capacity); scale with
        :meth:`Trace.scale_to_total` for a target annual energy.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    gen = rng if rng is not None else np.random.default_rng(seed)

    # Latent AR(1) Gaussian; stationary std chosen to hit speed_sigma.
    innov_sigma = np.sqrt(1.0 - persistence**2)
    latent = np.empty(horizon)
    innov = gen.normal(0.0, innov_sigma, size=horizon)
    latent[0] = gen.normal()
    for t in range(1, horizon):
        latent[t] = persistence * latent[t - 1] + innov[t]

    hour = np.arange(horizon, dtype=np.float64)
    seasonal = 1.0 + seasonal_amplitude * np.sin(
        2.0 * np.pi * (hour / HOURS_PER_YEAR - 0.12)
    )
    speed = np.maximum(mean_speed * seasonal + speed_sigma * latent, 0.0)
    values = _power_curve(speed, cut_in, rated, cut_out)
    return Trace(values, name="wind", unit="MW")
