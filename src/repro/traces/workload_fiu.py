"""Synthetic FIU-style workload trace generator.

The paper drives its default experiments with the server I/O usage log of
Florida International University over calendar year 2012, normalized to the
peak arrival rate and then scaled so the peak equals 1.1 M req/s (about 50%
of the simulated data center's full-speed capacity).  The raw trace is not
public, so this module synthesizes an *hourly* arrival-rate series with the
features the paper describes and that matter to the controller:

* a strong diurnal cycle (campus usage peaks in the afternoon),
* a weekly cycle (weekend load noticeably lower),
* an academic-calendar seasonal modulation with a pronounced surge in late
  July ("the trace exhibits a significant increase around late July, 2012,
  due to the summer activities" -- Fig. 1(a)),
* bursty multiplicative noise and occasional traffic spikes, the phenomenon
  motivating the paper's online (prediction-free) design.

All randomness flows through a caller-supplied or seeded
:class:`numpy.random.Generator` so traces are exactly reproducible.
"""

from __future__ import annotations

import numpy as np

from .base import HOURS_PER_DAY, HOURS_PER_YEAR, Trace

__all__ = ["fiu_workload", "DEFAULT_PEAK_REQ_PER_S"]

#: The paper scales the FIU trace so the maximum arrival rate is 1.1 M req/s.
DEFAULT_PEAK_REQ_PER_S = 1.1e6


def _diurnal_profile() -> np.ndarray:
    """Hour-of-day multipliers for a campus-driven service (length 24).

    Low overnight, ramping from ~7am, peaking early-to-mid afternoon, with a
    secondary evening shoulder from residential usage.
    """
    hours = np.arange(HOURS_PER_DAY)
    day = np.exp(-0.5 * ((hours - 14.0) / 4.5) ** 2)  # afternoon peak
    evening = 0.35 * np.exp(-0.5 * ((hours - 21.0) / 2.0) ** 2)
    base = 0.25
    profile = base + day + evening
    return profile / profile.max()


def _weekly_profile() -> np.ndarray:
    """Day-of-week multipliers, Monday-indexed (length 7)."""
    return np.array([1.0, 1.02, 1.03, 1.0, 0.95, 0.72, 0.68])


def _seasonal_profile(horizon_days: int) -> np.ndarray:
    """Day-of-year multipliers encoding the academic calendar.

    Spring and fall semesters run hot; intersession dips in May and December;
    a sharp late-July surge reproduces the distinctive feature of Fig. 1(a).
    """
    day = np.arange(horizon_days, dtype=np.float64)
    # Smooth semester envelope: two humps (spring, fall) via harmonics.
    year_frac = day / 365.0
    base = 0.85 + 0.10 * np.cos(4.0 * np.pi * (year_frac - 0.08))
    # Intersession dips (mid May ~ day 135, late December ~ day 355).
    base -= 0.12 * np.exp(-0.5 * ((day - 135.0) / 9.0) ** 2)
    base -= 0.15 * np.exp(-0.5 * ((day - 355.0) / 7.0) ** 2)
    # Late-July summer-activity surge (centered ~July 25 = day 206).
    base += 0.55 * np.exp(-0.5 * ((day - 206.0) / 10.0) ** 2)
    return base


def fiu_workload(
    horizon: int = HOURS_PER_YEAR,
    *,
    peak: float = DEFAULT_PEAK_REQ_PER_S,
    seed: int = 2012,
    rng: np.random.Generator | None = None,
    noise: float = 0.08,
    spike_rate_per_day: float = 0.05,
    spike_magnitude: float = 0.35,
) -> Trace:
    """Generate the FIU-style hourly arrival-rate trace.

    Parameters
    ----------
    horizon:
        Number of hourly slots (default one year, 8760).
    peak:
        Target maximum arrival rate in req/s after scaling (paper: 1.1e6).
    seed:
        Seed used when ``rng`` is not supplied.
    rng:
        Optional externally-managed random generator.
    noise:
        Standard deviation of the lognormal multiplicative hourly noise.
    spike_rate_per_day:
        Expected number of traffic-spike onsets per day; each spike lasts a
        few hours and lifts load by up to ``spike_magnitude`` of the peak.
    spike_magnitude:
        Relative amplitude of traffic spikes.

    Returns
    -------
    Trace
        Arrival-rate trace in req/s with ``max == peak``.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    gen = rng if rng is not None else np.random.default_rng(seed)

    days = int(np.ceil(horizon / HOURS_PER_DAY))
    hours = np.arange(days * HOURS_PER_DAY)
    hour_of_day = hours % HOURS_PER_DAY
    day_index = hours // HOURS_PER_DAY
    day_of_week = day_index % 7

    shape = (
        _diurnal_profile()[hour_of_day]
        * _weekly_profile()[day_of_week]
        * _seasonal_profile(days)[day_index]
    )

    # Smooth AR(1) weather/demand wander plus i.i.d. lognormal jitter.
    wander = np.empty(len(hours))
    rho, sigma = 0.97, 0.02
    innov = gen.normal(0.0, sigma, size=len(hours))
    wander[0] = innov[0]
    for t in range(1, len(hours)):
        wander[t] = rho * wander[t - 1] + innov[t]
    jitter = gen.lognormal(mean=0.0, sigma=noise, size=len(hours))

    values = shape * np.exp(wander) * jitter

    # Occasional multi-hour traffic spikes (flash crowds).
    n_spikes = gen.poisson(spike_rate_per_day * days)
    for _ in range(n_spikes):
        onset = int(gen.integers(0, len(hours)))
        duration = int(gen.integers(2, 8))
        amp = spike_magnitude * gen.uniform(0.3, 1.0)
        end = min(onset + duration, len(hours))
        ramp = np.linspace(1.0, 0.2, end - onset)
        values[onset:end] += amp * ramp

    values = values[:horizon]
    trace = Trace(values, name="fiu-workload", unit="req/s")
    return trace.scale_to_peak(peak)
