"""Synthetic MSR-Cambridge-style workload trace generator.

The paper's sensitivity study (Fig. 5(b)) swaps the FIU trace for the I/O
trace of 6 RAID volumes at Microsoft Research Cambridge -- one week starting
5 PM GMT on Feb 22, 2007, first shown in Lin et al. [19] -- and extends it to
a year by repeating the week and "adding random noises of up to +/-40%".

The raw block-level trace is not redistributable, so we synthesize a week
with its well-documented characteristics (see [19] and the MSR trace papers):

* an office-hours weekday pattern with mid-day peak and deep overnight
  valleys,
* pronounced nightly batch/backup bursts (RAID volumes see scheduled scans),
* a burstier, heavier-tailed hourly profile than a web workload, and
* much lower weekend activity.

The year-long extension then follows the paper's own recipe exactly:
``week.repeat_to(horizon).with_noise(rng, 0.40)``.
"""

from __future__ import annotations

import numpy as np

from .base import HOURS_PER_DAY, HOURS_PER_WEEK, HOURS_PER_YEAR, Trace

__all__ = ["msr_week", "msr_workload"]


def _weekday_profile() -> np.ndarray:
    """Hour-of-day multipliers for an MSR weekday (length 24).

    Office-hours hump plus a sharp early-morning backup burst around 2-4 AM,
    which is characteristic of the RAID-volume traces.
    """
    hours = np.arange(HOURS_PER_DAY)
    office = np.exp(-0.5 * ((hours - 13.0) / 3.5) ** 2)
    backup = 0.8 * np.exp(-0.5 * ((hours - 3.0) / 1.2) ** 2)
    base = 0.12
    profile = base + office + backup
    return profile / profile.max()


def msr_week(*, seed: int = 2007, rng: np.random.Generator | None = None) -> Trace:
    """Generate one synthetic MSR-style week (168 hourly slots), normalized
    to unit peak, starting on a weekday evening like the original trace."""
    gen = rng if rng is not None else np.random.default_rng(seed)
    hours = np.arange(HOURS_PER_WEEK)
    hour_of_day = hours % HOURS_PER_DAY
    day = hours // HOURS_PER_DAY
    # Trace starts Thursday 5 PM; days 2 and 3 of the window are the weekend.
    weekend = (day == 2) | (day == 3)
    weekday_mult = np.where(weekend, 0.35, 1.0)

    shape = _weekday_profile()[hour_of_day] * weekday_mult
    # Heavy-tailed burstiness: lognormal with fat sigma, plus a few I/O storms.
    jitter = gen.lognormal(mean=0.0, sigma=0.25, size=HOURS_PER_WEEK)
    values = shape * jitter
    n_storms = int(gen.integers(2, 5))
    for _ in range(n_storms):
        onset = int(gen.integers(0, HOURS_PER_WEEK - 3))
        values[onset : onset + 3] *= gen.uniform(1.8, 3.0)

    return Trace(values, name="msr-week", unit="req/s").normalized()


def msr_workload(
    horizon: int = HOURS_PER_YEAR,
    *,
    peak: float = 1.1e6,
    seed: int = 2007,
    rng: np.random.Generator | None = None,
    noise: float = 0.40,
) -> Trace:
    """Extend the MSR week to ``horizon`` slots per the paper's recipe.

    The week is tiled to the horizon, multiplied by i.i.d. uniform noise in
    ``[1-noise, 1+noise]`` (paper: up to +/-40%), then rescaled so the peak
    arrival rate equals ``peak`` req/s.
    """
    gen = rng if rng is not None else np.random.default_rng(seed)
    week = msr_week(rng=gen)
    year = week.repeat_to(horizon).with_noise(gen, noise)
    trace = Trace(year.values, name="msr-workload", unit="req/s")
    return trace.scale_to_peak(peak)
