"""Shared fixtures for the test suite.

Scenario construction involves calibration sweeps, so the expensive
fixtures are session-scoped; tests must treat them as immutable (scenarios
and traces are frozen dataclasses, so accidental mutation raises).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Fleet, ServerGroup, cubic_dvfs_profile, opteron_2380
from repro.core import DataCenterModel
from repro.scenarios import small_scenario


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden-run regression files from the current code "
        "(see docs/TESTING.md) instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    """True when the run should refresh committed goldens."""
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_fleet() -> Fleet:
    """3 homogeneous groups x 10 Opterons -- brute-forceable."""
    return Fleet([ServerGroup(opteron_2380(), 10) for _ in range(3)])


@pytest.fixture(scope="session")
def hetero_fleet() -> Fleet:
    """Two different profiles -- exercises heterogeneous paths."""
    return Fleet(
        [
            ServerGroup(opteron_2380(), 8),
            ServerGroup(cubic_dvfs_profile(), 12),
        ]
    )


@pytest.fixture(scope="session")
def tiny_model(tiny_fleet) -> DataCenterModel:
    return DataCenterModel(fleet=tiny_fleet, beta=10.0)


@pytest.fixture(scope="session")
def hetero_model(hetero_fleet) -> DataCenterModel:
    return DataCenterModel(fleet=hetero_fleet, beta=10.0)


@pytest.fixture(scope="session")
def week_scenario():
    """One-week small scenario (fast; ~170 slots)."""
    return small_scenario(horizon=24 * 7)


@pytest.fixture(scope="session")
def fortnight_scenario():
    """Two-week small scenario for integration tests."""
    return small_scenario(horizon=24 * 14)


def make_problem(model, *, lam_frac=0.5, onsite=0.0, price=40.0, q=0.0, V=1.0, **kw):
    """Helper to build a slot problem at a fraction of capped capacity."""
    lam = lam_frac * model.fleet.capacity(model.gamma)
    return model.slot_problem(
        arrival_rate=lam, onsite=onsite, price=price, q=q, V=V, **kw
    )
