"""The learning-augmented advice layer (``repro.advice``).

Four contracts anchor the subsystem (docs/ADVICE.md):

1. **Consistency floor** — advice that is absent, disabled, or never
   trusted leaves the run bit-identical to plain COCA.
2. **Certified robustness** — committed cost never exceeds ``(1+λ)×``
   the shadow (plain-COCA) cost, for *any* advice sequence; the
   hypothesis suite drives the :class:`TrustGuard` with adversarial
   slot histories and checks the invariant after every step.
3. **Hysteresis** — trust transitions are deterministic, alternate
   direction, and can never be closer than the streak length of the
   state being left (no flapping).
4. **Resumability** — controller/guard/provider state round-trips
   through ``state_dict`` exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advice import (
    AdvisedController,
    CausalForecastProvider,
    FeedForecastProvider,
    ForecastAdvisor,
    ForecastWindow,
    TraceForecastProvider,
    TrustGuard,
)
from repro.core.coca import COCA
from repro.scenarios import small_scenario
from repro.sim import simulate

RECORD_ARRAYS = (
    "cost",
    "brown_energy",
    "queue",
    "served",
    "dropped",
    "facility_power",
    "v_applied",
)


@pytest.fixture(scope="module")
def advice_scenario():
    return small_scenario(horizon=24 * 3, seed=5)


def _plain(scenario, *, v=50.0):
    return COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=v,
        alpha=scenario.alpha,
    )


def _advisor(scenario, provider=None):
    return ForecastAdvisor(
        scenario.model,
        scenario.environment.portfolio,
        frame_length=24,
        horizon=scenario.horizon,
        provider=provider
        if provider is not None
        else TraceForecastProvider(scenario.environment),
        alpha=scenario.alpha,
    )


def _mismatches(a, b) -> list[str]:
    return [
        name
        for name in RECORD_ARRAYS
        if not np.array_equal(getattr(a, name), getattr(b, name))
    ]


# ---------------------------------------------------------------- windows
class TestForecastWindow:
    def test_round_trips_through_dict(self):
        window = ForecastWindow(
            start=24,
            arrival=[1.0, 2.5],
            onsite=[0.0, 0.1],
            price=[40.0, 41.0],
            offsite=[0.2, 0.2],
        )
        again = ForecastWindow.from_dict(window.to_dict())
        assert again.start == 24 and again.length == 2
        for name in ("arrival", "onsite", "price", "offsite"):
            assert np.array_equal(getattr(again, name), getattr(window, name))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="positive length"):
            ForecastWindow(
                start=0, arrival=[1.0, 2.0], onsite=[0.0], price=[40.0], offsite=[0.0]
            )

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError, match="positive length"):
            ForecastWindow(start=0, arrival=[], onsite=[], price=[], offsite=[])


class TestProviders:
    def test_trace_provider_slices_environment(self, advice_scenario):
        env = advice_scenario.environment
        provider = TraceForecastProvider(env)
        window = provider.window(24, 24)
        assert window is not None and window.start == 24
        assert np.array_equal(
            window.arrival, env.predicted_workload.values[24:48]
        )
        assert np.array_equal(window.price, env.price.values[24:48])

    def test_trace_provider_out_of_range(self, advice_scenario):
        provider = TraceForecastProvider(advice_scenario.environment)
        assert provider.window(advice_scenario.horizon, 24) is None
        assert provider.window(-1, 24) is None

    def test_trace_provider_clamps_at_horizon(self, advice_scenario):
        provider = TraceForecastProvider(advice_scenario.environment)
        window = provider.window(advice_scenario.horizon - 6, 24)
        assert window is not None and window.length == 6

    def test_causal_provider_needs_history(self):
        provider = CausalForecastProvider()
        assert provider.window(0, 4) is None

    def test_causal_provider_seasonal_multistep(self):
        provider = CausalForecastProvider()

        class _Obs:
            def __init__(self, arrival):
                self.arrival_rate = arrival
                self.onsite = 0.5
                self.price = 40.0

        # A full seasonal period of history: SeasonalNaive's multi-step
        # forecast replays "same hour yesterday".
        for i in range(24):
            provider.record_observation(_Obs(float(i)))
        window = provider.window(24, 6)
        assert window is not None
        assert np.array_equal(window.arrival, np.arange(6, dtype=np.float64))
        # Off-site defaults to the zero series until realizations arrive.
        assert np.array_equal(window.offsite, np.zeros(6))

    def test_causal_provider_state_round_trip(self):
        provider = CausalForecastProvider()

        class _Obs:
            arrival_rate, onsite, price = 3.0, 0.1, 42.0

        provider.record_observation(_Obs())
        provider.record_offsite(0.7)
        clone = CausalForecastProvider()
        clone.load_state_dict(provider.state_dict())
        assert clone.state_dict() == provider.state_dict()

    def test_feed_provider_matches_start(self):
        provider = FeedForecastProvider()
        assert provider.window(0, 2) is None
        payload = ForecastWindow(
            start=24, arrival=[1.0], onsite=[0.0], price=[40.0], offsite=[0.0]
        ).to_dict()
        provider.ingest(None)  # frames without payloads are no-ops
        provider.ingest(payload)
        assert provider.ingested == 1
        assert provider.window(24, 1) is not None

    def test_feed_provider_rejects_stale_window(self):
        provider = FeedForecastProvider()
        provider.ingest(
            ForecastWindow(
                start=0, arrival=[1.0], onsite=[0.0], price=[40.0], offsite=[0.0]
            ).to_dict()
        )
        # The stored window covers frame 0; frame 24 must NOT reuse it.
        assert provider.window(24, 1) is None
        assert provider.stale_rejected == 1
        clone = FeedForecastProvider()
        clone.load_state_dict(provider.state_dict())
        assert clone.state_dict() == provider.state_dict()


# ---------------------------------------------------------------- advisor
class TestForecastAdvisor:
    def test_frame_must_divide_horizon(self, advice_scenario):
        with pytest.raises(ValueError, match="divide the horizon"):
            ForecastAdvisor(
                advice_scenario.model,
                advice_scenario.environment.portfolio,
                frame_length=23,
                horizon=advice_scenario.horizon,
                provider=TraceForecastProvider(advice_scenario.environment),
            )

    def test_advice_covers_its_frame(self, advice_scenario):
        advisor = _advisor(advice_scenario)
        advice = advisor.advise(0)
        assert advice is not None
        assert advice.covers(0) and advice.covers(23) and not advice.covers(24)
        assert advice.mu >= 0.0 and advice.budget > 0.0
        assert advice.feasible
        assert advisor.frames_advised == 1

    def test_no_window_yields_no_advice(self, advice_scenario):
        advisor = _advisor(advice_scenario, provider=FeedForecastProvider())
        assert advisor.advise(0) is None
        assert advisor.frames_skipped == 1

    def test_advice_round_trips_through_dict(self, advice_scenario):
        from repro.advice import Advice

        advice = _advisor(advice_scenario).advise(0)
        again = Advice.from_dict(advice.to_dict())
        assert again.mu == advice.mu and again.budget == advice.budget
        assert np.array_equal(again.window.arrival, advice.window.arrival)

    def test_loose_budget_advises_cost_greedy(self, advice_scenario):
        # With an effectively infinite budget the bisection is skipped and
        # the advice is the pure cost-greedy multiplier mu = 0.
        advisor = ForecastAdvisor(
            advice_scenario.model,
            advice_scenario.environment.portfolio,
            frame_length=24,
            horizon=advice_scenario.horizon,
            provider=TraceForecastProvider(advice_scenario.environment),
            alpha=1e9,
        )
        advice = advisor.advise(0)
        assert advice.mu == 0.0 and advice.feasible


# ------------------------------------------------------------ trust guard
def _slot_strategy():
    """One slot's worth of guard inputs: (error, advised_excess, has_advice).

    ``advised_excess`` is the advised cost relative to a unit shadow cost,
    so regret and budget arithmetic are exercised across their thresholds.
    """
    return st.tuples(
        st.one_of(st.none(), st.floats(0.0, 5.0)),
        st.one_of(st.none(), st.floats(0.0, 4.0)),
        st.booleans(),
    )


def _drive(guard: TrustGuard, slots) -> None:
    for t, (error, excess, has_advice) in enumerate(slots):
        advised = None if excess is None else float(excess)
        guard.assess(
            t,
            error=error,
            advised_cost=advised,
            shadow_cost=1.0,
            has_advice=has_advice and advised is not None,
        )


class TestTrustGuardProperties:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_slot_strategy(), max_size=80))
    def test_budget_invariant_every_step(self, slots):
        guard = TrustGuard(lam=0.25, distrust_after=1, trust_after=1)
        for t, (error, excess, has_advice) in enumerate(slots):
            advised = None if excess is None else float(excess)
            guard.assess(
                t,
                error=error,
                advised_cost=advised,
                shadow_cost=1.0,
                has_advice=has_advice and advised is not None,
            )
            assert guard.committed_cost <= (1.0 + guard.lam) * guard.shadow_cost + 1e-9

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(_slot_strategy(), max_size=80),
        st.integers(1, 5),
        st.integers(1, 8),
    )
    def test_no_flapping_within_hysteresis_window(
        self, slots, distrust_after, trust_after
    ):
        guard = TrustGuard(
            distrust_after=distrust_after, trust_after=trust_after
        )
        _drive(guard, slots)
        states = [guard.initial_trust] + [up for _, up in guard.transitions]
        # Transitions alternate: you can only leave the state you are in.
        assert all(a != b for a, b in zip(states, states[1:]))
        for (t_prev, _), (t_next, to_state) in zip(
            guard.transitions, guard.transitions[1:]
        ):
            # Leaving a state needs a full streak inside it: re-trusting
            # at t_next requires trust_after good slots since t_prev, etc.
            min_gap = trust_after if to_state else distrust_after
            assert t_next - t_prev >= min_gap

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_slot_strategy(), max_size=60))
    def test_transitions_deterministic(self, slots):
        a = TrustGuard()
        b = TrustGuard()
        _drive(a, slots)
        _drive(b, slots)
        assert a.transitions == b.transitions
        assert a.summary() == b.summary()

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_slot_strategy(), max_size=60))
    def test_state_round_trip_mid_stream(self, slots):
        half = len(slots) // 2
        a = TrustGuard()
        _drive(a, slots)
        b = TrustGuard()
        _drive(b, slots[:half])
        c = TrustGuard()
        c.load_state_dict(b.state_dict())
        for t, (error, excess, has_advice) in enumerate(slots[half:], start=half):
            advised = None if excess is None else float(excess)
            c.assess(
                t,
                error=error,
                advised_cost=advised,
                shadow_cost=1.0,
                has_advice=has_advice and advised is not None,
            )
        assert c.state_dict() == a.state_dict()


class TestTrustGuard:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrustGuard(lam=-0.1)
        with pytest.raises(ValueError):
            TrustGuard(error_threshold=0.0)
        with pytest.raises(ValueError):
            TrustGuard(distrust_after=0)
        with pytest.raises(ValueError):
            TrustGuard(error_alpha=0.0)

    def test_distrust_needs_full_streak(self):
        guard = TrustGuard(distrust_after=3, trust_after=2)
        for t in range(2):
            guard.assess(t, error=None, advised_cost=None, shadow_cost=1.0,
                         has_advice=False)
        assert guard.trusted  # two bad slots < distrust_after
        guard.assess(2, error=None, advised_cost=None, shadow_cost=1.0,
                     has_advice=False)
        assert not guard.trusted
        assert guard.transitions == [(2, False)]

    def test_lam_zero_blocks_any_excess(self):
        guard = TrustGuard(lam=0.0)
        used = guard.assess(
            0, error=0.0, advised_cost=1.5, shadow_cost=1.0, has_advice=True
        )
        assert not used and guard.budget_blocks == 1
        assert guard.committed_cost == guard.shadow_cost == 1.0

    def test_budget_block_keeps_counting_good_slots(self):
        # A budget block is not a trust event: the state machine still
        # sees the slot as good, so trust is retained.
        guard = TrustGuard(lam=0.0, distrust_after=1)
        guard.assess(0, error=0.0, advised_cost=1.2, shadow_cost=1.0,
                     has_advice=True)
        assert guard.trusted and guard.transitions == []

    def test_cost_ratio_defaults_to_one(self):
        assert TrustGuard().cost_ratio == 1.0


# ----------------------------------------------------- differential runs
class TestBitIdentity:
    def test_no_advisor_is_transparent_shell(self, advice_scenario):
        plain = simulate(
            advice_scenario.model,
            _plain(advice_scenario),
            advice_scenario.environment,
        )
        wrapped = simulate(
            advice_scenario.model,
            AdvisedController(_plain(advice_scenario)),
            advice_scenario.environment,
        )
        assert _mismatches(plain, wrapped) == []

    def test_never_trusted_guard_is_bit_identical(self, advice_scenario):
        plain = simulate(
            advice_scenario.model,
            _plain(advice_scenario),
            advice_scenario.environment,
        )
        advised = simulate(
            advice_scenario.model,
            AdvisedController(
                _plain(advice_scenario),
                advisor=_advisor(advice_scenario),
                guard=TrustGuard(initial_trust=False, trust_after=10**9),
            ),
            advice_scenario.environment,
        )
        assert _mismatches(plain, advised) == []

    def test_trusted_advice_changes_the_run(self, advice_scenario):
        plain = simulate(
            advice_scenario.model,
            _plain(advice_scenario),
            advice_scenario.environment,
        )
        advised = simulate(
            advice_scenario.model,
            AdvisedController(
                _plain(advice_scenario), advisor=_advisor(advice_scenario)
            ),
            advice_scenario.environment,
        )
        # Sanity that the layer is live: trusted trace-backed advice must
        # actually steer some slots (otherwise the tests above are vacuous).
        assert _mismatches(plain, advised) != []

    def test_realized_bound_holds(self, advice_scenario):
        controller = AdvisedController(
            _plain(advice_scenario),
            advisor=_advisor(advice_scenario),
            guard=TrustGuard(lam=0.25),
        )
        advised = simulate(
            advice_scenario.model, controller, advice_scenario.environment
        )
        plain = simulate(
            advice_scenario.model,
            _plain(advice_scenario),
            advice_scenario.environment,
        )
        ratio = float(advised.cost.sum()) / float(plain.cost.sum())
        assert ratio <= 1.25 + 1e-9


# ----------------------------------------------------------- controller
class TestAdvisedController:
    def test_horizon_mismatch_rejected(self, advice_scenario):
        other = small_scenario(horizon=24 * 2, seed=5)
        controller = AdvisedController(
            _plain(other), advisor=_advisor(advice_scenario)
        )
        with pytest.raises(ValueError, match="horizon"):
            simulate(other.model, controller, other.environment)

    def test_status_dict_reports_advice(self, advice_scenario):
        controller = AdvisedController(
            _plain(advice_scenario), advisor=_advisor(advice_scenario)
        )
        simulate(advice_scenario.model, controller, advice_scenario.environment)
        status = controller.status_dict()
        assert status["advice"]["enabled"]
        assert status["advice"]["advised_slots"] + status["advice"][
            "fallback_slots"
        ] == advice_scenario.horizon
        assert controller.name() == "COCA+advice"

    def test_state_dict_round_trip(self, advice_scenario):
        controller = AdvisedController(
            _plain(advice_scenario), advisor=_advisor(advice_scenario)
        )
        simulate(advice_scenario.model, controller, advice_scenario.environment)
        clone = AdvisedController(
            _plain(advice_scenario), advisor=_advisor(advice_scenario)
        )
        clone.load_state_dict(controller.state_dict())
        assert clone.state_dict() == controller.state_dict()
        assert clone.guard.summary() == controller.guard.summary()

    def test_telemetry_stream(self, advice_scenario):
        from repro.telemetry import Telemetry

        telemetry = Telemetry.recording()
        controller = AdvisedController(
            _plain(advice_scenario), advisor=_advisor(advice_scenario)
        )
        simulate(
            advice_scenario.model,
            controller,
            advice_scenario.environment,
            telemetry=telemetry,
        )
        kinds = {e["kind"] for e in telemetry.tracer.events}
        assert {"advice.config", "advice.frame", "advice.decision",
                "advice.summary"} <= kinds
        decisions = [
            e for e in telemetry.tracer.events if e["kind"] == "advice.decision"
        ]
        assert len(decisions) == advice_scenario.horizon
        frames = [
            e for e in telemetry.tracer.events if e["kind"] == "advice.frame"
        ]
        assert len(frames) == advice_scenario.horizon // 24
        metrics = telemetry.metrics
        assert (
            metrics.counter("advice.advised_slots").value
            + metrics.counter("advice.fallback_slots").value
            == advice_scenario.horizon
        )

    def test_ingest_frame_routes_to_feed_provider(self, advice_scenario):
        provider = FeedForecastProvider()
        controller = AdvisedController(
            _plain(advice_scenario),
            advisor=_advisor(advice_scenario, provider=provider),
        )

        class _Frame:
            forecast = ForecastWindow(
                start=0, arrival=[1.0], onsite=[0.0], price=[40.0], offsite=[0.0]
            ).to_dict()

        controller.ingest_frame(_Frame())
        assert provider.ingested == 1
        # Frames without payloads (and advisor-less shells) are no-ops.
        controller.ingest_frame(object())
        AdvisedController(_plain(advice_scenario)).ingest_frame(_Frame())
        assert provider.ingested == 1
