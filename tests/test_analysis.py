"""Tests for the analysis helpers: sweeps, comparisons, tables."""

import numpy as np
import pytest

from repro.analysis import (
    compare_records,
    compare_with_perfecthp,
    cost_saving,
    find_neutral_v,
    format_value,
    overestimation_sweep,
    portfolio_sweep,
    render_table,
    run_coca,
    run_varying_v,
    sweep_constant_v,
    switching_sweep,
    time_bucket_rows,
)
from repro.baselines import CarbonUnaware
from repro.sim import simulate


class TestTables:
    def test_render_basic(self):
        rows = [{"a": 1.0, "b": True}, {"a": 2.5, "b": False}]
        out = render_table(rows, title="T")
        assert "T" in out and "a" in out and "yes" in out and "no" in out

    def test_column_order_respected(self):
        rows = [{"x": 1, "y": 2}]
        out = render_table(rows, columns=["y", "x"])
        assert out.index("y") < out.index("x")

    def test_missing_keys_blank(self):
        out = render_table([{"a": 1}, {"b": 2}])
        assert "a" in out and "b" in out

    def test_empty(self):
        assert "(empty)" in render_table([])

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(1234567.0) == "1.235e+06"
        assert format_value("s") == "s"


class TestSweeps:
    def test_constant_v_rows_monotone(self, fortnight_scenario):
        rows = sweep_constant_v(fortnight_scenario, [0.001, 0.05, 10.0])
        costs = [r["avg_cost"] for r in rows]
        deficits = [r["avg_deficit"] for r in rows]
        assert costs == sorted(costs, reverse=True)
        assert deficits == sorted(deficits)

    def test_find_neutral_v(self, fortnight_scenario):
        sc = fortnight_scenario
        v = find_neutral_v(sc, iters=8)
        record, _ = run_coca(sc, v)
        assert record.ledger(sc.environment.portfolio, sc.alpha).is_neutral()
        # Not absurdly conservative: a much larger V should violate.
        record_hi, _ = run_coca(sc, v * 20)
        assert not record_hi.ledger(sc.environment.portfolio, sc.alpha).is_neutral()

    def test_varying_v_runs(self, fortnight_scenario):
        record, controller = run_varying_v(
            fortnight_scenario, [0.001, 1.0], frame_length=24 * 7
        )
        assert record.v_applied[0] == 0.001
        assert record.v_applied[-1] == 1.0

    def test_perfecthp_comparison_keys(self, week_scenario):
        out = compare_with_perfecthp(week_scenario, 0.01)
        assert set(out) >= {"coca", "perfecthp", "cost_saving"}

    def test_overestimation_sweep_baseline_zero(self, week_scenario):
        rows = overestimation_sweep(week_scenario, [1.0, 1.2], v=0.01)
        assert rows[0]["cost_increase"] == 0.0
        assert rows[1]["phi"] == 1.2
        assert all(r["dropped"] == 0.0 for r in rows)

    def test_switching_sweep_monotone_energy(self, week_scenario):
        rows = switching_sweep(week_scenario, [0.0, 0.10], v=0.01)
        assert rows[0]["switching_energy"] == 0.0
        assert rows[1]["switching_energy"] >= 0.0

    def test_portfolio_sweep_small_change(self, fortnight_scenario):
        rows = portfolio_sweep(fortnight_scenario, [0.2, 0.4, 0.6], v=0.005)
        assert rows[0]["cost_change"] == 0.0
        # Paper: <1% change across splits; allow some slack at small scale.
        assert all(abs(r["cost_change"]) < 0.05 for r in rows)


class TestComparisons:
    def test_compare_records(self, week_scenario):
        sc = week_scenario
        a = simulate(sc.model, CarbonUnaware(sc.model), sc.environment)
        rows = compare_records([a], sc.environment.portfolio)
        assert rows[0]["cost_vs_base"] == 1.0

    def test_compare_missing_baseline(self, week_scenario):
        sc = week_scenario
        a = simulate(sc.model, CarbonUnaware(sc.model), sc.environment)
        with pytest.raises(ValueError):
            compare_records([a], sc.environment.portfolio, baseline="nope")

    def test_cost_saving_sign(self, week_scenario):
        sc = week_scenario
        a = simulate(sc.model, CarbonUnaware(sc.model), sc.environment)
        assert cost_saving(a, a) == 0.0

    def test_time_bucket_rows(self, week_scenario):
        sc = week_scenario
        a = simulate(sc.model, CarbonUnaware(sc.model), sc.environment)
        rows = time_bucket_rows([a], sc.environment.portfolio, buckets=5)
        assert len(rows) == 5
        assert "carbon-unaware cost" in rows[0]
        rows_m = time_bucket_rows(
            [a], sc.environment.portfolio, buckets=3, kind="moving"
        )
        assert len(rows_m) == 3
        with pytest.raises(ValueError):
            time_bucket_rows([a], sc.environment.portfolio, kind="bogus")
