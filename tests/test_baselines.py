"""Tests for the baseline policies: carbon-unaware, OPT, PerfectHP,
T-step lookahead."""

import numpy as np
import pytest

from repro.baselines import (
    CarbonUnaware,
    OfflineOptimal,
    PerfectHP,
    TStepLookahead,
    calibrate_budget,
    lookahead_optima,
    solve_dual_multiplier,
)
from repro.baselines.perfect_hp import allocate_caps
from repro.core import COCA
from repro.sim import simulate


class TestCarbonUnaware:
    def test_minimizes_per_slot_cost(self, week_scenario):
        """No other controller can beat carbon-unaware on average cost
        (it per-slot-minimizes g with no coupling constraint)."""
        sc = week_scenario
        unaware = simulate(sc.model, CarbonUnaware(sc.model), sc.environment)
        coca = COCA(sc.model, sc.environment.portfolio, v_schedule=0.01)
        coca_rec = simulate(sc.model, coca, sc.environment)
        assert unaware.average_cost <= coca_rec.average_cost + 1e-9

    def test_calibrate_budget_matches_simulation(self, week_scenario):
        sc = week_scenario
        budget = calibrate_budget(sc.model, sc.environment)
        record = simulate(sc.model, CarbonUnaware(sc.model), sc.environment)
        assert budget == pytest.approx(record.total_brown, rel=1e-9)

    def test_scenario_unaware_brown_consistent(self, week_scenario):
        sc = week_scenario
        assert calibrate_budget(sc.model, sc.environment) == pytest.approx(
            sc.unaware_brown, rel=1e-9
        )


class TestOfflineOptimal:
    def test_meets_budget(self, fortnight_scenario):
        sc = fortnight_scenario
        opt = OfflineOptimal(sc.model, budget=sc.budget, alpha=sc.alpha)
        record = simulate(sc.model, opt, sc.environment)
        assert record.total_brown <= sc.budget * (1 + 1e-6)

    def test_zero_multiplier_when_budget_slack(self, fortnight_scenario):
        sc = fortnight_scenario
        mu, sweep = solve_dual_multiplier(
            sc.model, sc.environment, budget=sc.unaware_brown * 2
        )
        assert mu == 0.0
        assert sweep.total_brown == pytest.approx(sc.unaware_brown, rel=1e-9)

    def test_beats_coca_on_cost(self, fortnight_scenario):
        """OPT has full information: for the same budget its cost is a
        lower benchmark for neutral COCA runs."""
        sc = fortnight_scenario
        opt = OfflineOptimal(sc.model, budget=sc.budget)
        opt_rec = simulate(sc.model, opt, sc.environment)
        coca = COCA(sc.model, sc.environment.portfolio, v_schedule=0.01)
        coca_rec = simulate(sc.model, coca, sc.environment)
        if coca_rec.total_brown <= sc.budget:
            # Allow the tiny duality gap of the discrete dual policy.
            assert opt_rec.average_cost <= coca_rec.average_cost * 1.01

    def test_lower_bound_below_policy_cost(self, fortnight_scenario):
        sc = fortnight_scenario
        mu, sweep = solve_dual_multiplier(sc.model, sc.environment, budget=sc.budget)
        lb = sweep.lower_bound(sc.budget, sc.horizon)
        assert lb <= sweep.total_cost / sc.horizon + 1e-9

    def test_requires_start(self, fortnight_scenario):
        sc = fortnight_scenario
        opt = OfflineOptimal(sc.model, budget=sc.budget)
        with pytest.raises(RuntimeError):
            opt.decide(sc.environment.observation(0))

    def test_negative_budget_rejected(self, fortnight_scenario):
        sc = fortnight_scenario
        with pytest.raises(ValueError):
            solve_dual_multiplier(sc.model, sc.environment, budget=-1.0)


class TestPerfectHP:
    def test_cap_allocation_proportional_within_window(self):
        predicted = np.concatenate([np.full(48, 1.0), np.full(48, 3.0)])
        caps = allocate_caps(predicted, budget=96.0, window=48)
        # Even split across windows: 48 each; uniform within each window.
        np.testing.assert_allclose(caps[:48], 1.0)
        np.testing.assert_allclose(caps[48:], 1.0)
        # Proportional within a mixed window:
        mixed = np.concatenate([np.full(24, 1.0), np.full(24, 3.0)])
        caps2 = allocate_caps(mixed, budget=48.0, window=48)
        assert caps2[30] == pytest.approx(3 * caps2[0])

    def test_caps_sum_to_budget(self):
        rng = np.random.default_rng(0)
        predicted = rng.uniform(0.1, 2.0, 200)
        caps = allocate_caps(predicted, budget=77.0, window=48)
        assert caps.sum() == pytest.approx(77.0)

    def test_idle_window_uniform(self):
        caps = allocate_caps(np.zeros(48), budget=48.0, window=48)
        np.testing.assert_allclose(caps, 1.0)

    def test_respects_caps_except_fallback(self, fortnight_scenario):
        sc = fortnight_scenario
        hp = PerfectHP(sc.model, alpha=sc.alpha)
        record = simulate(sc.model, hp, sc.environment)
        ok = record.brown_energy <= hp.caps * (1 + 1e-6) + 1e-9
        violations = ~ok
        # Any violation must be a declared fallback hour.
        assert np.all(hp.fallback[violations])

    def test_costlier_than_coca_or_worse_deficit(self, fortnight_scenario):
        """The paper's Fig. 3 claim, weakly: COCA does at least as well on
        cost while keeping the deficit no worse."""
        sc = fortnight_scenario
        hp_rec = simulate(sc.model, PerfectHP(sc.model, alpha=sc.alpha), sc.environment)
        coca = COCA(sc.model, sc.environment.portfolio, v_schedule=0.005)
        coca_rec = simulate(sc.model, coca, sc.environment)
        pf = sc.environment.portfolio
        assert (
            coca_rec.average_cost <= hp_rec.average_cost * 1.02
            or coca_rec.average_deficit(pf) <= hp_rec.average_deficit(pf)
        )

    def test_requires_start(self, fortnight_scenario):
        sc = fortnight_scenario
        hp = PerfectHP(sc.model)
        with pytest.raises(RuntimeError):
            hp.decide(sc.environment.observation(0))

    def test_window_validation(self, fortnight_scenario):
        with pytest.raises(ValueError):
            PerfectHP(fortnight_scenario.model, window=0)


class TestLookahead:
    def test_frames_meet_their_budgets(self, fortnight_scenario):
        sc = fortnight_scenario
        frames = lookahead_optima(sc.model, sc.environment, T=24 * 7)
        assert len(frames) == 2
        for fr in frames:
            assert fr.feasible
            assert fr.lower_bound <= fr.average_cost + 1e-9

    def test_infeasible_frames_reported_not_raised(self, fortnight_scenario):
        """Daily frames can violate the paper's feasibility assumption
        (a high-load, low-renewable day); they must degrade gracefully."""
        sc = fortnight_scenario
        frames = lookahead_optima(sc.model, sc.environment, T=24)
        assert len(frames) == 14
        assert all(np.isfinite(f.average_cost) for f in frames)

    def test_indivisible_horizon_rejected(self, fortnight_scenario):
        sc = fortnight_scenario
        with pytest.raises(ValueError, match="divide"):
            lookahead_optima(sc.model, sc.environment, T=100)

    def test_longer_frames_cheaper(self, fortnight_scenario):
        """More lookahead (larger T) can only help the oracle on average
        (budget pooling), modulo the tiny dual gap."""
        sc = fortnight_scenario
        short = lookahead_optima(sc.model, sc.environment, T=24)
        full = lookahead_optima(sc.model, sc.environment, T=sc.horizon)
        avg_short = np.mean([f.average_cost for f in short])
        avg_full = np.mean([f.average_cost for f in full])
        assert avg_full <= avg_short * 1.02

    def test_controller_form_runs(self, week_scenario):
        sc = week_scenario
        ctrl = TStepLookahead(sc.model, T=24, alpha=sc.alpha)
        record = simulate(sc.model, ctrl, sc.environment)
        assert record.horizon == sc.horizon
        assert np.isfinite(record.average_cost)

    def test_controller_requires_start(self, week_scenario):
        ctrl = TStepLookahead(week_scenario.model, T=24)
        with pytest.raises(RuntimeError):
            ctrl.decide(week_scenario.environment.observation(0))
