"""Tests for the vectorized whole-horizon sweep (solvers/batch.py).

The batch sweep must agree slot-for-slot with the per-slot enumeration
engine -- they implement the same optimization, one vectorized over time.
"""

import numpy as np
import pytest

from repro.core import DataCenterModel
from repro.solvers import HomogeneousEnumerationSolver, InfeasibleError
from repro.solvers.batch import batch_enumerate, supports_batch


@pytest.fixture(scope="module")
def slot_inputs(rng_module=np.random.default_rng(77)):
    n = 64
    return {
        "arrival": rng_module.uniform(0.0, 0.85, n),  # fraction, scaled later
        "onsite": rng_module.uniform(0.0, 0.004, n),
        "price": rng_module.uniform(10.0, 90.0, n),
    }


class TestAgainstPerSlot:
    @pytest.mark.parametrize("q", [0.0, 10.0, 200.0])
    def test_matches_enumeration(self, tiny_model, slot_inputs, q):
        lam = slot_inputs["arrival"] * tiny_model.fleet.capacity(tiny_model.gamma)
        res = batch_enumerate(
            tiny_model, lam, slot_inputs["onsite"], slot_inputs["price"], q=q, V=1.0
        )
        solver = HomogeneousEnumerationSolver(switching_aware=False)
        for t in range(lam.size):
            p = tiny_model.slot_problem(
                arrival_rate=lam[t],
                onsite=slot_inputs["onsite"][t],
                price=slot_inputs["price"][t],
                q=q,
                V=1.0,
            )
            sol = solver.solve(p)
            assert res.objective[t] == pytest.approx(
                sol.objective, rel=1e-9, abs=1e-12
            ), f"slot {t}"
            assert res.brown_energy[t] == pytest.approx(
                sol.evaluation.brown_energy, rel=1e-9, abs=1e-12
            )
            assert res.cost[t] == pytest.approx(sol.cost, rel=1e-9, abs=1e-12)

    def test_per_slot_q_array(self, tiny_model, slot_inputs):
        lam = slot_inputs["arrival"] * tiny_model.fleet.capacity(tiny_model.gamma)
        q = np.linspace(0.0, 100.0, lam.size)
        res = batch_enumerate(
            tiny_model, lam, slot_inputs["onsite"], slot_inputs["price"], q=q
        )
        solver = HomogeneousEnumerationSolver(switching_aware=False)
        for t in [0, lam.size // 2, lam.size - 1]:
            p = tiny_model.slot_problem(
                arrival_rate=lam[t],
                onsite=slot_inputs["onsite"][t],
                price=slot_inputs["price"][t],
                q=float(q[t]),
            )
            assert res.objective[t] == pytest.approx(
                solver.solve(p).objective, rel=1e-9
            )


class TestProperties:
    def test_brown_monotone_in_q(self, tiny_model, slot_inputs):
        """The OPT bisection relies on total brown being nonincreasing in
        the penalty."""
        lam = slot_inputs["arrival"] * tiny_model.fleet.capacity(tiny_model.gamma)
        browns = [
            batch_enumerate(
                tiny_model, lam, slot_inputs["onsite"], slot_inputs["price"], q=q
            ).total_brown
            for q in [0.0, 5.0, 20.0, 100.0, 1000.0]
        ]
        assert all(b1 >= b2 - 1e-9 for b1, b2 in zip(browns, browns[1:]))

    def test_zero_arrival_all_off(self, tiny_model):
        res = batch_enumerate(
            tiny_model, np.zeros(4), np.zeros(4), np.full(4, 40.0)
        )
        assert np.all(res.servers_on == 0)
        assert np.all(res.it_power == 0)
        assert np.all(res.speed_level == -1)

    def test_infeasible_slot_raises(self, tiny_model):
        lam = np.array([10.0 * tiny_model.fleet.max_capacity])
        with pytest.raises(InfeasibleError):
            batch_enumerate(tiny_model, lam, np.zeros(1), np.full(1, 40.0))

    def test_supports_batch_detection(self, tiny_model, hetero_model):
        assert supports_batch(tiny_model)
        assert not supports_batch(hetero_model)

    def test_heterogeneous_rejected(self, hetero_model):
        with pytest.raises(ValueError, match="homogeneous"):
            batch_enumerate(hetero_model, np.ones(2), np.zeros(2), np.ones(2))

    def test_length_mismatch_rejected(self, tiny_model):
        with pytest.raises(ValueError, match="length"):
            batch_enumerate(tiny_model, np.ones(3), np.zeros(2), np.ones(3))

    def test_chunking_consistent(self, tiny_model):
        """Results must not depend on the chunk boundary."""
        import repro.solvers.batch as batch_mod

        n = 40
        rng = np.random.default_rng(5)
        lam = rng.uniform(0, 0.8, n) * tiny_model.fleet.capacity(tiny_model.gamma)
        onsite = rng.uniform(0, 0.002, n)
        price = rng.uniform(20, 60, n)
        full = batch_enumerate(tiny_model, lam, onsite, price, q=3.0)
        old = batch_mod._CHUNK
        try:
            batch_mod._CHUNK = 7
            small = batch_enumerate(tiny_model, lam, onsite, price, q=3.0)
        finally:
            batch_mod._CHUNK = old
        np.testing.assert_allclose(full.objective, small.objective)
        np.testing.assert_allclose(full.servers_on, small.servers_on)
