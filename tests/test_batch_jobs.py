"""Tests for the delay-tolerant batch-queue substrate (section 2.3)."""

import numpy as np
import pytest

from repro.core.batch_jobs import BatchAwareCOCA, BatchBacklog
from repro.sim import simulate
from repro.traces import Trace


class TestBatchBacklog:
    def test_conservation(self):
        q = BatchBacklog()
        q.update(arrivals=5.0, served=2.0)
        q.update(arrivals=1.0, served=4.0)
        assert q.backlog == pytest.approx(0.0)
        assert q.total_arrived == 6.0
        assert q.total_served == 6.0

    def test_cannot_serve_phantom_work(self):
        q = BatchBacklog()
        q.update(arrivals=1.0, served=0.0)
        with pytest.raises(ValueError, match="more batch work"):
            q.update(arrivals=0.0, served=2.0)

    def test_negative_rejected(self):
        q = BatchBacklog()
        with pytest.raises(ValueError):
            q.update(arrivals=-1.0, served=0.0)

    def test_history(self):
        q = BatchBacklog()
        q.update(2.0, 1.0)
        q.update(0.0, 1.0)
        np.testing.assert_allclose(q.history, [1.0, 0.0])


@pytest.fixture(scope="module")
def batch_setup(request):
    from repro.scenarios import small_scenario

    sc = small_scenario(horizon=24 * 7)
    rng = np.random.default_rng(4)
    # Batch work ~ 10% of interactive on average, bursty.
    batch = Trace(
        rng.uniform(0.0, 0.2, sc.horizon) * sc.environment.actual_workload.mean,
        name="batch",
        unit="req/s",
    )
    return sc, batch


class TestBatchAwareCOCA:
    def test_work_conservation_and_bounded_backlog(self, batch_setup):
        sc, batch = batch_setup
        controller = BatchAwareCOCA(
            sc.model,
            sc.environment.portfolio,
            batch,
            v_schedule=0.02,
            eta=0.5,
            max_age_slots=24,
        )
        record = simulate(sc.model, controller, sc.environment)
        served = np.asarray(controller.batch_served)
        assert served.shape == (sc.horizon,)
        # Conservation: arrived == served + final backlog.
        assert controller.backlog.total_arrived == pytest.approx(
            controller.backlog.total_served + controller.backlog.backlog
        )
        # The freshness floor keeps the backlog within ~max_age slots of
        # arrivals.
        assert controller.backlog.backlog < batch.mean * 3 * 24
        # Most of the work got done within the week.
        assert controller.backlog.total_served > 0.7 * controller.backlog.total_arrived

    def test_served_load_includes_batch(self, batch_setup):
        sc, batch = batch_setup
        controller = BatchAwareCOCA(
            sc.model, sc.environment.portfolio, batch, v_schedule=0.02, eta=0.5
        )
        record = simulate(sc.model, controller, sc.environment)
        extra = record.served - record.arrival_actual
        np.testing.assert_allclose(
            extra, np.asarray(controller.batch_served), atol=1e-6
        )

    def test_batch_prefers_cheap_slots(self, batch_setup):
        """The drift-plus-penalty rule should drain batch work at a lower
        average electricity price than the time-average."""
        sc, batch = batch_setup
        controller = BatchAwareCOCA(
            sc.model,
            sc.environment.portfolio,
            batch,
            v_schedule=0.02,
            eta=0.2,
            max_age_slots=72,
        )
        simulate(sc.model, controller, sc.environment)
        served = np.asarray(controller.batch_served)
        price = sc.environment.price.values
        if served.sum() > 0:
            served_weighted_price = float(np.sum(served * price) / served.sum())
            assert served_weighted_price <= price.mean() * 1.02

    def test_interactive_always_served(self, batch_setup):
        sc, batch = batch_setup
        controller = BatchAwareCOCA(
            sc.model, sc.environment.portfolio, batch, v_schedule=0.02
        )
        record = simulate(sc.model, controller, sc.environment)
        assert record.dropped.sum() == 0.0
        assert np.all(record.served >= record.arrival_actual - 1e-6)

    def test_validation(self, batch_setup):
        sc, batch = batch_setup
        short = Trace(np.ones(3))
        with pytest.raises(ValueError, match="horizon"):
            BatchAwareCOCA(sc.model, sc.environment.portfolio, short)
        with pytest.raises(ValueError):
            BatchAwareCOCA(sc.model, sc.environment.portfolio, batch, eta=-1.0)
        with pytest.raises(ValueError):
            BatchAwareCOCA(
                sc.model, sc.environment.portfolio, batch, max_age_slots=0
            )
        with pytest.raises(ValueError):
            BatchAwareCOCA(
                sc.model, sc.environment.portfolio, batch, service_candidates=1
            )

    def test_exposes_deficit_queue(self, batch_setup):
        sc, batch = batch_setup
        controller = BatchAwareCOCA(
            sc.model, sc.environment.portfolio, batch, v_schedule=0.02
        )
        simulate(sc.model, controller, sc.environment)
        assert len(controller.queue.history) == sc.horizon
