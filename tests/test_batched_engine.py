"""Batched water-filling engine vs the scalar oracle.

The ``(K, G)`` batched inner solve (:mod:`repro.solvers.batched`) carries
two contracts against per-row :func:`distribute_load` calls:

- **cold**: bit-identical per row -- loads bytes, dual variable, regime,
  electricity weight, iteration diagnostics, feasibility;
- **warm** (shared hint): bit-identical to the scalar *warm* path, which
  itself stays within 1e-9 relative objective error of the cold solve.

These tests pin both over randomized problems, boundary-regime-targeted
instances, the degenerate scalar fallbacks (``Wd == 0``, non-linear
tariffs, zero-count groups, all-off rows), the batched objective scoring,
and whole GSD chains run with speculation on vs off.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import FleetAction
from repro.cluster.power import TieredTariff
from repro.solvers import (
    GSDSolver,
    distribute_load,
    distribute_load_batch,
    geometric_temperature,
    objective_batch,
)
from repro.solvers.problem import InfeasibleError
from tests.test_fastpath import boundary_problem
from tests.test_solver_consistency import random_model, random_problem


def scalar_solve(problem, levels, hint=None):
    """The oracle: ``None`` where the scalar path raises InfeasibleError,
    mirroring the batched API's per-row convention."""
    try:
        return distribute_load(problem, levels, hint=hint)
    except InfeasibleError:
        return None


def row_mismatches(tag, got, want, k, strict=True):
    """Collect every field where a batched row differs from the oracle."""
    if (got is None) != (want is None):
        return [f"{tag} row {k}: feasibility {got is None} vs {want is None}"]
    if got is None:
        return []
    bad = []
    if got.per_server_load.tobytes() != want.per_server_load.tobytes():
        bad.append(f"{tag} row {k}: loads differ")
    if got.nu != want.nu:
        bad.append(f"{tag} row {k}: nu {got.nu} vs {want.nu}")
    if got.regime != want.regime:
        bad.append(f"{tag} row {k}: regime {got.regime} vs {want.regime}")
    if got.electricity_weight != want.electricity_weight:
        bad.append(f"{tag} row {k}: electricity_weight differs")
    if strict and got.inner_iters != want.inner_iters:
        bad.append(f"{tag} row {k}: iters {got.inner_iters} vs {want.inner_iters}")
    if strict and got.warm_started != want.warm_started:
        bad.append(f"{tag} row {k}: warm {got.warm_started} vs {want.warm_started}")
    return bad


def random_levels(rng, model):
    G = model.fleet.num_groups
    return np.array(
        [int(rng.integers(-1, model.fleet.num_levels[g])) for g in range(G)],
        dtype=np.int64,
    )


def random_batch(rng, model, base):
    """Neighbor flips + random vectors + duplicates + all-off rows: the mix
    the GSD speculation blocks and coordinate sweeps actually produce."""
    G = model.fleet.num_groups
    K = int(rng.integers(3, 12))
    rows = []
    for _ in range(K):
        kind = rng.random()
        if kind < 0.5:
            lv = base.copy()
            g = int(rng.integers(0, G))
            lv[g] = int(rng.integers(-1, model.fleet.num_levels[g]))
            rows.append(lv)
        elif kind < 0.8:
            rows.append(random_levels(rng, model))
        elif kind < 0.9 and rows:
            rows.append(rows[int(rng.integers(0, len(rows)))].copy())
        else:
            rows.append(np.full(G, -1, dtype=np.int64))
    return np.stack(rows)


def check_batch(problem, batch, hint=None, strict=True):
    """Run one batch both ways and return (mismatches, oracle rows)."""
    got = distribute_load_batch(problem, batch, hint=hint)
    bad, want_rows = [], []
    tag = "warm" if hint is not None else "cold"
    for k in range(batch.shape[0]):
        want = scalar_solve(problem, batch[k], hint=hint)
        want_rows.append(want)
        bad += row_mismatches(tag, got[k], want, k, strict=strict)
    return bad, want_rows


class TestRandomizedParity:
    """Port of the randomized stress harness: cold bit-identity and warm
    parity over neighbor-flip batches on random heterogeneous fleets."""

    def test_cold_and_warm_rows_match_scalar(self):
        rng = np.random.default_rng(0)
        regimes = {"billed": 0, "free": 0, "boundary": 0}
        n_rows = n_warm = 0
        for _ in range(25):
            model = random_model(rng)
            problem = random_problem(model, rng)
            base = random_levels(rng, model)
            batch = random_batch(rng, model, base)

            bad, want_rows = check_batch(problem, batch)
            assert not bad, "\n".join(bad)
            n_rows += batch.shape[0]
            for want in want_rows:
                if want is not None:
                    regimes[want.regime] += 1

            hint = scalar_solve(problem, base)
            if hint is None:
                continue
            bad_w, want_w = check_batch(problem, batch, hint=hint)
            assert not bad_w, "\n".join(bad_w)
            n_warm += sum(
                1 for w in want_w if w is not None and w.warm_started
            )

            # Warm objectives stay within the 1e-9 contract vs cold.
            objs_w, _ = objective_batch(problem, batch, hint=hint)
            objs_c, _ = objective_batch(problem, batch)
            finite = np.isfinite(objs_c)
            rel = np.abs(objs_w[finite] - objs_c[finite]) / np.maximum(
                np.abs(objs_c[finite]), 1e-300
            )
            assert np.all(rel <= 1e-9)

        # The random mix must actually exercise the fast regimes and the
        # warm path, or the parity checks above prove nothing.
        assert n_rows > 100
        assert n_warm > 10
        assert regimes["billed"] > 0 and regimes["free"] > 0

    def test_wd_zero_rows_match_scalar(self):
        """``Wd == 0`` (beta = 0) routes through the greedy delay-free fill
        via the scalar fallback; rows must still match the oracle."""
        rng = np.random.default_rng(1)
        checked = 0
        for _ in range(6):
            model = random_model(rng)
            problem = replace(random_problem(model, rng), beta=0.0)
            base = random_levels(rng, model)
            batch = random_batch(rng, model, base)
            bad, want_rows = check_batch(problem, batch)
            assert not bad, "\n".join(bad)
            checked += sum(1 for w in want_rows if w is not None)
        assert checked > 0

    def test_nonlinear_tariff_rows_match_scalar(self):
        """Non-linear tariffs need a per-row fixed point on the marginal;
        the batch API falls back to the scalar solver and must agree."""
        rng = np.random.default_rng(2)
        tariff = TieredTariff(thresholds=(1e-4,), multipliers=(1.0, 3.0))
        checked = 0
        for _ in range(4):
            model = random_model(rng)
            problem = replace(random_problem(model, rng), tariff=tariff)
            batch = random_batch(rng, model, random_levels(rng, model))
            bad, want_rows = check_batch(problem, batch)
            assert not bad, "\n".join(bad)
            checked += sum(1 for w in want_rows if w is not None)
        assert checked > 0

    def test_zero_count_group_rows_match_scalar(self):
        """Groups emptied by failures (count 0) must neither poison the
        batched solve with NaNs nor diverge from the scalar path."""
        rng = np.random.default_rng(3)
        checked = 0
        for _ in range(8):
            model = random_model(rng)
            g0 = int(rng.integers(0, model.fleet.num_groups))
            counts = model.fleet.counts.copy()
            counts[g0] = 0.0
            counts.setflags(write=False)
            model.fleet.counts = counts
            problem = random_problem(model, rng)
            base = random_levels(rng, model)
            base[g0] = int(rng.integers(0, model.fleet.num_levels[g0]))
            batch = random_batch(rng, model, base)
            bad, want_rows = check_batch(problem, batch)
            assert not bad, "\n".join(bad)
            checked += sum(1 for w in want_rows if w is not None)
            hint = scalar_solve(problem, base)
            if hint is not None:
                bad_w, _ = check_batch(problem, batch, hint=hint)
                assert not bad_w, "\n".join(bad_w)
        assert checked > 0

    def test_all_off_rows_are_infeasible(self):
        rng = np.random.default_rng(4)
        model = random_model(rng)
        problem = random_problem(model, rng)
        batch = np.full((3, model.fleet.num_groups), -1, dtype=np.int64)
        assert distribute_load_batch(problem, batch) == [None, None, None]


class TestBoundaryRegime:
    """Regime-targeted stress: calibrate problems whose optimum pins the
    facility power at the renewable supply, then check every row."""

    def test_boundary_rows_bit_identical(self):
        rng = np.random.default_rng(7)
        n_boundary_cold = n_boundary_warm = 0
        for _ in range(20):
            model = random_model(rng)
            G = model.fleet.num_groups
            levels = np.array(
                [int(rng.integers(0, model.fleet.num_levels[g])) for g in range(G)],
                dtype=np.int64,
            )
            try:
                p = boundary_problem(
                    model,
                    levels,
                    lam_frac=float(rng.uniform(0.2, 0.7)),
                    q=float(rng.choice([0.0, 5.0])),
                )
            except (InfeasibleError, ValueError, AssertionError):
                continue
            rows = [levels]
            for _ in range(6):
                lv = levels.copy()
                g = int(rng.integers(0, G))
                lv[g] = int(rng.integers(-1, model.fleet.num_levels[g]))
                rows.append(lv)
            batch = np.stack(rows)

            bad, want_rows = check_batch(p, batch)
            assert not bad, "\n".join(bad)
            n_boundary_cold += sum(
                1 for w in want_rows if w is not None and w.regime == "boundary"
            )
            hint = scalar_solve(p, levels)
            if hint is not None:
                bad_w, want_w = check_batch(p, batch, hint=hint)
                assert not bad_w, "\n".join(bad_w)
                n_boundary_warm += sum(
                    1 for w in want_w if w is not None and w.regime == "boundary"
                )
        assert n_boundary_cold > 0
        assert n_boundary_warm > 0


class TestObjectiveBatch:
    def test_matches_scalar_scoring_pipeline(self):
        """``objective_batch`` must reproduce the scalar scoring path (inner
        solve -> evaluate -> cap check -> inf on violation) bit for bit."""
        rng = np.random.default_rng(9)
        finite_rows = 0
        for _ in range(10):
            model = random_model(rng)
            problem = random_problem(model, rng)
            batch = random_batch(rng, model, random_levels(rng, model))
            objs, dists = objective_batch(problem, batch)
            for k in range(batch.shape[0]):
                want = scalar_solve(problem, batch[k])
                if want is None:
                    assert dists[k] is None and objs[k] == np.inf
                    continue
                ev = problem.evaluate(
                    FleetAction(batch[k], want.per_server_load)
                )
                expect = (
                    np.inf
                    if problem.violates_caps(ev)
                    else float(ev.objective)
                )
                assert objs[k] == expect
                if np.isfinite(expect):
                    finite_rows += 1
        assert finite_rows > 0


class TestGSDSpeculation:
    """End-to-end: GSD chains with speculative batching must replay the
    scalar chain exactly -- same accepted levels, same loads bytes, same
    objective, same evaluation count, same RNG end state."""

    def run(self, problem, *, batched, use_cache=True, warm=False, seed=3):
        solver = GSDSolver(
            iterations=120,
            delta=geometric_temperature(1.0, 1.12),
            rng=np.random.default_rng(seed),
            use_cache=use_cache,
            warm_start=warm,
            batched=batched,
        )
        sol = solver.solve(problem)
        return sol, str(solver.rng.bit_generator.state)

    def test_chains_bit_identical_across_engines(self):
        rng = np.random.default_rng(11)
        chains = 0
        for _ in range(5):
            model = random_model(rng)
            problem = random_problem(model, rng)
            try:
                b, st_b = self.run(problem, batched=True)
                s, st_s = self.run(problem, batched=False)
                nc, st_nc = self.run(problem, batched=False, use_cache=False)
                bw, st_bw = self.run(problem, batched=True, warm=True)
                sw, st_sw = self.run(problem, batched=False, warm=True)
            except InfeasibleError:
                continue
            chains += 1
            for tag, a, c in (
                ("batched-vs-scalar", b, s),
                ("batched-vs-nocache", b, nc),
                ("warm-batched-vs-warm-scalar", bw, sw),
            ):
                assert a.action.levels.tobytes() == c.action.levels.tobytes(), tag
                assert (
                    a.action.per_server_load.tobytes()
                    == c.action.per_server_load.tobytes()
                ), tag
                assert a.evaluation.objective == c.evaluation.objective, tag
                assert a.info["evaluations"] == c.info["evaluations"], tag
            assert st_b == st_s == st_nc == st_bw == st_sw
            assert b.info["speculation"]["blocks"] > 0
        assert chains > 0
