"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quickstart", "--scale", "galactic"])


class TestCommands:
    def test_traces(self, capsys):
        assert main(["traces", "fiu", "--horizon", "240"]) == 0
        out = capsys.readouterr().out
        assert "fiu-workload" in out
        assert "daily profile peak" in out

    def test_traces_all_kinds(self, capsys):
        for kind in ["msr", "solar", "wind", "price", "rec-price"]:
            assert main(["traces", kind, "--horizon", "240"]) == 0

    def test_quickstart_fixed_v(self, capsys):
        assert main(["quickstart", "--horizon", "72", "--v", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "carbon-unaware vs COCA" in out
        assert "COCA" in out

    def test_sweep_v(self, capsys):
        assert main(["sweep-v", "--horizon", "72", "--values", "0.01,10"]) == 0
        out = capsys.readouterr().out
        assert "impact of constant V" in out

    def test_compare_hp(self, capsys):
        assert (
            main(["compare-hp", "--horizon", "96", "--v", "0.02", "--buckets", "4"])
            == 0
        )
        out = capsys.readouterr().out
        assert "PerfectHP" in out

    def test_budget_sweep_no_opt(self, capsys):
        assert (
            main(
                [
                    "budget-sweep",
                    "--horizon",
                    "96",
                    "--fractions",
                    "0.95",
                    "--no-opt",
                    "--v-iters",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "budget" in out

    def test_msr_workload_option(self, capsys):
        assert (
            main(["quickstart", "--horizon", "72", "--v", "0.05", "--workload", "msr"])
            == 0
        )
