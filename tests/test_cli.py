"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import (
    EXIT_BAD_INPUT,
    EXIT_MONITOR_CRITICAL,
    EXIT_REPLAY_MISMATCH,
    MANIFEST_NAME,
    build_parser,
    main,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quickstart", "--scale", "galactic"])


class TestCommands:
    def test_traces(self, capsys):
        assert main(["traces", "fiu", "--horizon", "240"]) == 0
        out = capsys.readouterr().out
        assert "fiu-workload" in out
        assert "daily profile peak" in out

    def test_traces_all_kinds(self, capsys):
        for kind in ["msr", "solar", "wind", "price", "rec-price"]:
            assert main(["traces", kind, "--horizon", "240"]) == 0

    def test_quickstart_fixed_v(self, capsys):
        assert main(["quickstart", "--horizon", "72", "--v", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "carbon-unaware vs COCA" in out
        assert "COCA" in out

    def test_sweep_v(self, capsys):
        assert main(["sweep-v", "--horizon", "72", "--values", "0.01,10"]) == 0
        out = capsys.readouterr().out
        assert "impact of constant V" in out

    def test_compare_hp(self, capsys):
        assert (
            main(["compare-hp", "--horizon", "96", "--v", "0.02", "--buckets", "4"])
            == 0
        )
        out = capsys.readouterr().out
        assert "PerfectHP" in out

    def test_budget_sweep_no_opt(self, capsys):
        assert (
            main(
                [
                    "budget-sweep",
                    "--horizon",
                    "96",
                    "--fractions",
                    "0.95",
                    "--no-opt",
                    "--v-iters",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "budget" in out

    def test_msr_workload_option(self, capsys):
        assert (
            main(["quickstart", "--horizon", "72", "--v", "0.05", "--workload", "msr"])
            == 0
        )


class TestRunResume:
    def _run(self, ckpt_dir, *extra):
        return main(
            [
                "run",
                "--horizon", "48",
                "--seed", "3",
                "--checkpoint-dir", str(ckpt_dir),
                "--checkpoint-every", "4",
                *extra,
            ]
        )

    def test_run_writes_manifest_and_rotation(self, tmp_path, capsys):
        assert self._run(tmp_path / "ckpts", "--checkpoint-keep", "2") == 0
        names = sorted(os.listdir(tmp_path / "ckpts"))
        assert MANIFEST_NAME in names
        assert [n for n in names if n.startswith("ckpt-")] == [
            "ckpt-00000044.json",
            "ckpt-00000048.json",
        ]

    def test_run_without_checkpoints(self, capsys):
        assert main(["run", "--horizon", "48", "--seed", "3"]) == 0
        assert "run: cost" in capsys.readouterr().out

    def test_resume_verify_replay_passes(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        assert self._run(ckpt_dir) == 0
        assert main(["resume", str(ckpt_dir), "--verify-replay"]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_record_out_round_trips(self, tmp_path, capsys):
        from repro.state import load_record, record_mismatches

        ckpt_dir = tmp_path / "ckpts"
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        assert self._run(ckpt_dir, "--record-out", str(a)) == 0
        assert main(["resume", str(ckpt_dir), "--record-out", str(b)]) == 0
        assert record_mismatches(load_record(str(a)), load_record(str(b))) == []


class TestExitCodes:
    """The three failure classes exit with distinct codes (satellite
    contract): bad input = 1, monitor critical = 2, replay mismatch = 3."""

    def test_codes_are_distinct(self):
        assert len({EXIT_BAD_INPUT, EXIT_MONITOR_CRITICAL, EXIT_REPLAY_MISMATCH}) == 3

    def test_chaos_missing_schedule_is_bad_input(self, tmp_path, capsys):
        rc = main(
            [
                "chaos",
                "--horizon", "48",
                "--schedule", str(tmp_path / "missing.json"),
            ]
        )
        assert rc == EXIT_BAD_INPUT
        assert "cannot load fault schedule" in capsys.readouterr().err

    def test_chaos_torn_schedule_is_bad_input(self, tmp_path, capsys):
        torn = tmp_path / "torn.json"
        torn.write_text('{"events": [')
        rc = main(["chaos", "--horizon", "48", "--schedule", str(torn)])
        assert rc == EXIT_BAD_INPUT

    def test_resume_missing_manifest_is_bad_input(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path)]) == EXIT_BAD_INPUT

    def test_resume_without_valid_checkpoint_is_bad_input(self, tmp_path, capsys):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps(
                {
                    "format": "repro-run-manifest",
                    "version": 1,
                    "scenario": {
                        "scale": "small",
                        "horizon": 48,
                        "workload": "fiu",
                        "seed": 3,
                        "budget_fraction": 0.92,
                    },
                    "run": {
                        "v": 150.0,
                        "solver": "auto",
                        "iterations": 200,
                        "solver_seed": 7,
                        "fallback": "last_action",
                        "retries": 1,
                        "solve_deadline_ms": None,
                    },
                    "schedule": None,
                    "checkpoint": {"every": 1, "keep": 3},
                }
            )
        )
        rc = main(["resume", str(tmp_path)])
        assert rc == EXIT_BAD_INPUT
        assert "no valid checkpoint" in capsys.readouterr().err

    def test_resume_verify_replay_refuses_deadline_runs(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        assert (
            main(
                [
                    "run",
                    "--horizon", "48",
                    "--seed", "3",
                    "--checkpoint-dir", str(ckpt_dir),
                    "--solve-deadline-ms", "10000",
                ]
            )
            == 0
        )
        rc = main(["resume", str(ckpt_dir), "--verify-replay"])
        assert rc == EXIT_BAD_INPUT
        assert "solve-deadline" in capsys.readouterr().err

    def test_tampered_state_is_replay_mismatch(self, tmp_path, capsys):
        # A *validly checksummed* checkpoint whose state was rewritten is
        # exactly what --verify-replay exists to catch: the resumed record
        # carries the tampered history and must diverge from golden.
        from repro.state import (
            latest_valid_checkpoint,
            write_checkpoint,
        )

        ckpt_dir = tmp_path / "ckpts"
        assert (
            main(
                [
                    "run",
                    "--horizon", "48",
                    "--seed", "3",
                    "--checkpoint-dir", str(ckpt_dir),
                    "--checkpoint-every", "4",
                ]
            )
            == 0
        )
        ckpt = latest_valid_checkpoint(str(ckpt_dir))
        state = dict(ckpt.state)
        cols = {k: list(v) for k, v in state["cols"].items()}
        cols["cost"][0] += 1.0
        state["cols"] = cols
        write_checkpoint(str(ckpt_dir), ckpt.slot, state)
        rc = main(["resume", str(ckpt_dir), "--verify-replay"])
        assert rc == EXIT_REPLAY_MISMATCH
        assert "DIVERGED" in capsys.readouterr().err
