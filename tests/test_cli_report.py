"""Tests for the CLI report command and remaining CLI surface."""

import pathlib

import pytest

from repro.cli import main


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        assert (
            main(
                [
                    "report",
                    "--horizon",
                    "72",
                    "--v",
                    "0.02",
                    "--no-opt",
                    "--v-iters",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "# COCA scenario report" in out
        assert "## Controllers" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert (
            main(
                [
                    "report",
                    "--horizon",
                    "72",
                    "--v",
                    "0.02",
                    "--no-opt",
                    "-o",
                    str(target),
                ]
            )
            == 0
        )
        assert target.exists()
        text = target.read_text()
        assert "carbon-unaware" in text
        out = capsys.readouterr().out
        assert "written to" in out

    def test_budget_fraction_flag(self, capsys):
        assert (
            main(
                [
                    "quickstart",
                    "--horizon",
                    "72",
                    "--v",
                    "0.05",
                    "--budget-fraction",
                    "0.95",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "95% of unaware" in out

    def test_seed_changes_scenario(self, capsys):
        main(["traces", "fiu", "--horizon", "240", "--seed", "1"])
        a = capsys.readouterr().out
        main(["traces", "fiu", "--horizon", "240", "--seed", "2"])
        b = capsys.readouterr().out
        assert a != b
