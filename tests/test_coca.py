"""Tests for the COCA controller (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import COCA, ConstantV, FrameV
from repro.sim import simulate
from repro.solvers import GSDSolver


class TestQueueCoupling:
    def test_queue_tracks_deficit(self, week_scenario):
        sc = week_scenario
        coca = COCA(sc.model, sc.environment.portfolio, v_schedule=1e6)
        simulate(sc.model, coca, sc.environment)
        # With a huge V the controller is carbon-unaware; the queue should
        # have accumulated something over a 92%-budget week.
        assert coca.queue.length > 0

    def test_small_v_enforces_neutrality(self, fortnight_scenario):
        sc = fortnight_scenario
        coca = COCA(sc.model, sc.environment.portfolio, v_schedule=0.01)
        record = simulate(sc.model, coca, sc.environment)
        assert record.ledger(sc.environment.portfolio, sc.alpha).is_neutral()

    def test_cost_monotone_in_v(self, fortnight_scenario):
        """Fig. 2(a): larger V -> (weakly) smaller cost."""
        sc = fortnight_scenario
        costs = []
        for v in [0.001, 0.1, 100.0]:
            coca = COCA(sc.model, sc.environment.portfolio, v_schedule=v)
            costs.append(simulate(sc.model, coca, sc.environment).average_cost)
        assert costs[0] >= costs[1] >= costs[2]

    def test_brown_monotone_in_v(self, fortnight_scenario):
        """Fig. 2(b): larger V -> (weakly) more electricity usage."""
        sc = fortnight_scenario
        browns = []
        for v in [0.001, 0.1, 100.0]:
            coca = COCA(sc.model, sc.environment.portfolio, v_schedule=v)
            browns.append(simulate(sc.model, coca, sc.environment).total_brown)
        assert browns[0] <= browns[1] <= browns[2] + 1e-9

    def test_large_v_approaches_unaware(self, week_scenario):
        from repro.baselines import CarbonUnaware

        sc = week_scenario
        coca = COCA(sc.model, sc.environment.portfolio, v_schedule=1e9)
        coca_rec = simulate(sc.model, coca, sc.environment)
        unaware_rec = simulate(sc.model, CarbonUnaware(sc.model), sc.environment)
        assert coca_rec.average_cost == pytest.approx(
            unaware_rec.average_cost, rel=1e-6
        )


class TestFrames:
    def test_queue_resets_each_frame(self, week_scenario):
        sc = week_scenario
        coca = COCA(
            sc.model,
            sc.environment.portfolio,
            v_schedule=1e6,
            frame_length=24,
        )
        simulate(sc.model, coca, sc.environment)
        q = np.asarray(coca.queue_at_decision)
        # First decision of every frame sees a zero queue.
        assert np.all(q[::24] == 0.0)

    def test_v_changes_per_frame(self, week_scenario):
        sc = week_scenario
        coca = COCA(
            sc.model,
            sc.environment.portfolio,
            v_schedule=FrameV((1.0, 2.0, 3.0)),
            frame_length=48,
        )
        simulate(sc.model, coca, sc.environment)
        v = np.asarray(coca.v_history)
        assert v[0] == 1.0 and v[48] == 2.0 and v[96] == 3.0 and v[-1] == 3.0

    def test_frame_length_validation(self, week_scenario):
        sc = week_scenario
        with pytest.raises(ValueError):
            COCA(sc.model, sc.environment.portfolio, frame_length=0)

    def test_float_schedule_accepted(self, week_scenario):
        sc = week_scenario
        coca = COCA(sc.model, sc.environment.portfolio, v_schedule=5)
        assert isinstance(coca.v_schedule, ConstantV)


class TestInformationStructure:
    def test_decision_does_not_use_offsite(self, week_scenario):
        """COCA may not see f(t) at decision time: two environments whose
        off-site traces differ must produce identical decisions in slot 0."""
        sc = week_scenario
        from dataclasses import replace as dc_replace

        pf = sc.environment.portfolio
        pf2 = dc_replace(pf, offsite=pf.offsite.scale(0.5))
        env2 = sc.environment.with_portfolio(pf2)

        c1 = COCA(sc.model, pf, v_schedule=1.0)
        c2 = COCA(sc.model, pf2, v_schedule=1.0)
        s1 = c1.decide(sc.environment.observation(0))
        s2 = c2.decide(env2.observation(0))
        np.testing.assert_array_equal(s1.action.levels, s2.action.levels)

    def test_horizon_mismatch_detected(self, week_scenario, fortnight_scenario):
        coca = COCA(
            week_scenario.model,
            week_scenario.environment.portfolio,
            v_schedule=1.0,
        )
        with pytest.raises(ValueError, match="horizon"):
            coca.start(fortnight_scenario.environment)


class TestPluggableSolver:
    def test_runs_with_gsd(self, week_scenario):
        """Algorithm 1 with Algorithm 2 as the P3 engine, on a short run."""
        sc = week_scenario
        coca = COCA(
            sc.model,
            sc.environment.portfolio,
            v_schedule=0.01,
            solver=GSDSolver(iterations=400, delta=1e5, rng=np.random.default_rng(0)),
        )
        horizon = 12
        for t in range(horizon):
            obs = sc.environment.observation(t)
            sol = coca.decide(obs)
            assert np.isfinite(sol.objective)
            from repro.core.controller import SlotOutcome

            coca.observe(
                SlotOutcome(t=t, evaluation=sol.evaluation, offsite=sc.environment.offsite(t))
            )
        assert len(coca.v_history) == horizon
