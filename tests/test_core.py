"""Tests for the carbon-deficit queue, V-schedules, and Theorem 2 constants."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveV,
    CarbonDeficitQueue,
    ConstantV,
    FrameV,
    quarterly,
)
from repro.core.bounds import cost_bound, deficit_bound, lyapunov_constants
from repro.core.vschedule import FrameFeedback


class TestDeficitQueue:
    def test_eq17_dynamics(self):
        """q(t+1) = max(q + y - alpha f - z, 0)."""
        q = CarbonDeficitQueue(alpha=1.0, rec_per_slot=2.0)
        assert q.update(brown_energy=5.0, offsite=1.0) == pytest.approx(2.0)
        assert q.update(brown_energy=1.0, offsite=0.0) == pytest.approx(1.0)
        assert q.update(brown_energy=0.0, offsite=10.0) == 0.0  # floored

    def test_alpha_scales_service(self):
        q = CarbonDeficitQueue(alpha=0.5, rec_per_slot=0.0)
        q.update(brown_energy=4.0, offsite=4.0)
        assert q.length == pytest.approx(2.0)

    def test_never_negative(self):
        q = CarbonDeficitQueue(rec_per_slot=100.0)
        for _ in range(5):
            q.update(0.0, 0.0)
        assert q.length == 0.0

    def test_reset_keeps_history(self):
        q = CarbonDeficitQueue()
        q.update(3.0, 0.0)
        q.reset()
        assert q.length == 0.0
        assert list(q.history) == [3.0]

    def test_history_records_post_update(self):
        q = CarbonDeficitQueue(rec_per_slot=1.0)
        q.update(2.0, 0.0)
        q.update(2.0, 0.0)
        np.testing.assert_allclose(q.history, [1.0, 2.0])

    def test_input_validation(self):
        q = CarbonDeficitQueue()
        with pytest.raises(ValueError):
            q.update(-1.0, 0.0)
        with pytest.raises(ValueError):
            q.update(0.0, -1.0)
        with pytest.raises(ValueError):
            CarbonDeficitQueue(alpha=0.0)
        with pytest.raises(ValueError):
            CarbonDeficitQueue(rec_per_slot=-1.0)

    def test_drift_bound(self):
        q = CarbonDeficitQueue()
        assert q.drift_bound_B(4.0, 2.0) == pytest.approx(8.0)


class TestVSchedules:
    def test_constant(self):
        s = ConstantV(10.0)
        assert s.value(0) == s.value(99) == 10.0

    def test_constant_positive(self):
        with pytest.raises(ValueError):
            ConstantV(0.0)

    def test_frame_sequence_with_tail_reuse(self):
        s = FrameV((1.0, 2.0, 3.0))
        assert [s.value(r) for r in range(5)] == [1.0, 2.0, 3.0, 3.0, 3.0]

    def test_frame_validation(self):
        with pytest.raises(ValueError):
            FrameV(())
        with pytest.raises(ValueError):
            FrameV((1.0, -2.0))
        with pytest.raises(ValueError):
            FrameV((1.0,)).value(-1)

    def test_quarterly_needs_four(self):
        assert quarterly([1, 2, 3, 4]).value(2) == 3.0
        with pytest.raises(ValueError):
            quarterly([1, 2, 3])

    def test_adaptive_raises_v_when_under_budget(self):
        s = AdaptiveV(v0=10.0, up=2.0, down=0.5)
        assert s.value(0) == 10.0
        fb = FrameFeedback(average_cost=1.0, final_queue_length=0.0, average_deficit=-5.0)
        assert s.value(1, feedback=fb) == 20.0

    def test_adaptive_lowers_v_when_over_budget(self):
        s = AdaptiveV(v0=10.0, up=2.0, down=0.5)
        s.value(0)
        fb = FrameFeedback(average_cost=1.0, final_queue_length=9.0, average_deficit=5.0)
        assert s.value(1, feedback=fb) == 5.0

    def test_adaptive_clamped(self):
        s = AdaptiveV(v0=10.0, up=100.0, v_max=50.0)
        s.value(0)
        fb = FrameFeedback(average_cost=0.0, final_queue_length=0.0, average_deficit=-1.0)
        assert s.value(1, feedback=fb) == 50.0

    def test_adaptive_validation(self):
        with pytest.raises(ValueError):
            AdaptiveV(v0=-1.0)
        with pytest.raises(ValueError):
            AdaptiveV(v0=1.0, down=1.5)


class TestTheorem2Constants:
    def make(self, fortnight_scenario):
        sc = fortnight_scenario
        return lyapunov_constants(sc.model, sc.environment.portfolio)

    def test_constants_positive(self, fortnight_scenario):
        c = self.make(fortnight_scenario)
        assert c.B > 0 and c.D > 0 and c.y_max > 0

    def test_y_max_covers_worst_case(self, fortnight_scenario):
        sc = fortnight_scenario
        c = self.make(fortnight_scenario)
        assert c.y_max >= sc.model.fleet.max_power

    def test_C_increases_with_T(self, fortnight_scenario):
        c = self.make(fortnight_scenario)
        assert c.C(1) == pytest.approx(c.B)
        assert c.C(10) > c.C(2)
        with pytest.raises(ValueError):
            c.C(0)

    def test_cost_bound_shrinks_with_V(self, fortnight_scenario):
        c = self.make(fortnight_scenario)
        g = np.array([10.0, 12.0])
        hi = cost_bound(c, g, np.array([1.0, 1.0]), T=24)
        lo = cost_bound(c, g, np.array([100.0, 100.0]), T=24)
        assert lo < hi
        assert lo >= g.mean()

    def test_deficit_bound_grows_with_V(self, fortnight_scenario):
        sc = fortnight_scenario
        c = self.make(fortnight_scenario)
        g = np.array([10.0])
        lo = deficit_bound(c, sc.environment.portfolio, g, np.array([1.0]), T=24)
        hi = deficit_bound(c, sc.environment.portfolio, g, np.array([1e4]), T=24)
        assert hi > lo

    def test_shape_validation(self, fortnight_scenario):
        c = self.make(fortnight_scenario)
        with pytest.raises(ValueError):
            cost_bound(c, np.array([1.0]), np.array([1.0, 2.0]), T=1)
        with pytest.raises(ValueError):
            cost_bound(c, np.array([1.0]), np.array([-1.0]), T=1)
