"""Kill-at-slot-k crash recovery: SIGKILL a checkpointed run, resume it,
and require the result to be bit-identical to an uninterrupted run.

This is the end-to-end proof of the ``repro.state`` contract: the harness
launches ``repro run`` in a subprocess with per-slot checkpoints and an
artificial per-slot sleep (so the kill lands mid-horizon at a
timing-dependent slot), SIGKILLs it with no chance to clean up, then
resumes in-process from whatever the rotation holds and diffs the final
:class:`~repro.sim.metrics.SimulationRecord` against a golden run that was
never interrupted.  Seeds cover the plain deterministic path and a chaos
schedule with a lossy distributed bus.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import MANIFEST_NAME, _materialize_run
from repro.sim import simulate
from repro.state import latest_valid_checkpoint, list_checkpoints, record_mismatches

_REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _spawn_run(args):
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = _REPO_SRC + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "run", *args],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _kill_mid_run(proc, ckpt_dir, *, min_checkpoints=5, timeout_s=90.0):
    """SIGKILL ``proc`` once the rotation shows real mid-run progress.

    Returns the number of checkpoints on disk at kill time; fails the test
    if the run finishes (or stalls) before a mid-horizon kill was possible.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            pytest.fail(
                "run finished before it could be killed mid-horizon; "
                "raise --slot-sleep-ms or the horizon"
            )
        seen = list_checkpoints(ckpt_dir)
        if len(seen) >= min_checkpoints:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            return len(seen)
        time.sleep(0.05)
    proc.kill()
    proc.wait(timeout=30)
    pytest.fail("run never produced enough checkpoints to kill mid-horizon")


def _resume_and_diff(ckpt_dir):
    """Resume from the newest valid checkpoint; diff against golden."""
    with open(os.path.join(ckpt_dir, MANIFEST_NAME)) as fh:
        manifest = json.load(fh)
    ckpt = latest_valid_checkpoint(ckpt_dir)
    assert ckpt is not None, "SIGKILL left no valid checkpoint behind"
    assert 0 < ckpt.slot < int(manifest["scenario"]["horizon"])

    scenario, controller, injector, policy = _materialize_run(manifest)
    resumed = simulate(
        scenario.model,
        controller,
        scenario.environment,
        faults=injector,
        degradation=policy,
        resume_from=ckpt,
    )
    scenario, controller, injector, policy = _materialize_run(manifest, scenario=scenario)
    golden = simulate(
        scenario.model,
        controller,
        scenario.environment,
        faults=injector,
        degradation=policy,
    )
    assert record_mismatches(resumed, golden) == [], (
        f"resume from slot {ckpt.slot} diverged from the uninterrupted run"
    )
    return ckpt.slot


@pytest.mark.parametrize("seed", [3, 5, 9])
def test_sigkill_then_resume_is_bit_identical(tmp_path, seed):
    ckpt_dir = str(tmp_path / "ckpts")
    proc = _spawn_run(
        [
            "--horizon", "96",
            "--seed", str(seed),
            "--checkpoint-dir", ckpt_dir,
            "--checkpoint-every", "1",
            "--checkpoint-keep", "3",
            "--slot-sleep-ms", "40",
        ]
    )
    _kill_mid_run(proc, ckpt_dir, min_checkpoints=3)
    slot = _resume_and_diff(ckpt_dir)
    assert slot >= 3


def test_sigkill_then_resume_under_lossy_bus_chaos(tmp_path):
    ckpt_dir = str(tmp_path / "ckpts")
    proc = _spawn_run(
        [
            "--horizon", "72",
            "--seed", "5",
            "--chaos",
            "--fault-seed", "11",
            "--signal-rate", "0.02",
            "--loss", "0.15",
            "--delay", "0.1",
            "--duplicate", "0.05",
            "--solver", "distributed",
            "--iterations", "6",
            "--checkpoint-dir", ckpt_dir,
            "--checkpoint-every", "1",
            "--checkpoint-keep", "3",
            "--slot-sleep-ms", "40",
        ]
    )
    _kill_mid_run(proc, ckpt_dir, min_checkpoints=3)
    _resume_and_diff(ckpt_dir)


def test_corrupt_newest_checkpoint_falls_back_on_resume(tmp_path):
    ckpt_dir = str(tmp_path / "ckpts")
    proc = _spawn_run(
        [
            "--horizon", "96",
            "--seed", "3",
            "--checkpoint-dir", ckpt_dir,
            "--checkpoint-every", "1",
            "--checkpoint-keep", "3",
            "--slot-sleep-ms", "40",
        ]
    )
    _kill_mid_run(proc, ckpt_dir, min_checkpoints=3)
    newest = list_checkpoints(ckpt_dir)[-1]
    blob = bytearray(open(newest, "rb").read())
    blob[len(blob) // 2] ^= 0x10
    open(newest, "wb").write(bytes(blob))
    _resume_and_diff(ckpt_dir)
