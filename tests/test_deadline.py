"""Deadline-bounded anytime solving: budgets, incumbents, monitoring.

The contract (docs/OPERATIONS.md): a :class:`~repro.solvers.SolveDeadline`
threads a wall-clock budget into the iterative P3 engines; on expiry they
return their best *feasible* incumbent (flagged in ``info["deadline"]``)
rather than blowing the slot, raise
:class:`~repro.solvers.DeadlineExceededError` only when no feasible
incumbent exists yet (which the engine's degradation path absorbs like any
infeasible solve), and the run's ``deadline.*`` telemetry is watched by
:class:`~repro.monitor.DeadlineMonitor`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coca import COCA
from repro.faults import DegradationPolicy, FaultSchedule
from repro.monitor import AlertChannel, DeadlineMonitor, default_suite, replay
from repro.scenarios import small_scenario
from repro.sim import simulate
from repro.solvers import (
    BruteForceSolver,
    CoordinateDescentSolver,
    DeadlineExceededError,
    GSDSolver,
    InfeasibleError,
    SolveDeadline,
)
from repro.telemetry import InMemoryTracer, Telemetry
from tests.conftest import make_problem


class TestSolveDeadline:
    def test_unbounded_never_expires(self):
        deadline = SolveDeadline(None)
        assert not deadline.expired()
        assert deadline.remaining_ms() == float("inf")

    def test_zero_budget_expires_immediately(self):
        deadline = SolveDeadline(0.0)
        assert deadline.expired()
        assert deadline.remaining_ms() == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SolveDeadline(-1.0)

    def test_elapsed_advances(self):
        deadline = SolveDeadline(10_000.0)
        first = deadline.elapsed_ms()
        second = deadline.elapsed_ms()
        assert second >= first >= 0.0

    def test_is_infeasible_subclass(self):
        # The engine's degradation path catches InfeasibleError; a deadline
        # blowout with no incumbent must ride the same fallback.
        assert issubclass(DeadlineExceededError, InfeasibleError)


class TestAnytimeSolvers:
    def _assert_feasible(self, problem, solution):
        fleet = problem.fleet
        caps = np.where(
            solution.action.levels >= 0,
            problem.gamma * fleet.group_speeds(solution.action.levels),
            0.0,
        )
        assert np.all(solution.action.per_server_load <= caps + 1e-9)
        assert solution.action.served_load(fleet) >= problem.arrival_rate - 1e-6
        assert np.isfinite(solution.evaluation.cost)

    def test_gsd_expired_returns_cap_feasible_incumbent(self, tiny_model):
        problem = make_problem(tiny_model)
        solver = GSDSolver(
            iterations=50, rng=np.random.default_rng(0), deadline_ms=0.0
        )
        solution = solver.solve(problem)
        info = solution.info["deadline"]
        assert info["expired"] and info["completed"] == 0
        assert info["planned"] == 50
        self._assert_feasible(problem, solution)

    def test_gsd_unbounded_reports_full_run(self, tiny_model):
        solver = GSDSolver(iterations=30, rng=np.random.default_rng(0))
        solution = solver.solve(make_problem(tiny_model))
        assert "deadline" not in solution.info

    def test_gsd_deadline_off_matches_deadline_unexpired(self, tiny_model):
        problem = make_problem(tiny_model)
        plain = GSDSolver(iterations=30, rng=np.random.default_rng(1)).solve(problem)
        generous = GSDSolver(
            iterations=30, rng=np.random.default_rng(1), deadline_ms=60_000.0
        ).solve(problem)
        assert np.array_equal(plain.action.levels, generous.action.levels)
        assert plain.evaluation.cost == generous.evaluation.cost

    def test_coordinate_descent_expired_returns_incumbent(self, tiny_model):
        problem = make_problem(tiny_model)
        solver = CoordinateDescentSolver(deadline_ms=0.0)
        solution = solver.solve(problem)
        assert solution.info["deadline"]["expired"]
        self._assert_feasible(problem, solution)

    def test_brute_force_expired_returns_incumbent(self, tiny_model):
        problem = make_problem(tiny_model)
        solver = BruteForceSolver(deadline_ms=0.0)
        solution = solver.solve(problem)
        assert solution.info["deadline"]["expired"]
        self._assert_feasible(problem, solution)

    def test_expiry_emits_deadline_telemetry(self, tiny_model):
        tracer = InMemoryTracer()
        solver = GSDSolver(
            iterations=50, rng=np.random.default_rng(0), deadline_ms=0.0
        )
        solver.bind_telemetry(Telemetry(tracer=tracer))
        solver.solve(make_problem(tiny_model))
        expired = [e for e in tracer.events if e["kind"] == "deadline.expired"]
        assert len(expired) == 1
        event = expired[0]
        assert event["completed"] == 0 and event["planned"] == 50
        assert event["best_feasible"] is True


class TestEngineIntegration:
    def test_deadline_run_completes_and_overruns_are_flagged(self):
        scenario = small_scenario(horizon=48, seed=3)
        tracer = InMemoryTracer()
        controller = COCA(
            scenario.model,
            scenario.environment.portfolio,
            v_schedule=150.0,
            alpha=scenario.alpha,
            solver=GSDSolver(iterations=50, rng=np.random.default_rng(0)),
        )
        record = simulate(
            scenario.model,
            controller,
            scenario.environment,
            telemetry=Telemetry(tracer=tracer),
            solve_deadline_ms=0.0,
        )
        assert len(record.cost) == 48
        kinds = {e["kind"] for e in tracer.events}
        assert "deadline.expired" in kinds
        assert "deadline.slot_overrun" in kinds

    def test_deadline_error_rides_degradation_fallback(self):
        scenario = small_scenario(horizon=48, seed=3)

        class BlownBudget(COCA):
            def decide(self, observation):
                raise DeadlineExceededError("budget exhausted, no incumbent")

        tracer = InMemoryTracer()
        policy = DegradationPolicy(mode="proportional", retries=2)
        record = simulate(
            scenario.model,
            BlownBudget(
                scenario.model,
                scenario.environment.portfolio,
                v_schedule=150.0,
                alpha=scenario.alpha,
            ),
            scenario.environment,
            telemetry=Telemetry(tracer=tracer),
            faults=FaultSchedule(events=(), messages=None, seed=None),
            degradation=policy,
        )
        assert len(record.cost) == 48
        assert policy.fallbacks == 48
        # Deadline blowouts are not retried (retrying would blow the budget
        # again): every slot records exactly one fallback, reason "deadline".
        assert policy.solve_retries == 0
        assert policy.by_reason == {"deadline": 48}
        fallbacks = [e for e in tracer.events if e["kind"] == "fault.fallback"]
        assert fallbacks and all(e["reason"] == "deadline" for e in fallbacks)


class TestDeadlineMonitor:
    def test_in_default_suite(self):
        assert any(
            isinstance(m, DeadlineMonitor) for m in default_suite().monitors
        )

    def _observe(self, monitor, events):
        channel = AlertChannel()
        for event in events:
            monitor.observe(event, channel)
        monitor.finalize(channel)
        return channel

    def test_expiry_with_incumbent_is_informational(self):
        monitor = DeadlineMonitor()
        channel = self._observe(
            monitor,
            [{"kind": "deadline.expired", "best_feasible": True, "t": 3}],
        )
        assert monitor.violations == 0
        assert channel.count("critical") == 0

    def test_expiry_without_incumbent_warns(self):
        monitor = DeadlineMonitor()
        channel = self._observe(
            monitor,
            [{"kind": "deadline.expired", "best_feasible": False, "t": 3}],
        )
        assert channel.count("warning") >= 1

    def test_hard_overrun_is_critical(self):
        monitor = DeadlineMonitor(overrun_factor=2.0)
        channel = self._observe(
            monitor,
            [
                {
                    "kind": "deadline.slot_overrun",
                    "t": 5,
                    "budget_ms": 10.0,
                    "elapsed_ms": 35.0,
                }
            ],
        )
        assert monitor.violations == 1
        assert channel.count("critical") == 1

    def test_soft_overrun_is_not_a_violation(self):
        monitor = DeadlineMonitor(overrun_factor=2.0)
        channel = self._observe(
            monitor,
            [
                {
                    "kind": "deadline.slot_overrun",
                    "t": 5,
                    "budget_ms": 10.0,
                    "elapsed_ms": 12.0,
                }
            ],
        )
        assert monitor.violations == 0
        assert channel.count("critical") == 0

    def test_replay_flags_deadline_run(self):
        scenario = small_scenario(horizon=48, seed=3)
        tracer = InMemoryTracer()
        controller = COCA(
            scenario.model,
            scenario.environment.portfolio,
            v_schedule=150.0,
            alpha=scenario.alpha,
            solver=GSDSolver(iterations=50, rng=np.random.default_rng(0)),
        )
        simulate(
            scenario.model,
            controller,
            scenario.environment,
            telemetry=Telemetry(tracer=tracer),
            solve_deadline_ms=0.0,
        )
        suite = replay(tracer.events, default_suite())
        monitor = next(
            m for m in suite.monitors if isinstance(m, DeadlineMonitor)
        )
        assert monitor.checked > 0
        assert monitor.expiries > 0
