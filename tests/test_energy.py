"""Tests for renewables, RECs, and the carbon ledger (section 2.2, Eq. (10))."""

import numpy as np
import pytest

from repro.energy import CarbonLedger, RECAccount, RenewablePortfolio, onsite_mix
from repro.traces import Trace


def make_portfolio(horizon=100, onsite=1.0, offsite=2.0, recs=50.0):
    return RenewablePortfolio(
        onsite=Trace(np.full(horizon, onsite)),
        offsite=Trace(np.full(horizon, offsite)),
        recs=recs,
    )


class TestPortfolio:
    def test_carbon_budget(self):
        pf = make_portfolio(horizon=10, offsite=2.0, recs=30.0)
        assert pf.carbon_budget == pytest.approx(50.0)
        assert pf.offsite_fraction == pytest.approx(0.4)

    def test_horizon_mismatch_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            RenewablePortfolio(
                onsite=Trace(np.ones(5)), offsite=Trace(np.ones(6)), recs=0.0
            )

    def test_negative_supply_rejected(self):
        with pytest.raises(ValueError):
            RenewablePortfolio(
                onsite=Trace(np.array([-1.0, 0.0])),
                offsite=Trace(np.zeros(2)),
                recs=0.0,
            )

    def test_budget_split_preserves_total(self):
        pf = make_portfolio().with_budget_split(100.0, 0.3)
        assert pf.carbon_budget == pytest.approx(100.0)
        assert pf.offsite.total == pytest.approx(30.0)
        assert pf.recs == pytest.approx(70.0)

    def test_budget_split_preserves_shape(self):
        pf = make_portfolio(horizon=4)
        shaped = RenewablePortfolio(
            onsite=pf.onsite,
            offsite=Trace(np.array([1.0, 2.0, 3.0, 4.0])),
            recs=0.0,
        ).with_budget_split(20.0, 0.5)
        np.testing.assert_allclose(shaped.offsite.values, [1.0, 2.0, 3.0, 4.0])

    def test_energy_capping_mode(self):
        """Section 2.2 remark: drop renewables, Z becomes the energy cap."""
        pf = RenewablePortfolio.energy_capping(10, cap=123.0)
        assert pf.onsite.total == 0.0
        assert pf.offsite.total == 0.0
        assert pf.carbon_budget == 123.0

    def test_onsite_mix_unit_total(self):
        mix = onsite_mix(24 * 30, solar_fraction=0.5, seed=3)
        assert mix.total == pytest.approx(1.0)
        assert mix.values.min() >= 0

    def test_onsite_mix_fraction_validated(self):
        with pytest.raises(ValueError):
            onsite_mix(100, solar_fraction=1.5)


class TestRECAccount:
    def test_per_slot_allowance(self):
        acc = RECAccount(prepurchased=8760.0)
        assert acc.per_slot(8760, alpha=1.0) == pytest.approx(1.0)
        assert acc.per_slot(8760, alpha=0.5) == pytest.approx(0.5)

    def test_true_up_increases_total(self):
        acc = RECAccount(prepurchased=100.0)
        cost = acc.true_up(10.0, price=5.0)
        assert cost == 50.0
        assert acc.total == 110.0
        assert acc.trueup_cost == 50.0

    def test_sell_surplus(self):
        acc = RECAccount(prepurchased=100.0)
        revenue = acc.sell_surplus(20.0, price=3.0)
        assert revenue == 60.0
        assert acc.total == 80.0
        assert acc.sale_revenue == 60.0

    def test_cannot_oversell(self):
        acc = RECAccount(prepurchased=10.0)
        with pytest.raises(ValueError, match="more RECs"):
            acc.sell_surplus(11.0, price=1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RECAccount(prepurchased=-1.0)
        with pytest.raises(ValueError):
            RECAccount(prepurchased=1.0).per_slot(0)


class TestCarbonLedger:
    def test_neutral_run(self):
        pf = make_portfolio(horizon=10, offsite=2.0, recs=10.0)  # 3/slot budget
        ledger = CarbonLedger(portfolio=pf)
        for _ in range(10):
            ledger.record(2.5)
        assert ledger.is_neutral()
        assert ledger.deficit == pytest.approx(-5.0)
        assert ledger.surplus() == pytest.approx(5.0)
        assert ledger.required_trueup() == 0.0

    def test_violating_run(self):
        pf = make_portfolio(horizon=10, offsite=1.0, recs=0.0)
        ledger = CarbonLedger(portfolio=pf)
        for _ in range(10):
            ledger.record(2.0)
        assert not ledger.is_neutral()
        assert ledger.deficit == pytest.approx(10.0)
        assert ledger.required_trueup() == pytest.approx(10.0)
        assert ledger.average_hourly_deficit == pytest.approx(1.0)

    def test_alpha_scales_budget(self):
        """Eq. (10): alpha < 1 demands using less than the full budget."""
        pf = make_portfolio(horizon=10, offsite=2.0, recs=10.0)
        ledger = CarbonLedger(portfolio=pf, alpha=0.5)
        for _ in range(10):
            ledger.record(2.0)
        assert not ledger.is_neutral()  # budget halved to 1.5/slot
        assert ledger.deficit == pytest.approx(20.0 - 15.0)

    def test_cannot_overfill(self):
        pf = make_portfolio(horizon=2)
        ledger = CarbonLedger(portfolio=pf)
        ledger.record(1.0)
        ledger.record(1.0)
        with pytest.raises(ValueError, match="full budgeting period"):
            ledger.record(1.0)

    def test_negative_brown_rejected(self):
        ledger = CarbonLedger(portfolio=make_portfolio())
        with pytest.raises(ValueError):
            ledger.record(-0.1)

    def test_partial_period_prorates_recs(self):
        pf = make_portfolio(horizon=10, offsite=0.0, recs=100.0)
        ledger = CarbonLedger(portfolio=pf)
        for _ in range(5):
            ledger.record(8.0)
        # Budget through 5 slots = 5 * (100/10) = 50; brown = 40.
        assert ledger.budget_through() == pytest.approx(50.0)
        assert ledger.is_neutral()
