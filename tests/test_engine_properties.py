"""Property-based and edge-case tests for the simulation engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CarbonUnaware
from repro.cluster import Fleet, FleetAction, ServerGroup, opteron_2380
from repro.core import DataCenterModel
from repro.sim.engine import realize_action


@pytest.fixture(scope="module")
def model():
    fleet = Fleet([ServerGroup(opteron_2380(), 10) for _ in range(3)])
    return DataCenterModel(fleet=fleet, beta=10.0)


def planned_action(model, planned):
    """A plausible committed action for a planned arrival rate."""
    problem = model.slot_problem(arrival_rate=planned, onsite=0.0, price=40.0)
    return CarbonUnaware(model).solver.solve(problem).action


class TestRealizeActionProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(1.0, 280.0),  # planned
        st.floats(0.0, 280.0),  # actual
    )
    def test_serve_plus_drop_equals_actual(self, planned, actual):
        fleet = Fleet([ServerGroup(opteron_2380(), 10) for _ in range(3)])
        model = DataCenterModel(fleet=fleet, beta=10.0)
        action = planned_action(model, planned)
        realized, dropped = realize_action(model, action, actual, planned)
        served = realized.served_load(model.fleet)
        assert served + dropped == pytest.approx(actual, rel=1e-6, abs=1e-6)
        assert dropped >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.floats(1.0, 280.0), st.floats(0.0, 280.0))
    def test_caps_never_violated(self, planned, actual):
        fleet = Fleet([ServerGroup(opteron_2380(), 10) for _ in range(3)])
        model = DataCenterModel(fleet=fleet, beta=10.0)
        action = planned_action(model, planned)
        realized, _ = realize_action(model, action, actual, planned)
        speeds = model.fleet.group_speeds(realized.levels)
        caps = model.gamma * speeds
        assert np.all(realized.per_server_load <= caps + 1e-9)
        assert np.all(realized.per_server_load >= -1e-12)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(1.0, 280.0), st.floats(0.0, 280.0))
    def test_levels_never_change_at_realization(self, planned, actual):
        """Realization can only rescale loads; the committed speeds are
        physical state that cannot retroactively change."""
        fleet = Fleet([ServerGroup(opteron_2380(), 10) for _ in range(3)])
        model = DataCenterModel(fleet=fleet, beta=10.0)
        action = planned_action(model, planned)
        realized, _ = realize_action(model, action, actual, planned)
        np.testing.assert_array_equal(realized.levels, action.levels)

    def test_drop_only_when_capacity_exhausted(self, model):
        """Load is only dropped when the committed on-set is saturated."""
        action = planned_action(model, 50.0)
        on_capacity = float(
            np.sum(
                model.fleet.counts
                * model.gamma
                * model.fleet.group_speeds(action.levels)
            )
        )
        realized, dropped = realize_action(model, action, on_capacity * 2, 50.0)
        assert dropped == pytest.approx(on_capacity, rel=1e-6)
        served = realized.served_load(model.fleet)
        assert served == pytest.approx(on_capacity, rel=1e-6)
