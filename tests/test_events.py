"""Tests for the discrete-event M/G/1/PS simulator.

The analytic delay model (Eq. (4)) says mean jobs in system = rho/(1-rho)
and mean response time = 1/(x - lambda); PS queues are *insensitive* to the
service distribution beyond its mean.  The event simulator must agree.
"""

import numpy as np
import pytest

from repro.sim import empirical_delay_sum, simulate_ps_queue


class TestAgainstTheory:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_mean_jobs_mm1ps(self, rho):
        x = 10.0
        stats = simulate_ps_queue(
            rho * x, x, duration=30_000.0, rng=np.random.default_rng(1)
        )
        assert stats.mean_jobs == pytest.approx(rho / (1 - rho), rel=0.08)

    @pytest.mark.parametrize("rho", [0.4, 0.7])
    def test_mean_response_time(self, rho):
        x = 10.0
        stats = simulate_ps_queue(
            rho * x, x, duration=30_000.0, rng=np.random.default_rng(2)
        )
        assert stats.mean_response_time == pytest.approx(
            1.0 / (x - rho * x), rel=0.08
        )

    def test_utilization(self):
        stats = simulate_ps_queue(
            6.0, 10.0, duration=20_000.0, rng=np.random.default_rng(3)
        )
        assert stats.utilization == pytest.approx(0.6, rel=0.05)

    def test_insensitivity_to_service_distribution(self):
        """M/D/1-PS and M/M/1-PS share the same mean jobs in system."""
        x, lam = 10.0, 7.0
        det = simulate_ps_queue(
            lam,
            x,
            duration=30_000.0,
            rng=np.random.default_rng(4),
            service_sampler=lambda g, n: np.ones(n),
        )
        exp = simulate_ps_queue(
            lam, x, duration=30_000.0, rng=np.random.default_rng(5)
        )
        target = 0.7 / 0.3
        assert det.mean_jobs == pytest.approx(target, rel=0.08)
        assert exp.mean_jobs == pytest.approx(target, rel=0.08)

    def test_heavy_tailed_service_same_mean(self):
        """Pareto-ish service (finite mean) still matches -- insensitivity."""
        x, lam = 10.0, 6.0

        def pareto_mean_one(g, n):
            a = 2.5  # shape; mean = a/(a-1) * scale -> scale = (a-1)/a
            return (g.pareto(a, size=n) + 1.0) * (a - 1.0) / a

        stats = simulate_ps_queue(
            lam, x, duration=40_000.0, rng=np.random.default_rng(6),
            service_sampler=pareto_mean_one,
        )
        assert stats.mean_jobs == pytest.approx(0.6 / 0.4, rel=0.12)


class TestValidation:
    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            simulate_ps_queue(10.0, 10.0, duration=10.0, rng=np.random.default_rng(0))

    def test_bad_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            simulate_ps_queue(-1.0, 10.0, duration=10.0, rng=rng)
        with pytest.raises(ValueError):
            simulate_ps_queue(1.0, 10.0, duration=0.0, rng=rng)
        with pytest.raises(ValueError):
            simulate_ps_queue(
                1.0,
                10.0,
                duration=10.0,
                rng=rng,
                service_sampler=lambda g, n: np.zeros(n),
            )

    def test_zero_arrivals(self):
        stats = simulate_ps_queue(0.0, 10.0, duration=100.0, rng=np.random.default_rng(0))
        assert stats.mean_jobs == 0.0
        assert stats.completed == 0


class TestEmpiricalDelaySum:
    def test_matches_analytic_fleet_delay(self, tiny_fleet):
        """The event-based delay sum validates Fleet.action_delay_sum."""
        levels = np.array([3, 3, -1])
        loads = np.array([6.0, 4.0, 0.0])
        analytic = tiny_fleet.action_delay_sum(levels, loads)
        empirical = empirical_delay_sum(
            tiny_fleet,
            levels,
            loads,
            duration=20_000.0,
            rng=np.random.default_rng(7),
        )
        assert empirical == pytest.approx(analytic, rel=0.1)

    def test_idle_groups_contribute_nothing(self, tiny_fleet):
        levels = np.array([3, -1, -1])
        loads = np.array([0.0, 0.0, 0.0])
        assert empirical_delay_sum(tiny_fleet, levels, loads, duration=100.0) == 0.0
