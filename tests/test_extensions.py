"""Tests for the section-3.1/2.3 extensions: operational caps and network
delay."""

import numpy as np
import pytest

from dataclasses import replace

from repro.core import DataCenterModel
from repro.sim import Environment, simulate
from repro.solvers import (
    BruteForceSolver,
    CoordinateDescentSolver,
    GSDSolver,
    HomogeneousEnumerationSolver,
    InfeasibleError,
)
from repro.traces import Trace
from tests.conftest import make_problem


class TestPeakPowerCap:
    def test_cap_respected_by_enumeration(self, tiny_model):
        uncapped = HomogeneousEnumerationSolver().solve(
            make_problem(tiny_model, lam_frac=0.5)
        )
        cap = 0.8 * uncapped.evaluation.facility_power
        p = make_problem(tiny_model, lam_frac=0.5)
        p = replace(p, peak_power_cap=cap)
        capped = HomogeneousEnumerationSolver().solve(p)
        assert capped.evaluation.facility_power <= cap * (1 + 1e-9)
        assert capped.objective >= uncapped.objective - 1e-12

    def test_cap_respected_by_all_engines(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.5)
        cap = 0.85 * HomogeneousEnumerationSolver().solve(p).evaluation.facility_power
        p = replace(p, peak_power_cap=cap)
        for solver in (
            BruteForceSolver(),
            CoordinateDescentSolver(),
            GSDSolver(iterations=1500, delta=1e5, rng=np.random.default_rng(0)),
        ):
            sol = solver.solve(p)
            assert sol.evaluation.facility_power <= cap * (1 + 1e-9), solver

    def test_impossible_cap_raises(self, tiny_model):
        p = replace(make_problem(tiny_model, lam_frac=0.9), peak_power_cap=1e-9)
        with pytest.raises(InfeasibleError):
            HomogeneousEnumerationSolver().solve(p)
        with pytest.raises(InfeasibleError):
            BruteForceSolver().solve(p)

    def test_cap_validation(self, tiny_model):
        with pytest.raises(ValueError):
            replace(make_problem(tiny_model), peak_power_cap=0.0)

    def test_model_level_cap_propagates(self, tiny_fleet):
        model = DataCenterModel(fleet=tiny_fleet, peak_power_cap=0.05)
        p = model.slot_problem(arrival_rate=10.0, onsite=0.0, price=40.0)
        assert p.peak_power_cap == 0.05


class TestMaxDelayCap:
    def test_delay_cap_forces_more_capacity(self, tiny_model):
        # Light load so the uncapped optimum leaves servers off, making a
        # tighter delay target reachable by powering more on.
        base = make_problem(tiny_model, lam_frac=0.3)
        uncapped = HomogeneousEnumerationSolver().solve(base)
        tight = replace(base, max_delay_cost=0.85 * uncapped.evaluation.delay_cost)
        capped = HomogeneousEnumerationSolver().solve(tight)
        assert capped.evaluation.delay_cost <= tight.max_delay_cost * (1 + 1e-9)
        assert capped.action.active_servers(tiny_model.fleet) >= uncapped.action.active_servers(
            tiny_model.fleet
        )

    def test_delay_cap_validation(self, tiny_model):
        with pytest.raises(ValueError):
            replace(make_problem(tiny_model), max_delay_cost=-1.0)

    def test_violates_caps_helper(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.5)
        sol = HomogeneousEnumerationSolver().solve(p)
        assert not p.violates_caps(sol.evaluation)
        tight = replace(p, max_delay_cost=0.5 * sol.evaluation.delay_cost)
        assert tight.violates_caps(sol.evaluation)


class TestNetworkDelay:
    def test_adds_served_times_delay(self, tiny_model):
        base = make_problem(tiny_model, lam_frac=0.5)
        with_net = replace(base, network_delay=0.2)
        sol = HomogeneousEnumerationSolver().solve(base)
        ev_base = base.evaluate(sol.action)
        ev_net = with_net.evaluate(sol.action)
        extra = 0.2 * sol.action.served_load(tiny_model.fleet)
        assert ev_net.delay_sum == pytest.approx(ev_base.delay_sum + extra)
        assert ev_net.delay_cost == pytest.approx(
            ev_base.delay_cost + base.delay_weight * extra
        )

    def test_does_not_change_the_argmin(self, tiny_model):
        """Network delay scales with served load only, so the optimal
        configuration is unchanged."""
        base = make_problem(tiny_model, lam_frac=0.5)
        with_net = replace(base, network_delay=0.5)
        a = HomogeneousEnumerationSolver().solve(base)
        b = HomogeneousEnumerationSolver().solve(with_net)
        np.testing.assert_array_equal(a.action.levels, b.action.levels)

    def test_environment_trace_flows_to_observation(self, week_scenario):
        sc = week_scenario
        net = Trace(np.full(sc.horizon, 0.05), name="net-delay", unit="s")
        env = Environment(
            workload=sc.environment.workload,
            portfolio=sc.environment.portfolio,
            price=sc.environment.price,
            network_delay=net,
        )
        assert env.observation(3).network_delay == 0.05

    def test_simulation_records_higher_delay_cost(self, week_scenario):
        from repro.baselines import CarbonUnaware

        sc = week_scenario
        net = Trace(np.full(sc.horizon, 0.05))
        env = Environment(
            workload=sc.environment.workload,
            portfolio=sc.environment.portfolio,
            price=sc.environment.price,
            network_delay=net,
        )
        base = simulate(sc.model, CarbonUnaware(sc.model), sc.environment)
        with_net = simulate(sc.model, CarbonUnaware(sc.model), env)
        assert with_net.delay_cost.sum() > base.delay_cost.sum()
        np.testing.assert_allclose(with_net.served, base.served, rtol=1e-9)

    def test_horizon_checked(self, week_scenario):
        sc = week_scenario
        with pytest.raises(ValueError, match="horizon"):
            Environment(
                workload=sc.environment.workload,
                portfolio=sc.environment.portfolio,
                price=sc.environment.price,
                network_delay=Trace(np.ones(3)),
            )

    def test_negative_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            replace(make_problem(tiny_model), network_delay=-0.1)
