"""Tests for GSD under server failures (section 4.2's failure remark)."""

import numpy as np
import pytest

from repro.cluster import Fleet, ServerGroup, opteron_2380
from repro.core import DataCenterModel
from repro.solvers import BruteForceSolver, GSDSolver, InfeasibleError
from tests.conftest import make_problem


class TestGSDWithFailures:
    def test_failed_groups_stay_dark(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.4)
        sol = GSDSolver(
            iterations=1500,
            delta=1e5,
            rng=np.random.default_rng(0),
            failed_groups=[1],
        ).solve(p)
        assert sol.action.levels[1] == -1
        assert sol.action.per_server_load[1] == 0.0
        assert sol.action.served_load(tiny_model.fleet) == pytest.approx(
            p.arrival_rate, rel=1e-6
        )

    def test_matches_oracle_on_degraded_fleet(self, tiny_model):
        """GSD restricted to functioning groups must match brute force on
        the fleet with the failed group removed."""
        p = make_problem(tiny_model, lam_frac=0.5)
        delta = GSDSolver.auto_delta(p, greediness=50.0)
        sol = GSDSolver(
            iterations=3000,
            delta=delta,
            rng=np.random.default_rng(1),
            failed_groups=[0],
        ).solve(p)

        degraded = Fleet([ServerGroup(opteron_2380(), 10) for _ in range(2)])
        dm = DataCenterModel(fleet=degraded, beta=10.0)
        p2 = dm.slot_problem(
            arrival_rate=p.arrival_rate, onsite=p.onsite, price=p.price, q=p.q
        )
        oracle = BruteForceSolver().solve(p2)
        assert sol.objective <= oracle.objective * 1.02 + 1e-12

    def test_all_failed_rejected(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.1)
        with pytest.raises(ValueError, match="every group"):
            GSDSolver(iterations=10, delta=1e5, failed_groups=[0, 1, 2]).solve(p)

    def test_out_of_range_rejected(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.1)
        with pytest.raises(ValueError, match="out of range"):
            GSDSolver(iterations=10, delta=1e5, failed_groups=[7]).solve(p)

    def test_infeasible_when_survivors_lack_capacity(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.9)  # needs ~2.7 groups
        sol = GSDSolver(
            iterations=50, delta=1e5, failed_groups=[0, 1]
        )
        from repro.solvers import InfeasibleError

        with pytest.raises(InfeasibleError):
            # The remaining single group cannot carry 90% of total capacity;
            # every configuration the chain can reach is infeasible.
            sol.solve(p)
