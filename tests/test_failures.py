"""Tests for GSD under server failures (section 4.2's failure remark).

The first half covers the *static* failure mask on a single solve; the
``TestDynamicFailures`` half drives whole simulations through
``FaultSchedule`` so groups fail and recover mid-horizon (including
fail → repair → fail cycles and concurrent outages), asserting the served
load and the Theorem 2 carbon accounting across the transitions.
"""

import numpy as np
import pytest

from repro.cluster import Fleet, ServerGroup, opteron_2380
from repro.core import DataCenterModel
from repro.core.coca import COCA
from repro.faults import FaultEvent, FaultSchedule
from repro.scenarios import small_scenario
from repro.sim import simulate
from repro.solvers import BruteForceSolver, GSDSolver, InfeasibleError
from tests.conftest import make_problem


class TestGSDWithFailures:
    def test_failed_groups_stay_dark(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.4)
        sol = GSDSolver(
            iterations=1500,
            delta=1e5,
            rng=np.random.default_rng(0),
            failed_groups=[1],
        ).solve(p)
        assert sol.action.levels[1] == -1
        assert sol.action.per_server_load[1] == 0.0
        assert sol.action.served_load(tiny_model.fleet) == pytest.approx(
            p.arrival_rate, rel=1e-6
        )

    def test_matches_oracle_on_degraded_fleet(self, tiny_model):
        """GSD restricted to functioning groups must match brute force on
        the fleet with the failed group removed."""
        p = make_problem(tiny_model, lam_frac=0.5)
        delta = GSDSolver.auto_delta(p, greediness=50.0)
        sol = GSDSolver(
            iterations=3000,
            delta=delta,
            rng=np.random.default_rng(1),
            failed_groups=[0],
        ).solve(p)

        degraded = Fleet([ServerGroup(opteron_2380(), 10) for _ in range(2)])
        dm = DataCenterModel(fleet=degraded, beta=10.0)
        p2 = dm.slot_problem(
            arrival_rate=p.arrival_rate, onsite=p.onsite, price=p.price, q=p.q
        )
        oracle = BruteForceSolver().solve(p2)
        assert sol.objective <= oracle.objective * 1.02 + 1e-12

    def test_all_failed_rejected(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.1)
        with pytest.raises(ValueError, match="every group"):
            GSDSolver(iterations=10, delta=1e5, failed_groups=[0, 1, 2]).solve(p)

    def test_out_of_range_rejected(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.1)
        with pytest.raises(ValueError, match="out of range"):
            GSDSolver(iterations=10, delta=1e5, failed_groups=[7]).solve(p)

    def test_infeasible_when_survivors_lack_capacity(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.9)  # needs ~2.7 groups
        sol = GSDSolver(
            iterations=50, delta=1e5, failed_groups=[0, 1]
        )
        from repro.solvers import InfeasibleError

        with pytest.raises(InfeasibleError):
            # The remaining single group cannot carry 90% of total capacity;
            # every configuration the chain can reach is infeasible.
            sol.solve(p)


@pytest.fixture(scope="module")
def outage_scenario():
    """A seeded day on the small fleet for dynamic-failure runs."""
    return small_scenario(horizon=24, seed=11)


def _run_with_faults(scenario, schedule, *, v=150.0):
    controller = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=v,
        alpha=scenario.alpha,
    )
    record = simulate(
        scenario.model, controller, scenario.environment, faults=schedule
    )
    return record, controller


def _assert_carbon_accounting(record, controller, scenario):
    """Replay Eq. (17) from the recorded arrays: the queue the controller
    saw at each decision must equal the recursion over realized brown and
    off-site supply (``record.queue`` holds q *before* the slot's update)."""
    alpha = scenario.alpha
    z = controller.queue.rec_per_slot
    q = 0.0
    for t in range(record.horizon):
        assert record.queue[t] == pytest.approx(q, abs=1e-9), f"slot {t}"
        q = max(q + record.brown_energy[t] - alpha * record.offsite[t] - z, 0.0)
    assert controller.queue.length == pytest.approx(q, abs=1e-9)


class TestDynamicFailures:
    def test_fail_repair_fail_cycle(self, outage_scenario):
        """One group failing, recovering, then failing again mid-horizon."""
        schedule = FaultSchedule(
            events=(
                FaultEvent(t=3, kind="group_fail", group=1),
                FaultEvent(t=8, kind="group_repair", group=1),
                FaultEvent(t=14, kind="group_fail", group=1),
                FaultEvent(t=19, kind="group_repair", group=1),
            )
        )
        record, controller = _run_with_faults(outage_scenario, schedule)
        assert record.horizon == outage_scenario.horizon
        # Load stays conserved through every transition...
        np.testing.assert_allclose(
            record.served + record.dropped, record.arrival_actual, rtol=1e-9
        )
        # ...one group down leaves ample capacity, so nothing is dropped...
        assert record.dropped.sum() == 0.0
        # ...and the deficit queue still follows the Theorem 2 recursion.
        _assert_carbon_accounting(record, controller, outage_scenario)

    def test_concurrent_failures(self, outage_scenario):
        """Several groups down at once, recovering at different times."""
        schedule = FaultSchedule(
            events=(
                FaultEvent(t=4, kind="group_fail", group=0),
                FaultEvent(t=4, kind="group_fail", group=2),
                FaultEvent(t=6, kind="group_fail", group=5),
                FaultEvent(t=10, kind="group_repair", group=2),
                FaultEvent(t=12, kind="group_repair", group=0),
                FaultEvent(t=16, kind="group_repair", group=5),
            )
        )
        record, controller = _run_with_faults(outage_scenario, schedule)
        np.testing.assert_allclose(
            record.served + record.dropped, record.arrival_actual, rtol=1e-9
        )
        _assert_carbon_accounting(record, controller, outage_scenario)

    def test_outage_reduces_active_servers(self, outage_scenario):
        """During the outage window the realized fleet must actually be
        smaller -- the failure cannot be decision-side only."""
        G = outage_scenario.model.fleet.num_groups
        schedule = FaultSchedule(
            events=tuple(
                FaultEvent(t=6, kind="group_fail", group=g)
                for g in range(G // 2)
            )
            + tuple(
                FaultEvent(t=18, kind="group_repair", group=g)
                for g in range(G // 2)
            )
        )
        record, _ = _run_with_faults(outage_scenario, schedule)
        baseline, _ = _run_with_faults(outage_scenario, FaultSchedule.empty())
        in_window = slice(6, 18)
        servers_per_group = outage_scenario.model.fleet.counts.max()
        healthy_cap = (G - G // 2) * servers_per_group
        assert record.active_servers[in_window].max() <= healthy_cap
        # Outside the window behavior converges back to the healthy run.
        assert record.active_servers[0] == baseline.active_servers[0]

    def test_unserveable_load_is_dropped_not_lost(self, outage_scenario):
        """Fail all but one group: the survivor serves what it can, the
        rest shows up as dropped -- never silently vanishing."""
        G = outage_scenario.model.fleet.num_groups
        schedule = FaultSchedule(
            events=tuple(
                FaultEvent(t=2, kind="group_fail", group=g)
                for g in range(G - 1)
            )
        )
        record, controller = _run_with_faults(outage_scenario, schedule)
        np.testing.assert_allclose(
            record.served + record.dropped, record.arrival_actual, rtol=1e-9
        )
        assert record.dropped.sum() > 0
        assert record.served[3:].min() > 0  # the survivor keeps serving
        _assert_carbon_accounting(record, controller, outage_scenario)
