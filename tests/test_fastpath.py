"""Tests for the shared solver fast path (:mod:`repro.solvers.fastpath`).

Three exactness contracts are pinned here:

- cache-on and cache-off runs of every engine return **bit-identical**
  solutions (the memo cache and delta screen are exact by construction);
- the early-exit bisections return exactly what the historical fixed-count
  loops return (flip ``_EARLY_EXIT`` and compare bytes);
- warm-started inner solves match cold ones to <= 1e-9 relative objective
  error, in every regime of the ``[.]^+`` kink.

Plus the slot-length unit fix: switching *energy* (MWh) enters facility
*power* (MW) divided by ``slot_hours``, pinned at a non-unit slot length.
"""

import dataclasses

import numpy as np
import pytest

import repro.solvers.load_distribution as ld
from repro.cluster import (
    Fleet,
    FleetAction,
    ServerGroup,
    cubic_dvfs_profile,
    opteron_2380,
)
from repro.cluster.switching import SwitchingCostModel
from repro.core import DataCenterModel
from repro.solvers import (
    BruteForceSolver,
    CoordinateDescentSolver,
    EvaluationCache,
    GSDSolver,
    HomogeneousEnumerationSolver,
    InfeasibleError,
    distribute_load,
)
from tests.conftest import make_problem


def cold_objective(problem, levels):
    """The historical inline scoring path: cold solve, no cache."""
    try:
        dist = distribute_load(problem, np.asarray(levels, dtype=np.int64))
    except InfeasibleError:
        return np.inf
    action = FleetAction(
        levels=np.asarray(levels, dtype=np.int64),
        per_server_load=dist.per_server_load,
    )
    evaluation = problem.evaluate(action)
    if problem.violates_caps(evaluation):
        return np.inf
    return evaluation.objective


@pytest.fixture(scope="module")
def wide_model():
    """40 mixed-profile groups: one group flip is a small perturbation, the
    regime the warm-start bracket is sized for."""
    groups = [ServerGroup(opteron_2380(), 27) for _ in range(20)] + [
        ServerGroup(cubic_dvfs_profile(), 27) for _ in range(20)
    ]
    return DataCenterModel(fleet=Fleet(groups), beta=10.0)


def mixed_levels(model):
    """A level vector with *distinct* speeds across groups, so billed and
    free distributions differ (a uniform homogeneous configuration is
    regime-degenerate: the uniform split is optimal under any weight)."""
    top = (model.fleet.num_levels - 1).astype(np.int64)
    return np.maximum(top - (np.arange(top.size) % 3), 0).astype(np.int64)


def boundary_problem(model, levels, *, lam_frac=0.5, q=5.0):
    """A problem whose optimal distribution at ``levels`` sits in the
    *boundary* regime: onsite strictly between billed and free facility
    power.  ``lam_frac`` is relative to the on-set's capacity at ``levels``
    so high fractions stay feasible on down-clocked configurations."""
    fleet = model.fleet
    on = np.nonzero(levels >= 0)[0]
    cap = model.gamma * float(
        np.sum(fleet.counts[on] * fleet.speed_table[on, levels[on]])
    )
    p = dataclasses.replace(
        make_problem(model, lam_frac=0.5, onsite=0.0, q=q),
        arrival_rate=lam_frac * cap,
    )

    def fac(problem):
        dist = distribute_load(problem, levels)
        action = FleetAction(levels=levels, per_server_load=dist.per_server_load)
        return problem.evaluate(action).facility_power

    billed = fac(p)
    free = fac(dataclasses.replace(p, onsite=1e9))
    assert free > billed, "mixed levels must spread load when electricity is free"
    return dataclasses.replace(p, onsite=0.5 * (billed + free))


# ---------------------------------------------------------------------------
# Bit-identity: cache on vs cache off
# ---------------------------------------------------------------------------
class TestCacheBitIdentity:
    def _assert_identical(self, a, b):
        assert np.array_equal(a.action.levels, b.action.levels)
        assert a.action.per_server_load.tobytes() == b.action.per_server_load.tobytes()
        assert a.objective == b.objective  # exact, not approx

    @pytest.mark.parametrize("model_name", ["tiny_model", "hetero_model"])
    def test_gsd(self, request, model_name):
        model = request.getfixturevalue(model_name)
        p = make_problem(model, lam_frac=0.55, onsite=0.2, q=3.0)
        sols = [
            GSDSolver(
                iterations=150, rng=np.random.default_rng(11), use_cache=flag
            ).solve(p)
            for flag in (True, False)
        ]
        self._assert_identical(*sols)

    @pytest.mark.parametrize("model_name", ["tiny_model", "hetero_model"])
    def test_coordinate_descent(self, request, model_name):
        model = request.getfixturevalue(model_name)
        p = make_problem(model, lam_frac=0.4, onsite=0.1, q=2.0)
        sols = [
            CoordinateDescentSolver(
                restarts=3, rng=np.random.default_rng(5), use_cache=flag
            ).solve(p)
            for flag in (True, False)
        ]
        self._assert_identical(*sols)

    def test_brute_force(self, hetero_model):
        p = make_problem(hetero_model, lam_frac=0.45, q=1.0)
        sols = [BruteForceSolver(use_cache=flag).solve(p) for flag in (True, False)]
        self._assert_identical(*sols)
        # The `evaluated` info key keeps its historical meaning.
        assert (
            sols[0].info["configs_feasible"] > 0
            and sols[0].info["configs_total"] == sols[1].info["configs_total"]
        )

    def test_brute_force_with_caps(self, tiny_model):
        base = make_problem(tiny_model, lam_frac=0.5, q=2.0)
        unbounded = BruteForceSolver().solve(base)
        p = dataclasses.replace(
            base,
            peak_power_cap=1.05 * unbounded.evaluation.facility_power,
            max_delay_cost=2.0 * unbounded.evaluation.delay_cost,
        )
        sols = [BruteForceSolver(use_cache=flag).solve(p) for flag in (True, False)]
        self._assert_identical(*sols)

    def test_gsd_under_peak_power_cap(self, tiny_model):
        base = make_problem(tiny_model, lam_frac=0.5, q=2.0)
        unbounded = BruteForceSolver().solve(base)
        p = dataclasses.replace(
            base, peak_power_cap=1.05 * unbounded.evaluation.facility_power
        )
        sols = [
            GSDSolver(
                iterations=150, rng=np.random.default_rng(3), use_cache=flag
            ).solve(p)
            for flag in (True, False)
        ]
        self._assert_identical(*sols)

    def test_warm_start_requires_cache(self):
        with pytest.raises(ValueError):
            GSDSolver(use_cache=False, warm_start=True)
        with pytest.raises(ValueError):
            CoordinateDescentSolver(use_cache=False, warm_start=True)
        with pytest.raises(ValueError):
            BruteForceSolver(use_cache=False, warm_start=True)


# ---------------------------------------------------------------------------
# Evaluation cache correctness against the historical scoring path
# ---------------------------------------------------------------------------
class TestEvaluationCache:
    def test_random_walk_matches_cold_path(self, hetero_model, rng):
        """A GSD-like random walk of single-group flips: every query must
        equal the historical cold computation exactly -- including the
        screened-out and cap-violating candidates."""
        base = make_problem(hetero_model, lam_frac=0.6, onsite=0.1, q=2.0)
        unbounded = BruteForceSolver().solve(base)
        p = dataclasses.replace(
            base, peak_power_cap=1.2 * unbounded.evaluation.facility_power
        )
        fleet = p.fleet
        cache = EvaluationCache(p)
        levels = (fleet.num_levels - 1).astype(np.int64)
        cache.note_all()
        for _ in range(300):
            g = int(rng.integers(0, fleet.num_groups))
            levels[g] = int(rng.integers(-1, fleet.num_levels[g]))
            cache.note_changed(g)
            got = cache.objective_of(levels)
            expected = cold_objective(p, levels)
            assert got == expected or (np.isinf(got) and np.isinf(expected))
            if rng.random() < 0.3:  # occasional revert, as engines do
                old = levels[g]
                levels[g] = -1 if old != -1 else 0
                cache.note_changed(g)
        stats = cache.stats
        assert stats.evaluations == (
            stats.cold_solves
            + stats.warm_solves
            + stats.cache_hits
            + stats.screened_infeasible
            + stats.infeasible
        )
        assert stats.cache_hits > 0  # the tiny lattice guarantees revisits

    def test_screen_rejects_undercapacity_onsets(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.9)
        cache = EvaluationCache(p)
        levels = np.array([3, -1, -1], dtype=np.int64)  # cannot carry 90%
        assert cache.objective_of(levels) == np.inf
        assert cache.stats.screened_infeasible == 1
        assert cache.stats.inner_solves == 0
        # The all-off set is screened too.
        assert cache.objective_of(np.full(3, -1, dtype=np.int64)) == np.inf
        assert cache.stats.screened_infeasible == 2

    def test_solution_for_reuses_cached_solve(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.5)
        cache = EvaluationCache(p)
        levels = (p.fleet.num_levels - 1).astype(np.int64)
        obj = cache.objective_of(levels)
        solves_before = cache.stats.inner_solves
        action, evaluation = cache.solution_for(levels)
        assert cache.stats.inner_solves == solves_before
        assert evaluation.objective == obj
        dist = distribute_load(p, levels)
        assert action.per_server_load.tobytes() == dist.per_server_load.tobytes()

    def test_gsd_counters_add_up(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.55, q=2.0)
        sol = GSDSolver(
            iterations=400, rng=np.random.default_rng(2), warm_start=True
        ).solve(p)
        fp = sol.info["fastpath"]
        assert sol.info["evaluations"] <= fp["evaluations"]
        assert fp["inner_solves"] == fp["cold_solves"] + fp["warm_starts"]
        assert fp["cache_hits"] > 0  # 3-group lattice: proposals repeat
        assert fp["warm_starts"] > 0
        assert sol.info["inner_solves"] < sol.info["evaluations"]


# ---------------------------------------------------------------------------
# Early exit is exact
# ---------------------------------------------------------------------------
class TestEarlyExitExact:
    @pytest.mark.parametrize("model_name", ["tiny_model", "hetero_model"])
    @pytest.mark.parametrize("lam_frac", [0.1, 0.5, 0.9])
    @pytest.mark.parametrize("regime", ["billed", "free", "boundary"])
    def test_bit_identical_to_fixed_count(
        self, request, monkeypatch, model_name, lam_frac, regime
    ):
        model = request.getfixturevalue(model_name)
        if regime == "billed":
            p = make_problem(model, lam_frac=lam_frac, onsite=0.0, q=5.0)
            levels = (model.fleet.num_levels - 1).astype(np.int64)
        elif regime == "free":
            p = make_problem(model, lam_frac=lam_frac, onsite=1e9, q=5.0)
            levels = (model.fleet.num_levels - 1).astype(np.int64)
        else:
            levels = mixed_levels(model)
            p = boundary_problem(model, levels, lam_frac=lam_frac)

        fast = distribute_load(p, levels)
        monkeypatch.setattr(ld, "_EARLY_EXIT", False)
        slow = distribute_load(p, levels)

        assert fast.regime == slow.regime
        assert fast.per_server_load.tobytes() == slow.per_server_load.tobytes()
        assert fast.nu == slow.nu
        assert fast.electricity_weight == slow.electricity_weight
        assert fast.inner_iters <= slow.inner_iters

    def test_early_exit_saves_iterations(self, tiny_model, monkeypatch):
        p = make_problem(tiny_model, lam_frac=0.5, q=3.0)
        levels = np.full(3, 3, dtype=np.int64)
        fast = distribute_load(p, levels)
        monkeypatch.setattr(ld, "_EARLY_EXIT", False)
        slow = distribute_load(p, levels)
        assert fast.inner_iters < slow.inner_iters


# ---------------------------------------------------------------------------
# Warm starts: <= 1e-9 relative objective error vs cold
# ---------------------------------------------------------------------------
class TestWarmStart:
    @pytest.mark.parametrize("model_name", ["tiny_model", "hetero_model", "wide_model"])
    @pytest.mark.parametrize("regime", ["billed", "free", "boundary"])
    def test_neighbor_hint_objective_error(self, request, model_name, regime):
        model = request.getfixturevalue(model_name)
        if regime == "billed":
            p = make_problem(model, lam_frac=0.6, onsite=0.0, q=5.0)
            base = (model.fleet.num_levels - 1).astype(np.int64)
        elif regime == "free":
            p = make_problem(model, lam_frac=0.6, onsite=1e9, q=5.0)
            base = (model.fleet.num_levels - 1).astype(np.int64)
        else:
            base = mixed_levels(model)
            p = boundary_problem(model, base, lam_frac=0.6)
        hint = distribute_load(p, base)

        def objective(levels, dist):
            action = FleetAction(levels=levels, per_server_load=dist.per_server_load)
            return p.evaluate(action).objective

        for g in range(min(model.fleet.num_groups, 12)):
            for delta_level in (1, 2):
                neighbor = base.copy()
                neighbor[g] = max(0, int(base[g]) - delta_level)
                try:
                    cold = distribute_load(p, neighbor)
                except InfeasibleError:
                    with pytest.raises(InfeasibleError):
                        distribute_load(p, neighbor, hint=hint)
                    continue
                warm = distribute_load(p, neighbor, hint=hint)
                co = objective(neighbor, cold)
                wo = objective(neighbor, warm)
                assert abs(wo - co) <= 1e-9 * max(abs(co), 1.0)
                assert warm.regime == cold.regime

    def test_warm_start_used_on_chain_neighbors(self, wide_model):
        """The GSD-sized step (one group flipped on a wide fleet) must
        actually validate the warm bracket, not silently fall back cold."""
        p = make_problem(wide_model, lam_frac=0.6, onsite=0.0, q=5.0)
        top = (wide_model.fleet.num_levels - 1).astype(np.int64)
        hint = distribute_load(p, top)
        neighbor = top.copy()
        neighbor[0] = int(top[0]) - 1
        warm = distribute_load(p, neighbor, hint=hint)
        assert warm.warm_started
        cold = distribute_load(p, neighbor)
        assert warm.inner_iters < cold.inner_iters

    def test_small_fleet_falls_back_cold(self, hetero_model):
        """On a 2-group fleet one flip moves the dual far outside any warm
        bracket: the hint must be rejected and the cold result returned."""
        p = make_problem(hetero_model, lam_frac=0.6, onsite=0.0, q=5.0)
        top = (hetero_model.fleet.num_levels - 1).astype(np.int64)
        hint = distribute_load(p, top)
        neighbor = top.copy()
        neighbor[0] = int(top[0]) - 1
        warm = distribute_load(p, neighbor, hint=hint)
        cold = distribute_load(p, neighbor)
        assert not warm.warm_started
        assert warm.per_server_load.tobytes() == cold.per_server_load.tobytes()

    def test_gsd_warm_objective_close_to_cold(self, wide_model):
        p = make_problem(wide_model, lam_frac=0.55, onsite=0.0, q=3.0)
        cold = GSDSolver(iterations=200, rng=np.random.default_rng(9)).solve(p)
        warm = GSDSolver(
            iterations=200, rng=np.random.default_rng(9), warm_start=True
        ).solve(p)
        assert warm.objective == pytest.approx(cold.objective, rel=1e-6)
        assert warm.info["fastpath"]["warm_starts"] > 0


# ---------------------------------------------------------------------------
# Slot-length units: switching MWh -> MW conversion
# ---------------------------------------------------------------------------
class TestSlotHours:
    def _problem_with_switching(self, model, slot_hours):
        fleet = model.fleet
        switching = SwitchingCostModel(energy_per_toggle=0.002)
        prev = np.zeros(fleet.num_groups)  # everything was off: all toggles on
        p = make_problem(model, lam_frac=0.5, onsite=0.0, price=40.0, q=2.0)
        return dataclasses.replace(
            p, switching=switching, prev_on_counts=prev, slot_hours=slot_hours
        )

    def test_quarter_hour_slot_pins_unit_conversion(self, tiny_model):
        """At 0.25 h slots, switching energy must enter facility *power*
        divided by the slot length, and brown energy must be the shortfall
        times the slot length -- pinned against a by-hand computation."""
        h = 0.25
        p = self._problem_with_switching(tiny_model, h)
        levels = (p.fleet.num_levels - 1).astype(np.int64)
        dist = distribute_load(p, levels)
        action = FleetAction(levels=levels, per_server_load=dist.per_server_load)
        ev = p.evaluate(action)

        sw_energy = p.switching.energy(p.prev_on_counts, action.on_counts(p.fleet))
        assert sw_energy > 0.0
        facility_expected = p.pue * ev.it_power + sw_energy / h
        assert ev.facility_power == pytest.approx(facility_expected, rel=1e-12)
        brown_expected = max(facility_expected - p.onsite, 0.0) * h
        assert ev.brown_energy == pytest.approx(brown_expected, rel=1e-12)
        delay_expected = p.delay_weight * ev.delay_sum * h
        assert ev.delay_cost == pytest.approx(delay_expected, rel=1e-12)

        # Regression guard for the historical bug (energy added to power
        # un-converted): at h != 1 the two bookkeepings must differ.
        wrong_facility = p.pue * ev.it_power + sw_energy
        assert ev.facility_power != pytest.approx(wrong_facility, rel=1e-6)

    @pytest.mark.parametrize("h", [0.25, 2.0])
    def test_enumeration_solver_consistent_at_nonunit_slots(self, tiny_model, h):
        """The vectorized enumeration engine's internal objective must agree
        with ``SlotProblem.evaluate`` on its own chosen action -- that is,
        the solver and the evaluator apply the same unit conversion."""
        p = self._problem_with_switching(tiny_model, h)
        sol = HomogeneousEnumerationSolver().solve(p)
        again = p.evaluate(sol.action)
        assert sol.evaluation.objective == pytest.approx(again.objective, rel=1e-12)
        # ... and the choice is exactly the brute-force optimum.
        oracle = BruteForceSolver().solve(p)
        assert sol.evaluation.objective == pytest.approx(
            oracle.evaluation.objective, rel=1e-9
        )

    def test_slot_hours_validation(self, tiny_model):
        with pytest.raises(ValueError):
            dataclasses.replace(make_problem(tiny_model), slot_hours=0.0)
