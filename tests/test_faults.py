"""Property and determinism tests for the fault-injection subsystem.

Three contracts anchor ``repro.faults`` (docs/TESTING.md):

1. **Seed determinism** — the same seed always yields the same schedule,
   and a schedule round-trips through JSON without loss.
2. **Replay** — running the same ``(scenario, schedule)`` pair twice is
   bit-identical, including under lossy distributed messaging.
3. **Null transparency** — an empty schedule leaves the simulation
   byte-identical to an uninstrumented run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coca import COCA
from repro.faults import (
    DegradationPolicy,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultyMessageBus,
    MessageFaultProfile,
    proportional_action,
)
from repro.scenarios import small_scenario
from repro.sim import simulate
from repro.solvers import DistributedGSD, Message, ServerAgent
from repro.telemetry import Telemetry

RECORD_ARRAYS = ("cost", "brown_energy", "queue", "served", "dropped")


def _records_identical(a, b) -> list[str]:
    return [
        name
        for name in RECORD_ARRAYS
        if not np.array_equal(getattr(a, name), getattr(b, name))
    ]


@pytest.fixture(scope="module")
def chaos_scenario():
    """A short seeded scenario sized for per-test chaos runs."""
    return small_scenario(horizon=24, seed=11)


def _run(scenario, *, faults=None, degradation=None, solver=None, v=150.0,
         telemetry=None):
    controller = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=v,
        alpha=scenario.alpha,
        solver=solver,
    )
    return simulate(
        scenario.model,
        controller,
        scenario.environment,
        telemetry=telemetry,
        faults=faults,
        degradation=degradation,
    )


class TestScheduleDeterminism:
    @given(seed=st.integers(0, 2**31 - 1), horizon=st.integers(1, 120))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_schedule(self, seed, horizon):
        kw = dict(
            horizon=horizon,
            num_groups=4,
            failure_rate=0.1,
            mean_repair=3.0,
            signal_rate=0.1,
            loss=0.05,
        )
        a = FaultSchedule.generate(seed, **kw)
        b = FaultSchedule.generate(seed, **kw)
        assert a == b
        assert a.to_json() == b.to_json()

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_json_round_trip_identity(self, seed):
        sched = FaultSchedule.generate(
            seed,
            horizon=60,
            num_groups=5,
            failure_rate=0.08,
            signal_rate=0.1,
            loss=0.1,
            delay=0.03,
            duplicate=0.02,
        )
        assert FaultSchedule.from_json(sched.to_json()) == sched

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_generated_schedules_validate(self, seed):
        """High fault rates must still produce statically-valid schedules
        (no double failure, no repair of a healthy group)."""
        sched = FaultSchedule.generate(
            seed, horizon=150, num_groups=3, failure_rate=0.2, mean_repair=2.0
        )
        down: set[int] = set()
        for e in sched.events:
            if e.kind == "group_fail":
                assert e.group not in down
                down.add(e.group)
            elif e.kind == "group_repair":
                assert e.group in down
                down.discard(e.group)


class TestScheduleValidation:
    def test_double_failure_rejected(self):
        with pytest.raises(ValueError, match="already down"):
            FaultSchedule(
                events=(
                    FaultEvent(t=0, kind="group_fail", group=1),
                    FaultEvent(t=2, kind="group_fail", group=1),
                )
            )

    def test_repair_of_healthy_group_rejected(self):
        with pytest.raises(ValueError, match="never down"):
            FaultSchedule(events=(FaultEvent(t=3, kind="group_repair", group=0),))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(t=0, kind="meteor_strike", group=0)

    @pytest.mark.parametrize(
        "kw", [{"loss": 1.0}, {"loss": -0.1}, {"loss": 0.6, "delay": 0.5}]
    )
    def test_profile_ranges(self, kw):
        with pytest.raises(ValueError):
            MessageFaultProfile(**kw)


class TestFaultyBus:
    def _bus_pair(self, fleet, **kw):
        buses = []
        for _ in range(2):
            bus = FaultyMessageBus(rng=np.random.default_rng(99), **kw)
            agents = [
                ServerAgent(f"group-{g}", fleet, g)
                for g in range(fleet.num_groups)
            ]
            for a in agents:
                bus.register(a)
            buses.append((bus, agents))
        return buses

    def test_same_seed_same_fault_pattern(self, tiny_fleet):
        (b1, _), (b2, _) = self._bus_pair(tiny_fleet, loss=0.3, delay=0.2)
        for bus in (b1, b2):
            for i in range(200):
                bus.send(
                    Message("driver", f"group-{i % 3}", "set_level", {"level": 1})
                )
        assert b1.fault_stats() == b2.fault_stats()
        assert b1.dropped > 0 and b1.delayed > 0

    def test_delay_applies_side_effects(self, tiny_fleet):


        (bus, agents), _ = self._bus_pair(tiny_fleet, delay=0.999)
        reply = bus.send(Message("driver", "group-0", "set_level", {"level": 2}))
        assert reply is None  # the answer was eaten...
        assert agents[0].level == 2  # ...but the command landed

    def test_loss_skips_handler(self, tiny_fleet):


        (bus, agents), _ = self._bus_pair(tiny_fleet, loss=0.999)
        reply = bus.send(Message("driver", "group-0", "set_level", {"level": 2}))
        assert reply is None
        assert agents[0].level != 2
        assert bus.dropped == 1 and bus.delivered == 0

    def test_duplicate_delivers_twice(self, tiny_fleet):


        (bus, agents), _ = self._bus_pair(tiny_fleet, duplicate=0.999)
        reply = bus.send(Message("driver", "group-0", "set_level", {"level": 1}))
        assert reply is not None  # sender sees the (second) reply
        assert bus.duplicated == 1
        assert bus.delivered == 2

    def test_lost_message_still_flags_bad_recipient(self, tiny_fleet):


        (bus, _), _ = self._bus_pair(tiny_fleet, loss=0.999)
        with pytest.raises(KeyError):
            bus.send(Message("driver", "nope", "set_level", {"level": 0}))


class TestNullTransparency:
    def test_empty_schedule_bit_identical(self, chaos_scenario):
        plain = _run(chaos_scenario)
        nulled = _run(chaos_scenario, faults=FaultSchedule.empty())
        assert _records_identical(plain, nulled) == []

    def test_null_profile_installs_nothing(self, chaos_scenario):
        solver = DistributedGSD(iterations=5, rng=np.random.default_rng(0))
        controller = COCA(
            chaos_scenario.model,
            chaos_scenario.environment.portfolio,
            v_schedule=150.0,
            solver=solver,
        )
        injector = FaultInjector(FaultSchedule.empty())
        assert injector.install(controller) is False
        assert solver.bus_factory is None


class TestChaosReplay:
    @pytest.mark.parametrize("fault_seed", [3, 7])
    def test_centralized_replay_bit_identical(self, chaos_scenario, fault_seed):
        sched = FaultSchedule.generate(
            fault_seed,
            horizon=chaos_scenario.horizon,
            num_groups=chaos_scenario.model.fleet.num_groups,
            failure_rate=0.1,
            mean_repair=3.0,
            signal_rate=0.1,
        )
        replayed = FaultSchedule.from_json(sched.to_json())
        a = _run(chaos_scenario, faults=sched)
        b = _run(chaos_scenario, faults=replayed)
        assert _records_identical(a, b) == []

    def test_lossy_distributed_replay_bit_identical(self, chaos_scenario):
        """The acceptance scenario: mid-horizon failures + >=10% message
        loss completes, serves all non-dropped load, and replays exactly."""
        sched = FaultSchedule.generate(
            7,
            horizon=chaos_scenario.horizon,
            num_groups=chaos_scenario.model.fleet.num_groups,
            failure_rate=0.05,
            loss=0.10,
            delay=0.03,
            duplicate=0.02,
        )
        records = []
        for _ in range(2):
            solver = DistributedGSD(
                iterations=8, rng=np.random.default_rng(5)
            )
            records.append(
                _run(
                    chaos_scenario,
                    faults=sched,
                    solver=solver,
                    degradation=DegradationPolicy(retries=2),
                )
            )
        a, b = records
        assert _records_identical(a, b) == []
        # Conservation: whatever was not dropped was actually served.
        np.testing.assert_allclose(
            a.served + a.dropped, a.arrival_actual, rtol=1e-9
        )

    def test_telemetry_does_not_perturb(self, chaos_scenario):
        sched = FaultSchedule.generate(
            3,
            horizon=chaos_scenario.horizon,
            num_groups=chaos_scenario.model.fleet.num_groups,
            failure_rate=0.1,
        )
        silent = _run(chaos_scenario, faults=sched)
        traced = _run(
            chaos_scenario, faults=sched, telemetry=Telemetry.recording()
        )
        assert _records_identical(silent, traced) == []


class TestInjector:
    def test_last_healthy_group_protected(self):
        events = tuple(
            FaultEvent(t=0, kind="group_fail", group=g) for g in range(3)
        )
        injector = FaultInjector(FaultSchedule(events=events), num_groups=3)
        injector.begin_slot(0)
        assert len(injector.failed_groups) == 2
        assert injector.suppressed == 1

    def test_signal_staleness_holds_last_clean_value(self, chaos_scenario):
        sched = FaultSchedule(
            events=(
                FaultEvent(
                    t=2, kind="signal", field="price", mode="stale", duration=2
                ),
            )
        )
        injector = FaultInjector(sched)
        env = chaos_scenario.environment
        obs0 = env.observation(0)
        injector.begin_slot(0)
        assert injector.degrade_observation(obs0) is obs0  # no active fault
        injector.begin_slot(1)
        obs1 = injector.degrade_observation(env.observation(1))
        injector.begin_slot(2)
        degraded = injector.degrade_observation(env.observation(2))
        assert degraded.price == obs1.price  # frozen at last clean value
        injector.begin_slot(3)
        still = injector.degrade_observation(env.observation(3))
        assert still.price == obs1.price
        injector.begin_slot(4)  # window [2, 4) expired
        clean = injector.degrade_observation(env.observation(4))
        assert clean.price == env.observation(4).price

    def test_missing_onsite_reads_zero(self, chaos_scenario):
        sched = FaultSchedule(
            events=(
                FaultEvent(
                    t=0, kind="signal", field="onsite", mode="missing", duration=1
                ),
            )
        )
        injector = FaultInjector(sched)
        injector.begin_slot(0)
        obs = injector.degrade_observation(chaos_scenario.environment.observation(0))
        assert obs.onsite == 0.0


class TestDegradation:
    def test_proportional_action_serves_what_fits(self, tiny_model):
        cap = tiny_model.fleet.capacity(tiny_model.gamma)
        action = proportional_action(tiny_model, 0.4 * cap, failed=frozenset({0}))
        assert action.levels[0] == -1
        served = action.served_load(tiny_model.fleet)
        assert served == pytest.approx(0.4 * cap, rel=1e-9)

    def test_fallback_conservation_under_overload(self, chaos_scenario):
        """Failing most groups forces fallbacks; load must stay conserved
        and the run must complete."""
        G = chaos_scenario.model.fleet.num_groups
        events = tuple(
            FaultEvent(t=2, kind="group_fail", group=g) for g in range(G - 1)
        )
        record = _run(
            chaos_scenario,
            faults=FaultSchedule(events=events),
            degradation=DegradationPolicy(mode="proportional"),
        )
        np.testing.assert_allclose(
            record.served + record.dropped, record.arrival_actual, rtol=1e-9
        )
        assert record.dropped.sum() > 0  # one group cannot carry the fleet

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(mode="prayer")
        with pytest.raises(ValueError):
            DegradationPolicy(retries=-1)


class TestFaultTelemetry:
    def test_fault_events_and_summary_emitted(self, chaos_scenario):
        sched = FaultSchedule.generate(
            7,
            horizon=chaos_scenario.horizon,
            num_groups=chaos_scenario.model.fleet.num_groups,
            failure_rate=0.1,
            signal_rate=0.15,
        )
        tele = Telemetry.recording()
        _run(chaos_scenario, faults=sched, telemetry=tele)
        kinds = {e["kind"] for e in tele.events}
        assert "fault.inject" in kinds
        assert "fault.summary" in kinds
        summary = next(e for e in tele.events if e["kind"] == "fault.summary")
        injected = sum(
            1 for e in tele.events if e["kind"] == "fault.inject"
        )
        assert summary["injected"] == injected
        assert summary["degradation"]["mode"] == "last_action"

    def test_monitor_suite_passes_chaos_run(self, chaos_scenario):
        from repro.monitor import default_suite

        sched = FaultSchedule.generate(
            7,
            horizon=chaos_scenario.horizon,
            num_groups=chaos_scenario.model.fleet.num_groups,
            failure_rate=0.1,
        )
        tele = Telemetry.recording()
        _run(chaos_scenario, faults=sched, telemetry=tele)
        suite = default_suite()
        for e in tele.events:
            suite.observe(e)
        suite.finalize()
        fault_report = next(
            r for r in suite.reports() if r.monitor == "fault-activity"
        )
        assert fault_report.passed
        assert fault_report.checked > 0
