"""Property and determinism tests for the fault-injection subsystem.

Three contracts anchor ``repro.faults`` (docs/TESTING.md):

1. **Seed determinism** — the same seed always yields the same schedule,
   and a schedule round-trips through JSON without loss.
2. **Replay** — running the same ``(scenario, schedule)`` pair twice is
   bit-identical, including under lossy distributed messaging.
3. **Null transparency** — an empty schedule leaves the simulation
   byte-identical to an uninstrumented run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coca import COCA
from repro.faults import (
    DegradationPolicy,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultyMessageBus,
    MessageFaultProfile,
    proportional_action,
)
from repro.scenarios import small_scenario
from repro.sim import simulate
from repro.solvers import DistributedGSD, Message, ServerAgent
from repro.telemetry import Telemetry

RECORD_ARRAYS = ("cost", "brown_energy", "queue", "served", "dropped")


def _records_identical(a, b) -> list[str]:
    return [
        name
        for name in RECORD_ARRAYS
        if not np.array_equal(getattr(a, name), getattr(b, name))
    ]


@pytest.fixture(scope="module")
def chaos_scenario():
    """A short seeded scenario sized for per-test chaos runs."""
    return small_scenario(horizon=24, seed=11)


def _run(scenario, *, faults=None, degradation=None, solver=None, v=150.0,
         telemetry=None):
    controller = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=v,
        alpha=scenario.alpha,
        solver=solver,
    )
    return simulate(
        scenario.model,
        controller,
        scenario.environment,
        telemetry=telemetry,
        faults=faults,
        degradation=degradation,
    )


class TestScheduleDeterminism:
    @given(seed=st.integers(0, 2**31 - 1), horizon=st.integers(1, 120))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_schedule(self, seed, horizon):
        kw = dict(
            horizon=horizon,
            num_groups=4,
            failure_rate=0.1,
            mean_repair=3.0,
            signal_rate=0.1,
            loss=0.05,
        )
        a = FaultSchedule.generate(seed, **kw)
        b = FaultSchedule.generate(seed, **kw)
        assert a == b
        assert a.to_json() == b.to_json()

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_json_round_trip_identity(self, seed):
        sched = FaultSchedule.generate(
            seed,
            horizon=60,
            num_groups=5,
            failure_rate=0.08,
            signal_rate=0.1,
            loss=0.1,
            delay=0.03,
            duplicate=0.02,
        )
        assert FaultSchedule.from_json(sched.to_json()) == sched

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_generated_schedules_validate(self, seed):
        """High fault rates must still produce statically-valid schedules
        (no double failure, no repair of a healthy group)."""
        sched = FaultSchedule.generate(
            seed, horizon=150, num_groups=3, failure_rate=0.2, mean_repair=2.0
        )
        down: set[int] = set()
        for e in sched.events:
            if e.kind == "group_fail":
                assert e.group not in down
                down.add(e.group)
            elif e.kind == "group_repair":
                assert e.group in down
                down.discard(e.group)


class TestScheduleValidation:
    def test_double_failure_rejected(self):
        with pytest.raises(ValueError, match="already down"):
            FaultSchedule(
                events=(
                    FaultEvent(t=0, kind="group_fail", group=1),
                    FaultEvent(t=2, kind="group_fail", group=1),
                )
            )

    def test_repair_of_healthy_group_rejected(self):
        with pytest.raises(ValueError, match="never down"):
            FaultSchedule(events=(FaultEvent(t=3, kind="group_repair", group=0),))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(t=0, kind="meteor_strike", group=0)

    @pytest.mark.parametrize(
        "kw", [{"loss": 1.0}, {"loss": -0.1}, {"loss": 0.6, "delay": 0.5}]
    )
    def test_profile_ranges(self, kw):
        with pytest.raises(ValueError):
            MessageFaultProfile(**kw)


class TestFaultyBus:
    def _bus_pair(self, fleet, **kw):
        buses = []
        for _ in range(2):
            bus = FaultyMessageBus(rng=np.random.default_rng(99), **kw)
            agents = [
                ServerAgent(f"group-{g}", fleet, g)
                for g in range(fleet.num_groups)
            ]
            for a in agents:
                bus.register(a)
            buses.append((bus, agents))
        return buses

    def test_same_seed_same_fault_pattern(self, tiny_fleet):
        (b1, _), (b2, _) = self._bus_pair(tiny_fleet, loss=0.3, delay=0.2)
        for bus in (b1, b2):
            for i in range(200):
                bus.send(
                    Message("driver", f"group-{i % 3}", "set_level", {"level": 1})
                )
        assert b1.fault_stats() == b2.fault_stats()
        assert b1.dropped > 0 and b1.delayed > 0

    def test_delay_applies_side_effects(self, tiny_fleet):


        (bus, agents), _ = self._bus_pair(tiny_fleet, delay=0.999)
        reply = bus.send(Message("driver", "group-0", "set_level", {"level": 2}))
        assert reply is None  # the answer was eaten...
        assert agents[0].level == 2  # ...but the command landed

    def test_loss_skips_handler(self, tiny_fleet):


        (bus, agents), _ = self._bus_pair(tiny_fleet, loss=0.999)
        reply = bus.send(Message("driver", "group-0", "set_level", {"level": 2}))
        assert reply is None
        assert agents[0].level != 2
        assert bus.dropped == 1 and bus.delivered == 0

    def test_duplicate_delivers_twice(self, tiny_fleet):


        (bus, agents), _ = self._bus_pair(tiny_fleet, duplicate=0.999)
        reply = bus.send(Message("driver", "group-0", "set_level", {"level": 1}))
        assert reply is not None  # sender sees the (second) reply
        assert bus.duplicated == 1
        assert bus.delivered == 2

    def test_lost_message_still_flags_bad_recipient(self, tiny_fleet):


        (bus, _), _ = self._bus_pair(tiny_fleet, loss=0.999)
        with pytest.raises(KeyError):
            bus.send(Message("driver", "nope", "set_level", {"level": 0}))


class TestNullTransparency:
    def test_empty_schedule_bit_identical(self, chaos_scenario):
        plain = _run(chaos_scenario)
        nulled = _run(chaos_scenario, faults=FaultSchedule.empty())
        assert _records_identical(plain, nulled) == []

    def test_null_profile_installs_nothing(self, chaos_scenario):
        solver = DistributedGSD(iterations=5, rng=np.random.default_rng(0))
        controller = COCA(
            chaos_scenario.model,
            chaos_scenario.environment.portfolio,
            v_schedule=150.0,
            solver=solver,
        )
        injector = FaultInjector(FaultSchedule.empty())
        assert injector.install(controller) is False
        assert solver.bus_factory is None


class TestChaosReplay:
    @pytest.mark.parametrize("fault_seed", [3, 7])
    def test_centralized_replay_bit_identical(self, chaos_scenario, fault_seed):
        sched = FaultSchedule.generate(
            fault_seed,
            horizon=chaos_scenario.horizon,
            num_groups=chaos_scenario.model.fleet.num_groups,
            failure_rate=0.1,
            mean_repair=3.0,
            signal_rate=0.1,
        )
        replayed = FaultSchedule.from_json(sched.to_json())
        a = _run(chaos_scenario, faults=sched)
        b = _run(chaos_scenario, faults=replayed)
        assert _records_identical(a, b) == []

    def test_lossy_distributed_replay_bit_identical(self, chaos_scenario):
        """The acceptance scenario: mid-horizon failures + >=10% message
        loss completes, serves all non-dropped load, and replays exactly."""
        sched = FaultSchedule.generate(
            7,
            horizon=chaos_scenario.horizon,
            num_groups=chaos_scenario.model.fleet.num_groups,
            failure_rate=0.05,
            loss=0.10,
            delay=0.03,
            duplicate=0.02,
        )
        records = []
        for _ in range(2):
            solver = DistributedGSD(
                iterations=8, rng=np.random.default_rng(5)
            )
            records.append(
                _run(
                    chaos_scenario,
                    faults=sched,
                    solver=solver,
                    degradation=DegradationPolicy(retries=2),
                )
            )
        a, b = records
        assert _records_identical(a, b) == []
        # Conservation: whatever was not dropped was actually served.
        np.testing.assert_allclose(
            a.served + a.dropped, a.arrival_actual, rtol=1e-9
        )

    def test_telemetry_does_not_perturb(self, chaos_scenario):
        sched = FaultSchedule.generate(
            3,
            horizon=chaos_scenario.horizon,
            num_groups=chaos_scenario.model.fleet.num_groups,
            failure_rate=0.1,
        )
        silent = _run(chaos_scenario, faults=sched)
        traced = _run(
            chaos_scenario, faults=sched, telemetry=Telemetry.recording()
        )
        assert _records_identical(silent, traced) == []


class TestInjector:
    def test_last_healthy_group_protected(self):
        events = tuple(
            FaultEvent(t=0, kind="group_fail", group=g) for g in range(3)
        )
        injector = FaultInjector(FaultSchedule(events=events), num_groups=3)
        injector.begin_slot(0)
        assert len(injector.failed_groups) == 2
        assert injector.suppressed == 1

    def test_signal_staleness_holds_last_clean_value(self, chaos_scenario):
        sched = FaultSchedule(
            events=(
                FaultEvent(
                    t=2, kind="signal", field="price", mode="stale", duration=2
                ),
            )
        )
        injector = FaultInjector(sched)
        env = chaos_scenario.environment
        obs0 = env.observation(0)
        injector.begin_slot(0)
        assert injector.degrade_observation(obs0) is obs0  # no active fault
        injector.begin_slot(1)
        obs1 = injector.degrade_observation(env.observation(1))
        injector.begin_slot(2)
        degraded = injector.degrade_observation(env.observation(2))
        assert degraded.price == obs1.price  # frozen at last clean value
        injector.begin_slot(3)
        still = injector.degrade_observation(env.observation(3))
        assert still.price == obs1.price
        injector.begin_slot(4)  # window [2, 4) expired
        clean = injector.degrade_observation(env.observation(4))
        assert clean.price == env.observation(4).price

    def test_missing_onsite_reads_zero(self, chaos_scenario):
        sched = FaultSchedule(
            events=(
                FaultEvent(
                    t=0, kind="signal", field="onsite", mode="missing", duration=1
                ),
            )
        )
        injector = FaultInjector(sched)
        injector.begin_slot(0)
        obs = injector.degrade_observation(chaos_scenario.environment.observation(0))
        assert obs.onsite == 0.0


class TestDegradation:
    def test_proportional_action_serves_what_fits(self, tiny_model):
        cap = tiny_model.fleet.capacity(tiny_model.gamma)
        action = proportional_action(tiny_model, 0.4 * cap, failed=frozenset({0}))
        assert action.levels[0] == -1
        served = action.served_load(tiny_model.fleet)
        assert served == pytest.approx(0.4 * cap, rel=1e-9)

    def test_fallback_conservation_under_overload(self, chaos_scenario):
        """Failing most groups forces fallbacks; load must stay conserved
        and the run must complete."""
        G = chaos_scenario.model.fleet.num_groups
        events = tuple(
            FaultEvent(t=2, kind="group_fail", group=g) for g in range(G - 1)
        )
        record = _run(
            chaos_scenario,
            faults=FaultSchedule(events=events),
            degradation=DegradationPolicy(mode="proportional"),
        )
        np.testing.assert_allclose(
            record.served + record.dropped, record.arrival_actual, rtol=1e-9
        )
        assert record.dropped.sum() > 0  # one group cannot carry the fleet

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(mode="prayer")
        with pytest.raises(ValueError):
            DegradationPolicy(retries=-1)


class TestFaultTelemetry:
    def test_fault_events_and_summary_emitted(self, chaos_scenario):
        sched = FaultSchedule.generate(
            7,
            horizon=chaos_scenario.horizon,
            num_groups=chaos_scenario.model.fleet.num_groups,
            failure_rate=0.1,
            signal_rate=0.15,
        )
        tele = Telemetry.recording()
        _run(chaos_scenario, faults=sched, telemetry=tele)
        kinds = {e["kind"] for e in tele.events}
        assert "fault.inject" in kinds
        assert "fault.summary" in kinds
        summary = next(e for e in tele.events if e["kind"] == "fault.summary")
        injected = sum(
            1 for e in tele.events if e["kind"] == "fault.inject"
        )
        assert summary["injected"] == injected
        assert summary["degradation"]["mode"] == "last_action"

    def test_monitor_suite_passes_chaos_run(self, chaos_scenario):
        from repro.monitor import default_suite

        sched = FaultSchedule.generate(
            7,
            horizon=chaos_scenario.horizon,
            num_groups=chaos_scenario.model.fleet.num_groups,
            failure_rate=0.1,
        )
        tele = Telemetry.recording()
        _run(chaos_scenario, faults=sched, telemetry=tele)
        suite = default_suite()
        for e in tele.events:
            suite.observe(e)
        suite.finalize()
        fault_report = next(
            r for r in suite.reports() if r.monitor == "fault-activity"
        )
        assert fault_report.passed
        assert fault_report.checked > 0


class TestForecastFaults:
    """Forecast-fault kind: schedule validation, generation, degradation."""

    def test_event_validation(self):
        from repro.faults import FORECAST_MODES

        assert set(FORECAST_MODES) == {"bias", "drift", "dropout", "adversarial"}
        with pytest.raises(ValueError, match="forecast fault mode"):
            FaultEvent(t=0, kind="forecast", mode="wobble")
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(t=0, kind="forecast", mode="bias", duration=0)
        with pytest.raises(ValueError, match="magnitude"):
            FaultEvent(t=0, kind="forecast", mode="bias", magnitude=0.0)
        with pytest.raises(ValueError, match="magnitude"):
            FaultEvent(t=0, kind="forecast", mode="drift", magnitude=-1.5)
        # bias/drift default their magnitude; dropout carries none.
        assert FaultEvent(t=0, kind="forecast", mode="bias").magnitude == 0.25
        assert FaultEvent(t=0, kind="forecast", mode="dropout").magnitude is None

    def test_json_round_trip_with_magnitude(self):
        sched = FaultSchedule(
            events=(
                FaultEvent(t=2, kind="forecast", mode="bias", duration=5,
                           magnitude=0.6),
                FaultEvent(t=9, kind="forecast", mode="dropout", duration=2),
                FaultEvent(t=12, kind="forecast", mode="adversarial", duration=3),
            )
        )
        again = FaultSchedule.from_json(sched.to_json())
        assert again == sched
        assert again.events[0].magnitude == 0.6

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_generate_covers_forecast_faults(self, seed):
        sched = FaultSchedule.generate(
            seed, horizon=200, num_groups=3, forecast_rate=0.2
        )
        forecast = [e for e in sched.events if e.kind == "forecast"]
        assert forecast, "a 20% rate over 200 slots must draw some events"
        from repro.faults import FORECAST_MODES

        assert all(e.mode in FORECAST_MODES for e in forecast)
        assert FaultSchedule.from_json(sched.to_json()) == sched

    def test_forecast_rate_zero_preserves_draw_order(self):
        """forecast_rate=0 must not consume RNG draws: pre-advice seeds
        keep generating byte-identical schedules."""
        kw = dict(horizon=100, num_groups=4, failure_rate=0.1, signal_rate=0.1)
        assert FaultSchedule.generate(3, **kw) == FaultSchedule.generate(
            3, forecast_rate=0.0, **kw
        )

    def _fields(self, n=4):
        return {
            "arrival": np.linspace(1.0, 4.0, n),
            "onsite": np.full(n, 0.5),
            "price": np.linspace(40.0, 43.0, n),
            "offsite": np.zeros(n),
        }

    def _injector(self, events, *, telemetry=None):
        injector = FaultInjector(
            FaultSchedule(events=tuple(events)), num_groups=3,
        )
        if telemetry is not None:
            injector.bind_telemetry(telemetry)
        return injector

    def test_no_fault_returns_same_object(self):
        injector = self._injector([])
        injector.begin_slot(0)
        fields = self._fields()
        assert injector.degrade_forecast(0, fields) is fields

    def test_bias_scales_arrivals_only(self):
        tele = Telemetry.recording()
        injector = self._injector(
            [FaultEvent(t=0, kind="forecast", mode="bias", duration=2,
                        magnitude=0.5)],
            telemetry=tele,
        )
        injector.begin_slot(0)
        fields = self._fields()
        out = injector.degrade_forecast(0, fields)
        assert np.allclose(out["arrival"], fields["arrival"] * 1.5)
        assert np.array_equal(out["price"], fields["price"])
        assert tele.metrics.counter("fault.forecast_bias").value == 1
        assert any(e["kind"] == "fault.forecast" for e in tele.events)
        # Past the window the channel is clean again (same-object contract).
        injector.begin_slot(2)
        assert injector.degrade_forecast(2, fields) is fields

    def test_drift_grows_with_lead_time(self):
        injector = self._injector(
            [FaultEvent(t=0, kind="forecast", mode="drift", duration=1,
                        magnitude=0.8)]
        )
        injector.begin_slot(0)
        out = injector.degrade_forecast(0, self._fields())
        factors = out["arrival"] / self._fields()["arrival"]
        assert np.all(np.diff(factors) > 0), "drift error must grow with lead"
        assert factors[-1] == pytest.approx(1.8)

    def test_dropout_loses_the_window(self):
        tele = Telemetry.recording()
        injector = self._injector(
            [FaultEvent(t=0, kind="forecast", mode="dropout", duration=1)],
            telemetry=tele,
        )
        injector.begin_slot(0)
        assert injector.degrade_forecast(0, self._fields()) is None
        assert tele.metrics.counter("fault.forecast_dropout").value == 1

    def test_adversarial_reflects_series(self):
        injector = self._injector(
            [FaultEvent(t=0, kind="forecast", mode="adversarial", duration=1)]
        )
        injector.begin_slot(0)
        fields = self._fields()
        out = injector.degrade_forecast(0, fields)
        for name in ("arrival", "price", "onsite"):
            want = fields[name].max() + fields[name].min() - fields[name]
            assert np.allclose(out[name], want)
        # High where reality is low: the ordering is inverted.
        assert out["arrival"][0] == fields["arrival"].max()

    def test_runtime_injection_and_state_round_trip(self):
        injector = self._injector([])
        injector.begin_slot(0)
        injector.inject_forecast("bias", t=0, duration=3, magnitude=0.4)
        clone = self._injector([])
        clone.load_state_dict(injector.state_dict())
        clone.begin_slot(1)
        fields = self._fields()
        out = clone.degrade_forecast(1, fields)
        assert np.allclose(out["arrival"], fields["arrival"] * 1.4)
        with pytest.raises(ValueError, match="mode"):
            injector.inject_forecast("wobble", t=0)
