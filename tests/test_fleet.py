"""Tests for fleets and fleet actions (Eqs. (2), (4), constraints (7)-(9))."""

import numpy as np
import pytest

from repro.cluster import (
    Fleet,
    FleetAction,
    ServerGroup,
    cubic_dvfs_profile,
    default_fleet,
    opteron_2380,
)


class TestFleetStructure:
    def test_default_fleet_matches_paper(self):
        fleet = default_fleet()
        assert fleet.num_groups == 200
        assert fleet.num_servers == 216_000
        # ~50 MW peak (216,000 x 231 W = 49.9 MW).
        assert fleet.max_power == pytest.approx(49.9, rel=0.01)
        assert fleet.max_capacity == pytest.approx(2.16e6)

    def test_homogeneity_detection(self, tiny_fleet, hetero_fleet):
        assert tiny_fleet.is_homogeneous
        assert not hetero_fleet.is_homogeneous

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            Fleet([])

    def test_nonpositive_group_count_rejected(self):
        with pytest.raises(ValueError):
            ServerGroup(opteron_2380(), 0)

    def test_padded_tables(self, hetero_fleet):
        """Groups with fewer levels are nan-padded and masked."""
        fleet = Fleet(
            [
                ServerGroup(cubic_dvfs_profile(levels=2), 5),
                ServerGroup(cubic_dvfs_profile(levels=4, name="big"), 5),
            ]
        )
        assert fleet.max_levels == 4
        assert np.isnan(fleet.speed_table[0, 3])
        assert not fleet.level_valid[0, 2]
        assert fleet.level_valid[1, 3]

    def test_capacity_with_gamma(self, tiny_fleet):
        assert tiny_fleet.capacity(0.5) == pytest.approx(0.5 * tiny_fleet.max_capacity)

    def test_tables_readonly(self, tiny_fleet):
        with pytest.raises(ValueError):
            tiny_fleet.counts[0] = 5


class TestGroupSpeeds:
    def test_group_speeds_off_is_zero(self, tiny_fleet):
        levels = np.array([-1, 0, 3])
        speeds = tiny_fleet.group_speeds(levels)
        assert speeds[0] == 0.0
        assert speeds[1] == pytest.approx(3.2)
        assert speeds[2] == pytest.approx(10.0)


class TestActionEvaluation:
    def test_power_matches_manual(self, tiny_fleet):
        """Eq. (2): sum over groups of n * (static + coeff * load)."""
        levels = np.array([3, 3, -1])
        load = np.array([5.0, 2.0, 0.0])
        p = tiny_fleet.action_power(levels, load)
        prof = opteron_2380()
        expected = 10 * prof.power(5.0, 3) + 10 * prof.power(2.0, 3)
        assert p == pytest.approx(expected)

    def test_all_off_power_zero(self, tiny_fleet):
        action = FleetAction.all_off(tiny_fleet)
        assert action.power(tiny_fleet) == 0.0
        assert action.delay_sum(tiny_fleet) == 0.0
        assert action.active_servers(tiny_fleet) == 0.0

    def test_delay_sum_matches_mg1ps(self, tiny_fleet):
        """Eq. (4): n * lambda / (x - lambda) per group."""
        levels = np.array([3, -1, -1])
        load = np.array([4.0, 0.0, 0.0])
        d = tiny_fleet.action_delay_sum(levels, load)
        assert d == pytest.approx(10 * 4.0 / (10.0 - 4.0))

    def test_delay_infinite_at_saturation(self, tiny_fleet):
        levels = np.array([3, -1, -1])
        load = np.array([10.0, 0.0, 0.0])
        assert tiny_fleet.action_delay_sum(levels, load) == np.inf

    def test_off_group_with_load_is_infinite_delay(self, tiny_fleet):
        levels = np.array([-1, -1, -1])
        load = np.array([1.0, 0.0, 0.0])
        assert tiny_fleet.action_delay_sum(levels, load) == np.inf

    def test_served_load(self, tiny_fleet):
        action = FleetAction(np.array([3, 2, -1]), np.array([1.0, 2.0, 0.0]))
        assert action.served_load(tiny_fleet) == pytest.approx(30.0)

    def test_on_counts(self, tiny_fleet):
        action = FleetAction(np.array([3, -1, 0]), np.array([1.0, 0.0, 0.5]))
        np.testing.assert_allclose(action.on_counts(tiny_fleet), [10, 0, 10])


class TestActionValidation:
    def test_valid_action_passes(self, tiny_fleet):
        levels = np.array([3, 3, 3])
        load = np.array([2.0, 2.0, 2.0])
        tiny_fleet.validate_action(levels, load, 60.0, gamma=0.95)

    def test_overload_rejected(self, tiny_fleet):
        levels = np.array([3, 3, 3])
        load = np.array([9.9, 9.9, 9.9])
        with pytest.raises(ValueError, match="gamma"):
            tiny_fleet.validate_action(levels, load, 3 * 99.0, gamma=0.95)

    def test_balance_mismatch_rejected(self, tiny_fleet):
        levels = np.array([3, 3, 3])
        load = np.array([2.0, 2.0, 2.0])
        with pytest.raises(ValueError, match="serves"):
            tiny_fleet.validate_action(levels, load, 100.0, gamma=0.95)

    def test_off_group_with_load_rejected(self, tiny_fleet):
        levels = np.array([-1, 3, 3])
        load = np.array([1.0, 2.0, 2.0])
        with pytest.raises(ValueError, match="off"):
            tiny_fleet.validate_action(levels, load, 50.0, gamma=0.95)

    def test_bad_level_rejected(self, tiny_fleet):
        levels = np.array([4, 3, 3])  # only 4 levels: 0..3
        load = np.array([1.0, 1.0, 1.0])
        with pytest.raises(ValueError, match="level"):
            tiny_fleet.validate_action(levels, load, 30.0, gamma=0.95)


class TestFleetActionContainer:
    def test_arrays_frozen(self, tiny_fleet):
        action = FleetAction.all_off(tiny_fleet)
        with pytest.raises(ValueError):
            action.levels[0] = 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FleetAction(np.array([1, 2]), np.array([1.0]))
