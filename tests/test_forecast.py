"""Tests for the workload forecasters."""

import numpy as np
import pytest

from repro.sim import simulate
from repro.traces import Trace, fiu_workload
from repro.traces.forecast import (
    EWMA,
    Persistence,
    SeasonalEWMA,
    SeasonalNaive,
    forecast_workload,
)


def mare(pair):
    return pair.mean_absolute_relative_error


class TestCausality:
    """A forecaster may only use strictly past values."""

    @pytest.mark.parametrize(
        "forecaster",
        [Persistence(), SeasonalNaive(season=24), EWMA(0.3), SeasonalEWMA(season=24)],
    )
    def test_future_changes_do_not_affect_past_predictions(self, forecaster):
        rng = np.random.default_rng(1)
        values = rng.uniform(1.0, 2.0, 200)
        p1 = forecaster.predict_series(values)
        tampered = values.copy()
        tampered[150:] *= 10.0
        p2 = forecaster.predict_series(tampered)
        np.testing.assert_array_equal(p1[:151], p2[:151])


class TestPersistence:
    def test_shifts_by_one(self):
        out = Persistence().predict_series(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(out, [1.0, 1.0, 2.0])


class TestSeasonalNaive:
    def test_uses_one_season_ago(self):
        values = np.arange(10.0)
        out = SeasonalNaive(season=3).predict_series(values)
        np.testing.assert_allclose(out[3:], values[:-3])

    def test_warmup_falls_back_to_persistence(self):
        out = SeasonalNaive(season=5).predict_series(np.array([7.0, 8.0, 9.0]))
        np.testing.assert_allclose(out, [7.0, 7.0, 8.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalNaive(season=0)


class TestEWMA:
    def test_constant_series_exact(self):
        out = EWMA(0.5).predict_series(np.full(10, 4.0))
        np.testing.assert_allclose(out, 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EWMA(0.0)
        with pytest.raises(ValueError):
            EWMA(1.5)


class TestSeasonalEWMA:
    def test_learns_diurnal_profile(self):
        """On a pure periodic signal, predictions should converge to it."""
        base = np.tile(np.array([1.0, 2.0, 4.0, 2.0]), 100)
        out = SeasonalEWMA(season=4, alpha=0.3, gamma_s=0.3).predict_series(base)
        tail_err = np.abs(out[-40:] - base[-40:]) / base[-40:]
        assert tail_err.mean() < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalEWMA(alpha=0.0)
        with pytest.raises(ValueError):
            SeasonalEWMA(season=0)


class TestOnRealisticWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        return fiu_workload(24 * 60, peak=1000.0, seed=6)

    def test_seasonal_beats_persistence_on_diurnal_data(self, workload):
        p_pers = forecast_workload(workload, Persistence())
        p_sewma = forecast_workload(workload, SeasonalEWMA())
        assert mare(p_sewma) < mare(p_pers) * 1.2  # at least comparable

    def test_errors_are_modest(self, workload):
        pair = forecast_workload(workload, SeasonalEWMA())
        assert mare(pair) < 0.30

    def test_predictions_nonnegative(self, workload):
        for f in [Persistence(), SeasonalNaive(), EWMA(), SeasonalEWMA()]:
            pair = forecast_workload(workload, f)
            assert pair.predicted.values.min() >= 0.0


class TestEndToEndWithCOCA:
    def test_coca_with_forecast_errors_still_neutral(self, fortnight_scenario):
        """COCA driven by a real forecaster (not perfect knowledge) should
        still satisfy neutrality at a modest V -- the robustness message of
        section 5.2.4 extended to realistic prediction."""
        from repro.core import COCA

        from repro.traces import PredictionModel, Trace

        sc = fortnight_scenario
        pair = forecast_workload(sc.environment.actual_workload, SeasonalEWMA())
        # Operators provision a safety margin on top of the forecast (the
        # paper's phi); 10% here.
        padded = PredictionModel(
            predicted=Trace(1.10 * pair.predicted.values), actual=pair.actual
        )
        env = sc.environment.with_workload(padded)
        controller = COCA(sc.model, env.portfolio, v_schedule=0.005, alpha=sc.alpha)
        record = simulate(sc.model, controller, env)
        # Under-predictions are absorbed by the realize-action headroom;
        # residual drops in extreme bursts must stay small.
        assert record.dropped.sum() < 0.01 * record.arrival_actual.sum()
        assert record.ledger(env.portfolio, sc.alpha).is_neutral()
