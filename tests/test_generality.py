"""Generality tests: the paper claims its analysis is not tied to the
specific delay-cost form (section 2.3) or the linear tariff (section 2.1),
and supports adaptive V selection (section 4.3) and the energy-capping
variant (section 2.2).  These tests exercise each claim end to end."""

import numpy as np
import pytest

from repro.cluster import (
    Fleet,
    ServerGroup,
    SquaredLoadDelay,
    TieredTariff,
    opteron_2380,
)
from repro.core import COCA, AdaptiveV, DataCenterModel
from repro.energy import RenewablePortfolio
from repro.sim import Environment, simulate
from repro.solvers import (
    BruteForceSolver,
    CoordinateDescentSolver,
    GSDSolver,
    HomogeneousEnumerationSolver,
    distribute_load,
)
from repro.traces import Trace, fiu_workload, price_trace
from tests.conftest import make_problem


@pytest.fixture(scope="module")
def squared_model():
    fleet = Fleet([ServerGroup(opteron_2380(), 10) for _ in range(3)])
    return DataCenterModel(fleet=fleet, beta=10.0, delay_model=SquaredLoadDelay())


@pytest.fixture(scope="module")
def tiered_model():
    fleet = Fleet([ServerGroup(opteron_2380(), 10) for _ in range(3)])
    tariff = TieredTariff(thresholds=(0.005,), multipliers=(1.0, 3.0))
    return DataCenterModel(fleet=fleet, beta=10.0, tariff=tariff)


class TestAlternativeDelayModel:
    """Section 2.3: 'our analysis is not restricted to the specific delay
    cost given by (4)'."""

    def test_waterfilling_balances_load(self, squared_model):
        p = make_problem(squared_model, lam_frac=0.5)
        dist = distribute_load(p, np.full(3, 3))
        served = float(np.sum(squared_model.fleet.counts * dist.per_server_load))
        assert served == pytest.approx(p.arrival_rate, rel=1e-6)

    @pytest.mark.parametrize("seed", range(3))
    def test_engines_agree(self, squared_model, seed):
        rng = np.random.default_rng(seed)
        p = make_problem(
            squared_model,
            lam_frac=float(rng.uniform(0.1, 0.8)),
            price=float(rng.uniform(10, 80)),
            q=float(rng.choice([0.0, 20.0])),
        )
        bf = BruteForceSolver().solve(p)
        en = HomogeneousEnumerationSolver().solve(p)
        cd = CoordinateDescentSolver().solve(p)
        assert en.objective == pytest.approx(bf.objective, rel=1e-9)
        assert cd.objective <= bf.objective * (1 + 1e-9)

    def test_coca_run_with_squared_delay(self, squared_model):
        horizon = 24 * 5
        workload = fiu_workload(horizon, peak=0.4 * squared_model.fleet.max_capacity, seed=3)
        price = price_trace(horizon, seed=4)
        portfolio = RenewablePortfolio(
            onsite=Trace(np.zeros(horizon)),
            offsite=Trace(np.full(horizon, 0.01)),
            recs=1.0,
        )
        env = Environment(workload=workload, portfolio=portfolio, price=price)
        record = simulate(
            squared_model, COCA(squared_model, portfolio, v_schedule=1.0), env
        )
        assert np.all(np.isfinite(record.cost))
        assert record.dropped.sum() == 0.0


class TestTieredTariff:
    """Section 2.1: nonlinear convex electricity cost functions."""

    def test_enumeration_prices_tiers_exactly(self, tiered_model):
        p = make_problem(tiered_model, lam_frac=0.6)
        sol = HomogeneousEnumerationSolver().solve(p)
        expected = tiered_model.tariff.cost(sol.evaluation.brown_energy, p.price)
        assert sol.evaluation.electricity_cost == pytest.approx(expected)

    @pytest.mark.parametrize("seed", range(3))
    def test_engines_agree(self, tiered_model, seed):
        rng = np.random.default_rng(seed + 10)
        p = make_problem(
            tiered_model,
            lam_frac=float(rng.uniform(0.1, 0.8)),
            price=float(rng.uniform(10, 80)),
        )
        bf = BruteForceSolver().solve(p)
        en = HomogeneousEnumerationSolver().solve(p)
        assert en.objective == pytest.approx(bf.objective, rel=1e-6)

    def test_tiered_penalizes_heavy_draw(self, tiered_model, tiny_model):
        """At identical inputs, the convex tariff yields (weakly) lower
        optimal brown energy than the linear one."""
        p_lin = make_problem(tiny_model, lam_frac=0.7, price=40.0)
        p_tier = make_problem(tiered_model, lam_frac=0.7, price=40.0)
        lin = HomogeneousEnumerationSolver().solve(p_lin)
        tier = HomogeneousEnumerationSolver().solve(p_tier)
        assert tier.evaluation.brown_energy <= lin.evaluation.brown_energy + 1e-12


class TestAdaptiveVWithCOCA:
    def test_adaptive_v_reacts_to_deficit(self, fortnight_scenario):
        sc = fortnight_scenario
        schedule = AdaptiveV(v0=0.02, up=2.0, down=0.25)
        controller = COCA(
            sc.model,
            sc.environment.portfolio,
            v_schedule=schedule,
            frame_length=48,
            alpha=sc.alpha,
        )
        record = simulate(sc.model, controller, sc.environment)
        v = np.asarray(controller.v_history)
        # The rule actually moved V around.
        assert len(np.unique(v)) > 1
        # And kept the long-run usage near the budget despite starting from
        # an arbitrary V.
        assert record.total_brown <= 1.1 * sc.budget

    def test_adaptive_v_stays_within_clamps(self, week_scenario):
        sc = week_scenario
        schedule = AdaptiveV(v0=0.02, up=10.0, down=0.1, v_min=0.01, v_max=0.04)
        controller = COCA(
            sc.model,
            sc.environment.portfolio,
            v_schedule=schedule,
            frame_length=24,
            alpha=sc.alpha,
        )
        simulate(sc.model, controller, sc.environment)
        v = np.asarray(controller.v_history)
        assert v.min() >= 0.01 - 1e-12
        assert v.max() <= 0.04 + 1e-12


class TestEnergyCappingVariant:
    """Section 2.2's remark: drop renewables, let Z be the energy cap."""

    def test_coca_honors_pure_energy_cap(self, tiny_model):
        horizon = 24 * 7
        workload = fiu_workload(horizon, peak=0.4 * tiny_model.fleet.max_capacity, seed=8)
        price = price_trace(horizon, seed=9)

        # Uncapped usage first.
        free = RenewablePortfolio.energy_capping(horizon, cap=0.0)
        env_free = Environment(workload=workload, portfolio=free, price=price)
        from repro.baselines import CarbonUnaware, calibrate_budget

        uncapped = calibrate_budget(tiny_model, env_free)

        cap = 0.9 * uncapped
        portfolio = RenewablePortfolio.energy_capping(horizon, cap=cap)
        env = Environment(workload=workload, portfolio=portfolio, price=price)
        controller = COCA(tiny_model, portfolio, v_schedule=1e-4)
        record = simulate(tiny_model, controller, env)
        assert record.total_brown <= cap * (1 + 1e-6)
        assert record.dropped.sum() == 0.0
