"""Tests for the geo-distributed extension."""

import numpy as np
import pytest

from repro.cluster import Fleet, ServerGroup, opteron_2380
from repro.core import DataCenterModel
from repro.geo import (
    GeoCOCA,
    GeoEnvironment,
    ProportionalGeo,
    Site,
    dispatch_slot,
    proportional_shares,
    simulate_geo,
)
from repro.solvers import InfeasibleError
from repro.traces import Trace, fiu_workload, price_trace, solar_trace


def make_site(name, horizon, *, groups=4, servers=40, price_mean=35.0,
              price_seed=1, solar_scale=0.0, net_delay=0.0):
    fleet = Fleet([ServerGroup(opteron_2380(), servers) for _ in range(groups)])
    model = DataCenterModel(fleet=fleet, beta=10.0)
    onsite = solar_trace(horizon, seed=price_seed + 50)
    onsite = onsite.scale(solar_scale) if solar_scale > 0 else onsite.scale(0.0)
    price = price_trace(horizon, mean_price=price_mean, seed=price_seed)
    return Site(name=name, model=model, onsite=onsite, price=price,
                network_delay=net_delay)


@pytest.fixture(scope="module")
def geo_env():
    horizon = 24 * 5
    sites = (
        make_site("cheap-far", horizon, price_mean=20.0, price_seed=1, net_delay=0.08),
        make_site("dear-near", horizon, price_mean=60.0, price_seed=2, net_delay=0.0),
        make_site("sunny", horizon, price_mean=40.0, price_seed=3, solar_scale=0.02,
                  net_delay=0.03),
    )
    total_cap = sum(s.capacity() for s in sites)
    workload = fiu_workload(horizon, peak=0.5 * total_cap, seed=7)
    offsite = solar_trace(horizon, seed=99).scale_to_total(20.0)
    return GeoEnvironment(
        workload=workload, sites=sites, offsite=offsite, recs=30.0
    )


class TestSite:
    def test_validation(self):
        site = make_site("a", 48)
        assert site.horizon == 48
        with pytest.raises(ValueError):
            Site(
                name="bad",
                model=site.model,
                onsite=Trace(np.zeros(10)),
                price=Trace(np.ones(20)),
            )
        with pytest.raises(ValueError):
            Site(name="bad", model=site.model, onsite=site.onsite,
                 price=site.price, network_delay=-1.0)

    def test_slot_problem_carries_network_delay(self):
        site = make_site("a", 48, net_delay=0.07)
        p = site.slot_problem(3, 100.0, q=2.0, V=5.0)
        assert p.network_delay == 0.07
        assert p.q == 2.0 and p.V == 5.0


class TestDispatch:
    def test_shares_conserve_load(self, geo_env):
        total = geo_env.workload[10]
        result = dispatch_slot(geo_env.sites, 10, total)
        assert result.shares.sum() == pytest.approx(total, rel=1e-9)
        assert np.all(result.shares >= -1e-9)

    def test_respects_capacity(self, geo_env):
        caps = np.array([s.capacity() for s in geo_env.sites])
        total = 0.95 * caps.sum()
        result = dispatch_slot(geo_env.sites, 10, total)
        assert np.all(result.shares <= caps * (1 + 1e-9))

    def test_beats_proportional(self, geo_env):
        """The optimizer must never do worse than its own starting point."""
        t = 14
        total = geo_env.workload[t]
        optimized = dispatch_slot(geo_env.sites, t, total, rounds=30)
        fixed = dispatch_slot(
            geo_env.sites,
            t,
            total,
            rounds=0,
            initial_shares=proportional_shares(geo_env.sites, total),
        )
        assert optimized.total_objective <= fixed.total_objective + 1e-9

    def test_near_grid_optimum_two_sites(self):
        """Against a dense grid search on a 2-site instance."""
        horizon = 24
        sites = (
            make_site("a", horizon, price_mean=20.0, price_seed=11),
            make_site("b", horizon, price_mean=70.0, price_seed=12),
        )
        total = 0.5 * sum(s.capacity() for s in sites)
        result = dispatch_slot(sites, 5, total, rounds=40)

        best = np.inf
        caps = [s.capacity() for s in sites]
        for frac in np.linspace(0, 1, 201):
            xa = frac * total
            if xa > caps[0] or total - xa > caps[1]:
                continue
            from repro.solvers import HomogeneousEnumerationSolver

            sa = HomogeneousEnumerationSolver().solve(sites[0].slot_problem(5, xa))
            sb = HomogeneousEnumerationSolver().solve(
                sites[1].slot_problem(5, total - xa)
            )
            best = min(best, sa.objective + sb.objective)
        assert result.total_objective <= best * 1.01

    def test_prefers_cheap_site(self):
        """With identical latency, the cheap-power site should carry more."""
        horizon = 24
        sites = (
            make_site("cheap", horizon, price_mean=15.0, price_seed=21),
            make_site("dear", horizon, price_mean=90.0, price_seed=22),
        )
        total = 0.4 * sum(s.capacity() for s in sites)
        result = dispatch_slot(sites, 12, total, rounds=40)
        assert result.shares[0] > result.shares[1]

    def test_latency_pulls_load_back(self):
        """A large network-delay penalty on the cheap site offsets its
        price advantage."""
        horizon = 24
        near = make_site("near", horizon, price_mean=60.0, price_seed=31)
        cheap_far = make_site(
            "far", horizon, price_mean=20.0, price_seed=32, net_delay=5.0
        )
        total = 0.4 * (near.capacity() + cheap_far.capacity())
        result = dispatch_slot((near, cheap_far), 12, total, rounds=40)
        assert result.shares[0] > result.shares[1]

    def test_overload_rejected(self, geo_env):
        with pytest.raises(InfeasibleError):
            dispatch_slot(geo_env.sites, 0, 10.0 * geo_env.total_capacity)

    def test_zero_load(self, geo_env):
        result = dispatch_slot(geo_env.sites, 0, 0.0)
        assert result.total_brown >= 0.0
        assert result.shares.sum() == 0.0


class TestGeoEnvironment:
    def test_validation(self, geo_env):
        with pytest.raises(ValueError, match="horizons"):
            GeoEnvironment(
                workload=Trace(np.ones(10)),
                sites=geo_env.sites,
                offsite=geo_env.offsite,
                recs=0.0,
            )
        with pytest.raises(ValueError):
            GeoEnvironment(
                workload=geo_env.workload,
                sites=(),
                offsite=geo_env.offsite,
                recs=0.0,
            )

    def test_budget(self, geo_env):
        assert geo_env.carbon_budget == pytest.approx(
            geo_env.offsite.total + geo_env.recs
        )


class TestGeoCOCA:
    def test_full_run_conserves_and_records(self, geo_env):
        controller = GeoCOCA(geo_env, v_schedule=1.0, dispatch_rounds=10)
        record = simulate_geo(controller, geo_env)
        assert record.horizon == geo_env.horizon
        np.testing.assert_allclose(
            record.shares.sum(axis=1), geo_env.workload.values, rtol=1e-9
        )
        assert record.site_share_of_load().sum() == pytest.approx(1.0)

    def test_queue_enforces_global_neutrality(self, geo_env):
        tight = GeoCOCA(geo_env, v_schedule=1e-4, dispatch_rounds=10)
        tight_record = simulate_geo(tight, geo_env)
        loose = GeoCOCA(geo_env, v_schedule=1e6, dispatch_rounds=10)
        loose_record = simulate_geo(loose, geo_env)
        assert tight_record.total_brown <= loose_record.total_brown + 1e-9
        assert tight_record.average_cost >= loose_record.average_cost - 1e-9

    def test_beats_proportional_baseline(self, geo_env):
        coca = GeoCOCA(geo_env, v_schedule=1e6, dispatch_rounds=16)
        coca_record = simulate_geo(coca, geo_env)
        naive = ProportionalGeo(geo_env)
        naive_record = simulate_geo(naive, geo_env)
        assert coca_record.average_cost <= naive_record.average_cost * 1.001

    def test_warm_start_used(self, geo_env):
        controller = GeoCOCA(geo_env, v_schedule=1.0, dispatch_rounds=6)
        controller.decide(0)
        warm = controller._warm_start(1)
        assert warm is not None
        assert warm.sum() == pytest.approx(geo_env.workload[1], rel=1e-9)
