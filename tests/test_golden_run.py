"""Golden-run regression corpus: a seeded week pinned to committed JSON.

The golden file under ``tests/goldens/`` holds the exact per-slot arrays a
seeded COCA week produces.  Any code change that shifts a single float —
a solver reorder, an RNG draw added to the hot path, a changed default —
fails here with a pointed diff, which is exactly the bit-identity contract
the fault-injection subsystem leans on (an *empty* fault schedule must
also reproduce these numbers, covered at the bottom).

Refresh after an intentional behavior change with::

    PYTHONPATH=src python -m pytest tests/test_golden_run.py --update-goldens

and commit the rewritten JSON alongside the change.  JSON stores float64
via ``repr``, which round-trips exactly, so comparisons are ``==``, not
approx.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.coca import COCA
from repro.sim import simulate

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_PATH = GOLDEN_DIR / "golden_run.json"

#: Pinned run parameters — change these only together with the golden file.
GOLDEN_V = 150.0
GOLDEN_ARRAYS = (
    "cost",
    "brown_energy",
    "queue",
    "served",
    "dropped",
    "facility_power",
    "v_applied",
)


def _golden_record(week_scenario):
    controller = COCA(
        week_scenario.model,
        week_scenario.environment.portfolio,
        v_schedule=GOLDEN_V,
        alpha=week_scenario.alpha,
    )
    return simulate(
        week_scenario.model, controller, week_scenario.environment
    )


def _as_payload(record) -> dict:
    return {
        "v": GOLDEN_V,
        "horizon": int(record.horizon),
        "arrays": {
            name: [float(x) for x in getattr(record, name)]
            for name in GOLDEN_ARRAYS
        },
    }


def _diff(name: str, got: np.ndarray, want: list[float]) -> str:
    got_list = [float(x) for x in got]
    if len(got_list) != len(want):
        return f"{name}: length {len(got_list)} != golden {len(want)}"
    bad = [i for i, (g, w) in enumerate(zip(got_list, want)) if g != w]
    i = bad[0]
    return (
        f"{name}: {len(bad)}/{len(want)} slots differ, first at t={i}: "
        f"got {got_list[i]!r}, golden {want[i]!r} "
        f"(delta {got_list[i] - want[i]:.3e})"
    )


class TestGoldenRun:
    def test_week_matches_golden(self, week_scenario, update_goldens):
        record = _golden_record(week_scenario)
        payload = _as_payload(record)
        if update_goldens:
            GOLDEN_DIR.mkdir(exist_ok=True)
            with open(GOLDEN_PATH, "w") as fh:
                json.dump(payload, fh, indent=1)
                fh.write("\n")
            pytest.skip(f"golden refreshed at {GOLDEN_PATH}")
        if not GOLDEN_PATH.exists():
            pytest.fail(
                f"missing golden file {GOLDEN_PATH}; generate it with "
                "--update-goldens and commit it"
            )
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        assert payload["horizon"] == golden["horizon"], "horizon changed"
        assert golden["v"] == GOLDEN_V, "pinned V changed without a refresh"
        mismatches = [
            _diff(name, getattr(record, name), golden["arrays"][name])
            for name in GOLDEN_ARRAYS
            if [float(x) for x in getattr(record, name)]
            != golden["arrays"][name]
        ]
        assert not mismatches, (
            "golden run diverged (bit-identity broken). If the change is "
            "intentional, refresh with --update-goldens.\n  "
            + "\n  ".join(mismatches)
        )

    def test_empty_fault_schedule_matches_golden(
        self, week_scenario, update_goldens
    ):
        """The no-fault chaos path must be byte-identical to the plain run —
        the fault subsystem's core contract, checked against the same pins."""
        if update_goldens or not GOLDEN_PATH.exists():
            pytest.skip("golden file being refreshed or absent")
        from repro.faults import FaultSchedule

        controller = COCA(
            week_scenario.model,
            week_scenario.environment.portfolio,
            v_schedule=GOLDEN_V,
            alpha=week_scenario.alpha,
        )
        record = simulate(
            week_scenario.model,
            controller,
            week_scenario.environment,
            faults=FaultSchedule.empty(),
        )
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        for name in GOLDEN_ARRAYS:
            assert [float(x) for x in getattr(record, name)] == golden[
                "arrays"
            ][name], _diff(name, getattr(record, name), golden["arrays"][name])


# --------------------------------------------------------------- advice
GOLDEN_ADVICE_PATH = GOLDEN_DIR / "golden_advice.json"


def _advised_record(week_scenario, *, guard=None):
    from repro.advice import AdvisedController, ForecastAdvisor, TraceForecastProvider

    inner = COCA(
        week_scenario.model,
        week_scenario.environment.portfolio,
        v_schedule=GOLDEN_V,
        alpha=week_scenario.alpha,
    )
    advisor = ForecastAdvisor(
        week_scenario.model,
        week_scenario.environment.portfolio,
        frame_length=24,
        horizon=week_scenario.horizon,
        provider=TraceForecastProvider(week_scenario.environment),
        alpha=week_scenario.alpha,
    )
    controller = AdvisedController(inner, advisor=advisor, guard=guard)
    return simulate(
        week_scenario.model, controller, week_scenario.environment
    )


class TestGoldenAdvice:
    """The advised week extends the corpus: trusted advice is pinned
    bit-exactly, and a never-trusted guard reproduces the *plain* golden
    (the advice layer's consistency-floor contract)."""

    def test_advised_week_matches_golden(self, week_scenario, update_goldens):
        record = _advised_record(week_scenario)
        payload = _as_payload(record)
        if update_goldens:
            GOLDEN_DIR.mkdir(exist_ok=True)
            with open(GOLDEN_ADVICE_PATH, "w") as fh:
                json.dump(payload, fh, indent=1)
                fh.write("\n")
            pytest.skip(f"golden refreshed at {GOLDEN_ADVICE_PATH}")
        if not GOLDEN_ADVICE_PATH.exists():
            pytest.fail(
                f"missing golden file {GOLDEN_ADVICE_PATH}; generate it "
                "with --update-goldens and commit it"
            )
        with open(GOLDEN_ADVICE_PATH) as fh:
            golden = json.load(fh)
        assert payload["horizon"] == golden["horizon"], "horizon changed"
        mismatches = [
            _diff(name, getattr(record, name), golden["arrays"][name])
            for name in GOLDEN_ARRAYS
            if [float(x) for x in getattr(record, name)]
            != golden["arrays"][name]
        ]
        assert not mismatches, (
            "advised golden run diverged (advice gating or solve changed). "
            "If intentional, refresh with --update-goldens.\n  "
            + "\n  ".join(mismatches)
        )

    def test_never_trusted_advice_matches_plain_golden(
        self, week_scenario, update_goldens
    ):
        if update_goldens or not GOLDEN_PATH.exists():
            pytest.skip("golden file being refreshed or absent")
        from repro.advice import TrustGuard

        record = _advised_record(
            week_scenario,
            guard=TrustGuard(initial_trust=False, trust_after=10**9),
        )
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        for name in GOLDEN_ARRAYS:
            assert [float(x) for x in getattr(record, name)] == golden[
                "arrays"
            ][name], _diff(name, getattr(record, name), golden["arrays"][name])
