"""Statistical validation of Theorem 1's stationary distribution.

Appendix A proves the GSD Markov chain's stationary distribution is

    Omega(x)  =  exp(delta / g~(x)) / sum_x' exp(delta / g~(x')).

On a one-group fleet the chain lives on the K feasible speed levels, small
enough to compare empirical visit frequencies against Omega directly, and
to check the two limiting regimes: delta -> 0 approaches uniform
exploration, large delta concentrates on the minimizer.
"""

import numpy as np
import pytest

from repro.cluster import Fleet, ServerGroup, opteron_2380
from repro.core import DataCenterModel
from repro.solvers import GSDSolver, solve_fixed_levels


@pytest.fixture(scope="module")
def one_group_problem():
    fleet = Fleet([ServerGroup(opteron_2380(), 5)])
    model = DataCenterModel(fleet=fleet, beta=10.0)
    # Light load: every positive speed level is feasible; off is not.
    lam = 0.15 * fleet.capacity(model.gamma)
    return model.slot_problem(arrival_rate=lam, onsite=0.0, price=40.0, q=5.0)


def state_objectives(problem):
    """g~ for each feasible level of the single group."""
    out = {}
    for level in range(4):
        _, ev = solve_fixed_levels(problem, np.array([level]))
        out[level] = ev.objective
    return out


def run_chain(problem, delta, iterations, seed=0):
    solver = GSDSolver(
        iterations=iterations,
        delta=delta,
        rng=np.random.default_rng(seed),
        record_history=True,
        initial_levels=np.array([0]),
    )
    sol = solver.solve(problem)
    return sol.info["trace"].chain_objective


class TestStationaryDistribution:
    def test_empirical_matches_omega(self, one_group_problem):
        objectives = state_objectives(one_group_problem)
        # Temperature giving meaningful but not degenerate discrimination.
        g_vals = np.array(sorted(objectives.values()))
        delta = 2.0 / (1.0 / g_vals.min() - 1.0 / g_vals.max())

        chain = run_chain(one_group_problem, delta, iterations=40_000)
        burn = chain[8_000:]

        omega = {
            lvl: np.exp(delta / g) for lvl, g in objectives.items()
        }
        total = sum(omega.values())
        for lvl, g in objectives.items():
            expected = omega[lvl] / total
            empirical = float(np.mean(np.isclose(burn, g, rtol=1e-9)))
            assert empirical == pytest.approx(expected, abs=0.05), (
                f"level {lvl}: empirical {empirical:.3f} vs Omega {expected:.3f}"
            )

    def test_small_delta_explores_everything(self, one_group_problem):
        objectives = state_objectives(one_group_problem)
        chain = run_chain(one_group_problem, delta=1e-9, iterations=20_000, seed=1)
        burn = chain[4_000:]
        for g in objectives.values():
            frequency = float(np.mean(np.isclose(burn, g, rtol=1e-9)))
            # Near-zero temperature -> near-uniform over the 4 states.
            assert frequency == pytest.approx(0.25, abs=0.06)

    def test_large_delta_concentrates_on_minimizer(self, one_group_problem):
        objectives = state_objectives(one_group_problem)
        g_min = min(objectives.values())
        g_vals = np.array(sorted(objectives.values()))
        delta = 200.0 / (1.0 / g_vals.min() - 1.0 / g_vals.max())
        chain = run_chain(one_group_problem, delta, iterations=20_000, seed=2)
        burn = chain[4_000:]
        at_min = float(np.mean(np.isclose(burn, g_min, rtol=1e-9)))
        assert at_min > 0.95
