"""Integration tests: the paper's headline claims end-to-end on the small
scenario (two weeks, a few hundred servers -- same structure, laptop speed)."""

import numpy as np
import pytest

from repro.analysis import (
    budget_sweep,
    compare_with_perfecthp,
    find_neutral_v,
    run_coca,
    sweep_constant_v,
)
from repro.baselines import (
    CarbonUnaware,
    OfflineOptimal,
    PerfectHP,
    lookahead_optima,
)
from repro.core import COCA, quarterly
from repro.core.bounds import cost_bound, deficit_bound, lyapunov_constants
from repro.sim import simulate


class TestHeadlineClaims:
    """Each test maps to a claim in the paper's abstract / section 5."""

    def test_close_to_minimum_cost_while_neutral(self, fortnight_scenario):
        """'COCA achieves a close-to-minimum cost while still satisfying
        carbon neutrality' -- within ~10% of the unaware minimum at the
        default 92% budget."""
        sc = fortnight_scenario
        v = find_neutral_v(sc, iters=10)
        record, _ = run_coca(sc, v)
        assert record.ledger(sc.environment.portfolio, sc.alpha).is_neutral()
        unaware = simulate(sc.model, CarbonUnaware(sc.model), sc.environment)
        assert record.average_cost <= 1.10 * unaware.average_cost

    def test_beats_perfecthp_on_both_axes(self, fortnight_scenario):
        """'COCA reduces cost ... while more accurately satisfying the
        desired carbon neutrality' -- at a neutral V, COCA must be cheaper
        or greener than PerfectHP, and not worse on both."""
        sc = fortnight_scenario
        v = find_neutral_v(sc, iters=10)
        cmp = compare_with_perfecthp(sc, v)
        pf = sc.environment.portfolio
        coca, hp = cmp["coca"], cmp["perfecthp"]
        # COCA at its neutral V must be at least as cheap while neutral;
        # PerfectHP either costs more (its caps bind clumsily) or deviates
        # from the target budget more in magnitude.
        assert coca.ledger(pf, sc.alpha).is_neutral()
        assert coca.average_cost <= hp.average_cost * 1.001

    def test_v_tradeoff_shape(self, fortnight_scenario):
        """Fig. 2: cost monotone down in V, deficit monotone up, with the
        carbon-unaware asymptote at large V."""
        sc = fortnight_scenario
        rows = sweep_constant_v(sc, [1e-3, 1e-2, 1e-1, 1e2])
        costs = [r["avg_cost"] for r in rows]
        deficits = [r["avg_deficit"] for r in rows]
        assert costs == sorted(costs, reverse=True)
        assert deficits == sorted(deficits)
        unaware = simulate(sc.model, CarbonUnaware(sc.model), sc.environment)
        assert rows[-1]["avg_cost"] == pytest.approx(unaware.average_cost, rel=0.01)

    def test_close_to_opt(self, fortnight_scenario):
        """Fig. 5(a): 'COCA works remarkably well even compared to OPT'."""
        sc = fortnight_scenario
        v = find_neutral_v(sc, iters=10)
        coca_rec, _ = run_coca(sc, v)
        opt = OfflineOptimal(sc.model, budget=sc.budget, alpha=sc.alpha)
        opt_rec = simulate(sc.model, opt, sc.environment)
        assert coca_rec.average_cost <= 1.15 * opt_rec.average_cost

    def test_budget_sweep_shape(self, fortnight_scenario):
        """Tighter budgets cost more; all COCA points stay neutral; the
        unaware baseline violates the tight budgets."""
        rows = budget_sweep(fortnight_scenario, [0.85, 0.95], include_opt=True, v_iters=8)
        assert rows[0]["coca_cost"] >= rows[1]["coca_cost"] - 1e-9
        assert all(r["coca_neutral"] for r in rows)
        assert not any(r["unaware_neutral"] for r in rows)
        # OPT <= COCA (up to dual-gap noise) at each budget.
        for r in rows:
            assert r["opt_cost"] <= r["coca_cost"] * 1.02


class TestTheorem2:
    def test_cost_bound_holds(self, fortnight_scenario):
        """COCA's measured average cost respects Theorem 2(b) against the
        T-step lookahead optimum."""
        sc = fortnight_scenario
        T = sc.horizon  # single frame
        frames = lookahead_optima(sc.model, sc.environment, T=T)
        g_star = np.array([f.average_cost for f in frames])
        for v in [0.01, 1.0]:
            record, _ = run_coca(sc, v)
            bound = cost_bound(
                lyapunov_constants(sc.model, sc.environment.portfolio),
                g_star,
                np.array([v]),
                T=T,
            )
            assert record.average_cost <= bound + 1e-6

    def test_deficit_bound_holds(self, fortnight_scenario):
        """Measured average brown energy respects Theorem 2(a)."""
        sc = fortnight_scenario
        T = sc.horizon
        frames = lookahead_optima(sc.model, sc.environment, T=T)
        g_star = np.array([f.average_cost for f in frames])
        consts = lyapunov_constants(sc.model, sc.environment.portfolio)
        for v in [0.01, 1.0]:
            record, _ = run_coca(sc, v)
            bound = deficit_bound(
                consts, sc.environment.portfolio, g_star, np.array([v]), T=T
            )
            assert record.brown_energy.mean() <= bound + 1e-9

    def test_multi_frame_bounds(self, fortnight_scenario):
        """Same with two one-week frames and differing V_r."""
        sc = fortnight_scenario
        T = sc.horizon // 2
        frames = lookahead_optima(sc.model, sc.environment, T=T)
        g_star = np.array([f.average_cost for f in frames])
        consts = lyapunov_constants(sc.model, sc.environment.portfolio)
        vs = np.array([0.01, 1.0])
        record, _ = run_coca(
            sc,
            __import__("repro.core", fromlist=["FrameV"]).FrameV(tuple(vs)),
        )
        # run with frame resets
        from repro.core import FrameV

        controller = COCA(
            sc.model,
            sc.environment.portfolio,
            v_schedule=FrameV(tuple(vs)),
            frame_length=T,
            alpha=sc.alpha,
        )
        record = simulate(sc.model, controller, sc.environment)
        assert record.average_cost <= cost_bound(consts, g_star, vs, T=T) + 1e-6
        assert record.brown_energy.mean() <= deficit_bound(
            consts, sc.environment.portfolio, g_star, vs, T=T
        )


class TestVaryingV:
    def test_quarterly_schedule_controls_tradeoff(self, fortnight_scenario):
        """Fig. 2(c,d): a small-then-large V schedule spends less early and
        relaxes later."""
        sc = fortnight_scenario
        T = sc.horizon // 4
        controller = COCA(
            sc.model,
            sc.environment.portfolio,
            v_schedule=quarterly([1e-3, 1e-3, 10.0, 10.0]),
            frame_length=T,
            alpha=sc.alpha,
        )
        record = simulate(sc.model, controller, sc.environment)
        first_half = record.cost[: 2 * T].mean()
        second_half = record.cost[2 * T :].mean()
        # Larger V later -> cheaper operation later (workload differences
        # aside, the schedule's effect dominates at these extremes).
        brown_first = record.brown_energy[: 2 * T].mean()
        brown_second = record.brown_energy[2 * T :].mean()
        assert brown_second > brown_first * 0.9
        assert len(np.unique(record.v_applied)) == 2


class TestRobustness:
    def test_overestimation_keeps_service(self, fortnight_scenario):
        """phi = 1.2 must never drop load (it only overprovisions)."""
        from repro.traces import overestimate

        sc = fortnight_scenario
        env = sc.environment.with_workload(
            overestimate(sc.environment.actual_workload, 1.2)
        )
        controller = COCA(sc.model, env.portfolio, v_schedule=0.01, alpha=sc.alpha)
        record = simulate(sc.model, controller, env)
        assert record.dropped.sum() == 0.0

    def test_switching_costs_bounded_impact(self, fortnight_scenario):
        """Fig. 5(d) direction: 10% switching cost changes total cost by a
        bounded amount (paper: <5%; allow slack at small scale)."""
        sc = fortnight_scenario
        v = find_neutral_v(sc, iters=8)
        base, _ = run_coca(sc, v)
        sw, _ = run_coca(sc.with_switching(0.10), v)
        assert sw.average_cost <= base.average_cost * 1.10
