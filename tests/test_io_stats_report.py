"""Tests for trace I/O, descriptive statistics, and the report generator."""

import numpy as np
import pytest

from repro.analysis import (
    autocorrelation,
    exceedance_hours,
    load_duration_curve,
    peak_to_mean,
    scenario_report,
    summarize_trace,
)
from repro.traces import (
    Trace,
    fiu_workload,
    load_traces,
    save_traces,
    trace_from_csv,
    trace_to_csv,
)


class TestTraceIO:
    def test_npz_roundtrip(self, tmp_path):
        a = fiu_workload(100, peak=5.0, seed=1)
        b = Trace(np.arange(1.0, 101.0), name="counter", unit="u")
        path = tmp_path / "bundle.npz"
        save_traces(path, workload=a, counter=b)
        loaded = load_traces(path)
        assert set(loaded) == {"workload", "counter"}
        np.testing.assert_array_equal(loaded["workload"].values, a.values)
        assert loaded["counter"].name == "counter"
        assert loaded["counter"].unit == "u"

    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_traces(tmp_path / "x.npz")

    def test_csv_roundtrip(self, tmp_path):
        trace = Trace(np.array([1.5, 2.25, 0.0]), name="t", unit="MW")
        path = tmp_path / "trace.csv"
        trace_to_csv(trace, path)
        back = trace_from_csv(path)
        np.testing.assert_array_equal(back.values, trace.values)
        assert back.name == "t"
        assert back.unit == "MW"

    def test_csv_without_header_comment(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("slot,value\n0,1.0\n1,2.0\n")
        trace = trace_from_csv(path)
        np.testing.assert_array_equal(trace.values, [1.0, 2.0])
        assert trace.name == "plain"

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("slot,value\n")
        with pytest.raises(ValueError):
            trace_from_csv(path)


class TestStats:
    def test_load_duration_curve_monotone(self):
        trace = fiu_workload(24 * 30, peak=1.0, seed=2)
        curve = load_duration_curve(trace, points=50)
        assert curve[0] == pytest.approx(trace.peak)
        assert np.all(np.diff(curve) <= 1e-12)

    def test_load_duration_validation(self):
        with pytest.raises(ValueError):
            load_duration_curve(Trace(np.ones(5)), points=1)

    def test_autocorrelation_lag0_is_one(self):
        rng = np.random.default_rng(3)
        acf = autocorrelation(rng.normal(size=500), max_lag=10)
        assert acf[0] == pytest.approx(1.0)
        assert np.all(np.abs(acf[1:]) < 0.2)

    def test_autocorrelation_periodic_signal(self):
        x = np.tile(np.sin(np.linspace(0, 2 * np.pi, 24, endpoint=False)), 30)
        acf = autocorrelation(x, max_lag=24)
        assert acf[24] == pytest.approx(1.0, abs=0.05)

    def test_autocorrelation_constant_series(self):
        acf = autocorrelation(np.full(50, 3.0), max_lag=5)
        assert acf[0] == 1.0
        assert np.all(acf[1:] == 0.0)

    def test_peak_to_mean(self):
        assert peak_to_mean(Trace(np.array([1.0, 3.0]))) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            peak_to_mean(Trace(np.zeros(3)))

    def test_exceedance_hours(self):
        trace = Trace(np.array([1.0, 2.0, 3.0, 4.0]))
        assert exceedance_hours(trace, 2.5) == 2

    def test_summary_fields(self):
        trace = fiu_workload(24 * 30, peak=100.0, seed=4)
        s = summarize_trace(trace)
        assert s.peak == pytest.approx(100.0)
        assert 0 < s.lag1_autocorr <= 1.0
        assert s.peak_to_mean > 1.0
        row = s.as_row()
        assert row["trace"] == trace.name


class TestScenarioReport:
    def test_report_contains_sections(self, week_scenario):
        text = scenario_report(week_scenario, v=0.02, include_opt=False, v_iters=4)
        for heading in [
            "# COCA scenario report",
            "## Scenario",
            "## Input traces",
            "## Controllers",
            "## Carbon-deficit queue",
        ]:
            assert heading in text
        assert "carbon-unaware" in text
        assert "COCA" in text

    def test_report_with_opt(self, week_scenario):
        text = scenario_report(week_scenario, v=0.02, include_opt=True, v_iters=4)
        assert "OPT (offline)" in text
