"""Tests for the convex load-distribution subproblem (GSD line 3).

The KKT/water-filling solution is validated against scipy's generic
constrained optimizer on random instances, and its structural properties
(balance, caps, regime logic, optimality conditions) are checked directly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import minimize

from repro.cluster import FleetAction
from repro.solvers import InfeasibleError, distribute_load, solve_fixed_levels
from repro.solvers import load_distribution as ld
from tests.conftest import make_problem


def scipy_reference(problem, levels):
    """Brute-convex reference: minimize the P3 objective for fixed levels
    with SLSQP over per-server loads."""
    fleet = problem.fleet
    on = np.nonzero(np.asarray(levels) >= 0)[0]
    x = fleet.speed_table[on, np.asarray(levels)[on]]
    n = fleet.counts[on]
    caps = problem.gamma * x

    def objective(loads):
        full = np.zeros(fleet.num_groups)
        full[on] = loads
        action = FleetAction(np.asarray(levels, dtype=np.int64), full)
        return problem.objective(action)

    x0 = np.full(on.size, problem.arrival_rate / max(float(np.sum(n)), 1.0))
    x0 = np.minimum(x0, 0.99 * caps)
    res = minimize(
        objective,
        x0,
        method="SLSQP",
        bounds=[(0.0, c) for c in caps],
        constraints=[
            {
                "type": "eq",
                "fun": lambda loads: np.sum(n * loads) - problem.arrival_rate,
            }
        ],
        options={"maxiter": 500, "ftol": 1e-12},
    )
    return res


class TestBalanceAndCaps:
    @pytest.mark.parametrize("lam_frac", [0.0, 0.1, 0.5, 0.9, 0.999])
    def test_load_conservation(self, tiny_model, lam_frac):
        p = make_problem(tiny_model, lam_frac=lam_frac)
        levels = np.full(3, 3, dtype=np.int64)
        dist = distribute_load(p, levels)
        served = float(np.sum(tiny_model.fleet.counts * dist.per_server_load))
        assert served == pytest.approx(p.arrival_rate, rel=1e-9, abs=1e-9)

    def test_caps_respected(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.999)
        levels = np.full(3, 3, dtype=np.int64)
        dist = distribute_load(p, levels)
        assert np.all(dist.per_server_load <= p.gamma * 10.0 + 1e-9)

    def test_off_groups_carry_nothing(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.3)
        levels = np.array([3, -1, 3])
        dist = distribute_load(p, levels)
        assert dist.per_server_load[1] == 0.0

    def test_infeasible_raises(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.9)
        levels = np.array([3, -1, -1])  # one group cannot carry 90%
        with pytest.raises(InfeasibleError):
            distribute_load(p, levels)

    def test_all_off_with_load_raises(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.1)
        with pytest.raises(InfeasibleError):
            distribute_load(p, np.full(3, -1))

    def test_zero_load_trivial(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.0)
        dist = distribute_load(p, np.full(3, 3))
        assert np.all(dist.per_server_load == 0.0)
        assert dist.regime == "free"


class TestRegimes:
    def test_billed_regime_without_renewables(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.5, onsite=0.0)
        dist = distribute_load(p, np.full(3, 3))
        assert dist.regime == "billed"
        assert dist.electricity_weight == pytest.approx(p.electricity_weight)

    def test_free_regime_with_abundant_renewables(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.5, onsite=100.0)
        dist = distribute_load(p, np.full(3, 3))
        assert dist.regime == "free"
        action = FleetAction(np.full(3, 3, dtype=np.int64), dist.per_server_load)
        assert p.evaluate(action).brown_energy == 0.0

    def test_boundary_regime_pins_power_at_supply(self, hetero_model):
        """Pick r between the free and billed power levels -> boundary."""
        p = make_problem(hetero_model, lam_frac=0.5, onsite=0.0, q=100.0)
        levels = (hetero_model.fleet.num_levels - 1).astype(np.int64)
        billed = distribute_load(p, levels)
        action_b = FleetAction(levels, billed.per_server_load)
        power_billed = p.evaluate(action_b).facility_power

        p_free = make_problem(hetero_model, lam_frac=0.5, onsite=1e9, q=100.0)
        free = distribute_load(p_free, levels)
        action_f = FleetAction(levels, free.per_server_load)
        power_free = p_free.evaluate(action_f).facility_power

        if power_free > power_billed + 1e-9:
            r_mid = 0.5 * (power_billed + power_free)
            p_mid = make_problem(hetero_model, lam_frac=0.5, onsite=r_mid, q=100.0)
            dist = distribute_load(p_mid, levels)
            assert dist.regime == "boundary"
            action = FleetAction(levels, dist.per_server_load)
            assert p_mid.evaluate(action).facility_power == pytest.approx(
                r_mid, rel=1e-5
            )


class TestOptimality:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scipy_on_heterogeneous(self, hetero_model, seed):
        rng = np.random.default_rng(seed)
        lam_frac = float(rng.uniform(0.1, 0.9))
        p = make_problem(
            hetero_model,
            lam_frac=lam_frac,
            onsite=float(rng.uniform(0.0, 0.002)),
            price=float(rng.uniform(10.0, 80.0)),
            q=float(rng.choice([0.0, 10.0, 100.0])),
        )
        levels = (hetero_model.fleet.num_levels - 1).astype(np.int64)
        dist = distribute_load(p, levels)
        ours = p.objective(FleetAction(levels, dist.per_server_load))
        ref = scipy_reference(p, levels)
        assert ours <= ref.fun * (1.0 + 1e-6) + 1e-12

    def test_equalizes_marginals_within_group_type(self, tiny_model):
        """Interior groups share one marginal objective (KKT)."""
        p = make_problem(tiny_model, lam_frac=0.5)
        dist = distribute_load(p, np.full(3, 3))
        loads = dist.per_server_load
        np.testing.assert_allclose(loads, loads[0], rtol=1e-6)

    def test_cheaper_groups_loaded_first(self, hetero_model):
        """With q >> 0, groups with lower dynamic energy per request should
        run at (weakly) higher utilization."""
        p = make_problem(hetero_model, lam_frac=0.3, q=1e4, price=40.0)
        levels = (hetero_model.fleet.num_levels - 1).astype(np.int64)
        dist = distribute_load(p, levels)
        fleet = hetero_model.fleet
        coeff = fleet.dyn_coeff[np.arange(2), levels]
        util = dist.per_server_load / fleet.speed_table[np.arange(2), levels]
        order = np.argsort(coeff)
        assert util[order[0]] >= util[order[1]] - 1e-9


@st.composite
def residual_cases(draw):
    """Random residual-closure instances: strictly-interior starting loads
    and a served-load target within the fleet's capped capacity, shifted
    far enough (up to +-30%) that the uniform correction saturates groups
    and forces redistribution passes."""
    g = draw(st.integers(1, 6))
    caps = np.array(draw(st.lists(st.floats(0.1, 10.0), min_size=g, max_size=g)))
    fracs = np.array(draw(st.lists(st.floats(0.01, 0.99), min_size=g, max_size=g)))
    counts = np.array(
        draw(st.lists(st.integers(0, 5), min_size=g, max_size=g)), dtype=np.float64
    )
    if float(np.sum(counts)) <= 0.0:
        counts[draw(st.integers(0, g - 1))] = 1.0
    shift = draw(st.floats(-0.3, 0.3))
    loads = fracs * caps
    total_cap = float(np.sum(counts * caps))
    lam = float(
        np.clip((1.0 + shift) * float(np.sum(counts * loads)), 1e-6, total_cap)
    )
    return lam, loads, caps, counts


class TestResidualClosure:
    """Regression tests for the water-filling residual closure: clipping a
    saturating correction used to leave the served-load balance open (the
    clipped mass simply vanished); the closure now redistributes it over
    the still-interior set until the balance closes."""

    @settings(max_examples=200, deadline=None)
    @given(residual_cases())
    def test_balance_closes_within_bounds(self, case):
        lam, loads, caps, counts = case
        out = ld._close_residual(lam, loads, caps, counts)
        assert np.all(out >= 0.0)
        assert np.all(out <= caps)
        served = float(np.sum(counts * out))
        assert served == pytest.approx(lam, rel=1e-9, abs=1e-9)

    def test_saturating_correction_redistributes(self):
        """A correction that caps one group must push the overflow onto the
        others, not drop it (the pre-fix behavior)."""
        caps = np.array([1.0, 10.0, 10.0])
        loads = np.array([0.9, 5.0, 5.0])
        counts = np.array([1.0, 1.0, 1.0])
        lam = 12.0  # residual 1.1 caps group 0 at 1.0; 1.0 spills over
        out = ld._close_residual(lam, loads, caps, counts)
        assert out[0] == 1.0
        assert float(np.sum(counts * out)) == pytest.approx(12.0, rel=1e-12)

    def test_zero_count_groups_do_not_absorb(self):
        """Interior groups with zero servers contribute nothing to the
        served load; the closure must still converge on the others."""
        caps = np.array([5.0, 5.0])
        loads = np.array([1.0, 1.0])
        counts = np.array([0.0, 2.0])
        out = ld._close_residual(4.0, loads, caps, counts)
        assert float(np.sum(counts * out)) == pytest.approx(4.0, rel=1e-12)


class TestDelayFreeZeroCount:
    """Regression: the greedy ``Wd == 0`` fill divided by the group count,
    so a group emptied by failures (count 0) produced 0/0 NaNs that
    poisoned every later group's load."""

    def test_direct_fill_skips_zero_count_groups(self):
        loads = ld._fill_when_delay_free(
            10.0,
            weights=np.array([1.0, 2.0, 3.0]),
            caps=np.array([5.0, 5.0, 5.0]),
            counts=np.array([0.0, 4.0, 4.0]),
        )
        assert not np.any(np.isnan(loads))
        assert loads[0] == 0.0
        assert float(np.sum(np.array([0.0, 4.0, 4.0]) * loads)) == pytest.approx(10.0)

    def test_distribute_load_with_emptied_group(self, tiny_fleet):
        from repro.cluster import Fleet
        from repro.core import DataCenterModel

        model = DataCenterModel(fleet=Fleet(tiny_fleet.groups), beta=0.0)
        counts = model.fleet.counts.copy()
        counts[0] = 0.0
        counts.setflags(write=False)
        model.fleet.counts = counts
        p = model.slot_problem(arrival_rate=50.0, onsite=0.0, price=40.0)
        dist = distribute_load(p, np.full(3, 3))
        assert not np.any(np.isnan(dist.per_server_load))
        served = float(np.sum(counts * dist.per_server_load))
        assert served == pytest.approx(50.0)


class TestBoundaryWeightReporting:
    """Regression: the boundary regime used to report the *final bracket
    midpoint* as ``electricity_weight`` -- a weight no water-fill ever ran
    at -- so warm starts seeded their mu bracket around the wrong point and
    the result was not reproducible from its own metadata."""

    def test_reported_weight_reproduces_loads(self, hetero_model):
        from tests.test_fastpath import boundary_problem

        levels = (hetero_model.fleet.num_levels - 1).astype(np.int64)
        p = boundary_problem(hetero_model, levels)
        dist = distribute_load(p, levels)
        assert dist.regime == "boundary"
        assert 0.0 < dist.electricity_weight < p.electricity_weight

        # Re-running the water-fill at the reported weight (seeded with the
        # reported dual) must land on the returned loads.
        fleet = p.fleet
        on = np.nonzero(levels >= 0)[0]
        x = fleet.speed_table[on, levels[on]]
        c = fleet.dyn_coeff[on, levels[on]]
        n = fleet.counts[on]
        loads2, _, _, _ = ld._waterfill(
            p, p.arrival_rate, dist.electricity_weight, x, c, n, nu_hint=dist.nu
        )
        np.testing.assert_allclose(
            loads2, dist.per_server_load[on], rtol=1e-6, atol=1e-12
        )

    def test_self_hint_validates_boundary_bracket(self, hetero_model):
        from tests.test_fastpath import boundary_problem

        levels = (hetero_model.fleet.num_levels - 1).astype(np.int64)
        p = boundary_problem(hetero_model, levels)
        dist = distribute_load(p, levels)
        assert dist.regime == "boundary"
        redo = distribute_load(p, levels, hint=dist)
        assert redo.regime == "boundary"
        assert redo.warm_started
        assert redo.electricity_weight == pytest.approx(
            dist.electricity_weight, rel=1e-6
        )
        np.testing.assert_allclose(
            redo.per_server_load, dist.per_server_load, rtol=1e-6, atol=1e-12
        )


class TestSolveFixedLevels:
    def test_returns_consistent_pair(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.4)
        action, ev = solve_fixed_levels(p, np.full(3, 3))
        assert ev.objective == pytest.approx(p.objective(action))

    def test_delay_free_problem_fills_cheapest(self, tiny_fleet):
        """With beta = 0 the objective is linear: all load should go to the
        configured groups in dynamic-coefficient order."""
        from repro.core import DataCenterModel

        model = DataCenterModel(fleet=tiny_fleet, beta=0.0)
        p = model.slot_problem(arrival_rate=50.0, onsite=0.0, price=40.0)
        dist = distribute_load(p, np.full(3, 3))
        served = float(np.sum(tiny_fleet.counts * dist.per_server_load))
        assert served == pytest.approx(50.0)
        # Homogeneous coefficients: the stable greedy fills group 0 first
        # (50 req/s over 10 servers, well under the 9.5 req/s cap each).
        assert dist.per_server_load[0] == pytest.approx(5.0)
        assert dist.per_server_load[1] == 0.0
        assert dist.per_server_load[2] == 0.0
