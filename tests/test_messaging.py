"""Tests for the distributed message-passing substrate and DistributedGSD."""

import numpy as np
import pytest

from repro.solvers import (
    BruteForceSolver,
    DistributedGSD,
    DualLoadCoordinator,
    Message,
    MessageBus,
    ServerAgent,
    distribute_load,
)
from repro.solvers.messaging import DistributedGSD as _DG
from tests.conftest import make_problem


def build_bus(fleet):
    bus = MessageBus()
    agents = [ServerAgent(f"group-{g}", fleet, g) for g in range(fleet.num_groups)]
    for a in agents:
        bus.register(a)
    return bus, agents


class TestMessageBus:
    def test_counts_deliveries(self, tiny_fleet):
        bus, agents = build_bus(tiny_fleet)
        bus.send(Message("driver", "group-0", "set_level", {"level": 2}))
        assert bus.delivered == 1
        assert bus.by_kind["set_level"] == 1

    def test_unknown_recipient(self, tiny_fleet):
        bus, _ = build_bus(tiny_fleet)
        with pytest.raises(KeyError):
            bus.send(Message("driver", "nope", "set_level", {"level": 0}))

    def test_duplicate_registration_rejected(self, tiny_fleet):
        bus, agents = build_bus(tiny_fleet)
        with pytest.raises(ValueError, match="duplicate"):
            bus.register(agents[0])

    def test_broadcast_reaches_everyone(self, tiny_fleet):
        bus, agents = build_bus(tiny_fleet)
        bus.broadcast("driver", "set_level", {"level": 1})
        assert all(a.level == 1 for a in agents)

    def test_unknown_kind_raises(self, tiny_fleet):
        bus, _ = build_bus(tiny_fleet)
        with pytest.raises(ValueError, match="unknown message kind"):
            bus.send(Message("driver", "group-0", "frobnicate", {}))


class TestDualCoordinatorProtocol:
    @pytest.mark.parametrize("lam_frac", [0.1, 0.5, 0.9])
    def test_matches_centralized_waterfilling(self, tiny_model, lam_frac):
        """The message protocol must land on the same loads as the
        vectorized centralized solver."""
        p = make_problem(tiny_model, lam_frac=lam_frac, q=10.0)
        bus, agents = build_bus(tiny_model.fleet)
        coord = DualLoadCoordinator(bus)
        coord.configure(p)
        coord.solve(p)
        distributed = np.array([a.load for a in agents])
        central = distribute_load(
            p, np.array([a.level for a in agents], dtype=np.int64)
        ).per_server_load
        np.testing.assert_allclose(distributed, central, rtol=1e-6, atol=1e-9)

    def test_free_regime_with_huge_renewables(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.5, onsite=1e6)
        bus, agents = build_bus(tiny_model.fleet)
        coord = DualLoadCoordinator(bus)
        coord.configure(p)
        coord.solve(p)
        served = sum(a.load * a.count for a in agents)
        assert served == pytest.approx(p.arrival_rate, rel=1e-6)

    def test_agents_only_use_local_state(self, tiny_fleet):
        """An agent's price response must be computable from its own profile
        plus broadcast parameters -- it never receives fleet tables."""
        agent = ServerAgent("solo", tiny_fleet, 0)
        assert not hasattr(agent, "fleet")

    def test_message_complexity_linear_in_groups(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.4)
        bus, agents = build_bus(tiny_model.fleet)
        coord = DualLoadCoordinator(bus)
        coord.configure(p)
        coord.solve(p)
        # configure + price rounds + commit: all O(G) per round.
        assert bus.by_kind["price"] % tiny_model.fleet.num_groups == 0


class TestDistributedGSD:
    def test_reaches_near_oracle(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.5, q=5.0)
        bf = BruteForceSolver().solve(p)
        sol = DistributedGSD(
            iterations=250, delta=1e4, rng=np.random.default_rng(7)
        ).solve(p)
        assert sol.objective <= bf.objective * 1.05 + 1e-12

    def test_reports_message_stats(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.3)
        sol = DistributedGSD(iterations=50, delta=1e4).solve(p)
        assert sol.info["messages"] > 0
        assert "price" in sol.info["messages_by_kind"]

    def test_action_serves_workload(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.6)
        sol = DistributedGSD(iterations=100, delta=1e4).solve(p)
        assert sol.action.served_load(tiny_model.fleet) == pytest.approx(
            p.arrival_rate, rel=1e-6
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedGSD(iterations=0)
        with pytest.raises(ValueError):
            DistributedGSD(delta=0.0)
