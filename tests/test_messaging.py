"""Tests for the distributed message-passing substrate and DistributedGSD."""

import numpy as np
import pytest

from repro.faults import FaultyMessageBus
from repro.solvers import (
    BruteForceSolver,
    BusTimeoutError,
    DistributedGSD,
    DualLoadCoordinator,
    Message,
    MessageBus,
    ServerAgent,
    distribute_load,
    exchange,
)
from repro.solvers.messaging import DistributedGSD as _DG
from tests.conftest import make_problem


def build_bus(fleet):
    bus = MessageBus()
    agents = [ServerAgent(f"group-{g}", fleet, g) for g in range(fleet.num_groups)]
    for a in agents:
        bus.register(a)
    return bus, agents


class TestMessageBus:
    def test_counts_deliveries(self, tiny_fleet):
        bus, agents = build_bus(tiny_fleet)
        bus.send(Message("driver", "group-0", "set_level", {"level": 2}))
        assert bus.delivered == 1
        assert bus.by_kind["set_level"] == 1

    def test_unknown_recipient(self, tiny_fleet):
        bus, _ = build_bus(tiny_fleet)
        with pytest.raises(KeyError):
            bus.send(Message("driver", "nope", "set_level", {"level": 0}))

    def test_duplicate_registration_rejected(self, tiny_fleet):
        bus, agents = build_bus(tiny_fleet)
        with pytest.raises(ValueError, match="duplicate"):
            bus.register(agents[0])

    def test_broadcast_reaches_everyone(self, tiny_fleet):
        bus, agents = build_bus(tiny_fleet)
        bus.broadcast("driver", "set_level", {"level": 1})
        assert all(a.level == 1 for a in agents)

    def test_unknown_kind_raises(self, tiny_fleet):
        bus, _ = build_bus(tiny_fleet)
        with pytest.raises(ValueError, match="unknown message kind"):
            bus.send(Message("driver", "group-0", "frobnicate", {}))


class TestDualCoordinatorProtocol:
    @pytest.mark.parametrize("lam_frac", [0.1, 0.5, 0.9])
    def test_matches_centralized_waterfilling(self, tiny_model, lam_frac):
        """The message protocol must land on the same loads as the
        vectorized centralized solver."""
        p = make_problem(tiny_model, lam_frac=lam_frac, q=10.0)
        bus, agents = build_bus(tiny_model.fleet)
        coord = DualLoadCoordinator(bus)
        coord.configure(p)
        coord.solve(p)
        distributed = np.array([a.load for a in agents])
        central = distribute_load(
            p, np.array([a.level for a in agents], dtype=np.int64)
        ).per_server_load
        np.testing.assert_allclose(distributed, central, rtol=1e-6, atol=1e-9)

    def test_free_regime_with_huge_renewables(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.5, onsite=1e6)
        bus, agents = build_bus(tiny_model.fleet)
        coord = DualLoadCoordinator(bus)
        coord.configure(p)
        coord.solve(p)
        served = sum(a.load * a.count for a in agents)
        assert served == pytest.approx(p.arrival_rate, rel=1e-6)

    def test_agents_only_use_local_state(self, tiny_fleet):
        """An agent's price response must be computable from its own profile
        plus broadcast parameters -- it never receives fleet tables."""
        agent = ServerAgent("solo", tiny_fleet, 0)
        assert not hasattr(agent, "fleet")

    def test_message_complexity_linear_in_groups(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.4)
        bus, agents = build_bus(tiny_model.fleet)
        coord = DualLoadCoordinator(bus)
        coord.configure(p)
        coord.solve(p)
        # configure + price rounds + commit: all O(G) per round.
        assert bus.by_kind["price"] % tiny_model.fleet.num_groups == 0


def build_faulty_bus(fleet, *, seed=0, **kw):
    bus = FaultyMessageBus(rng=np.random.default_rng(seed), **kw)
    agents = [ServerAgent(f"group-{g}", fleet, g) for g in range(fleet.num_groups)]
    for a in agents:
        bus.register(a)
    return bus, agents


class TestLossyCoordinator:
    def test_exchange_retries_until_delivered(self, tiny_fleet):
        bus, agents = build_faulty_bus(tiny_fleet, seed=4, loss=0.5)
        reply = exchange(
            bus, "driver", "group-0", "set_level", {"level": 2}, retries=20
        )
        assert reply is not None
        assert agents[0].level == 2

    def test_exchange_exhaustion_raises(self, tiny_fleet):
        bus, _ = build_faulty_bus(tiny_fleet, seed=4, loss=0.95)
        with pytest.raises(BusTimeoutError, match="set_level"):
            exchange(bus, "driver", "group-0", "set_level", {"level": 2}, retries=1)

    def test_retries_matches_reliable_solution(self, tiny_model):
        """The coordinator on a lossy bus (with retries) must land on the
        same loads as on a reliable bus."""
        p = make_problem(tiny_model, lam_frac=0.5, q=10.0)

        bus_ok, agents_ok = build_bus(tiny_model.fleet)
        coord = DualLoadCoordinator(bus_ok)
        coord.configure(p)
        coord.solve(p)

        bus_bad, agents_bad = build_faulty_bus(
            tiny_model.fleet, seed=17, loss=0.10, delay=0.03, duplicate=0.02
        )
        lossy = DualLoadCoordinator(bus_bad, retries=8)
        lossy.configure(p)
        lossy.solve(p)

        np.testing.assert_allclose(
            [a.load for a in agents_bad],
            [a.load for a in agents_ok],
            rtol=1e-6,
            atol=1e-9,
        )
        assert lossy.retries_used > 0  # the faults actually bit

    def test_ack_replies_keep_reliable_counts(self, tiny_model):
        """Retry plumbing must be free on a healthy bus: same deliveries,
        same per-kind counts, zero retries consumed."""
        p = make_problem(tiny_model, lam_frac=0.4)
        counts = []
        for retries in (0, 5):
            bus, _ = build_bus(tiny_model.fleet)
            coord = DualLoadCoordinator(bus, retries=retries)
            coord.configure(p)
            coord.solve(p)
            counts.append((bus.delivered, dict(bus.by_kind), coord.retries_used))
        assert counts[0][:2] == counts[1][:2]
        assert counts[1][2] == 0

    def test_distributed_gsd_near_oracle_under_loss(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.5, q=5.0)
        bf = BruteForceSolver().solve(p)
        solver = DistributedGSD(
            iterations=150,
            delta=1e4,
            rng=np.random.default_rng(7),
            bus_factory=lambda: FaultyMessageBus(
                loss=0.10, delay=0.03, duplicate=0.02,
                rng=np.random.default_rng(23),
            ),
            retries=5,
        )
        sol = solver.solve(p)
        assert sol.objective <= bf.objective * 1.20 + 1e-12
        assert sol.info["bus_faults"]["dropped"] > 0
        assert sol.info["retries_used"] > 0


class TestDistributedGSD:
    def test_reaches_near_oracle(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.5, q=5.0)
        bf = BruteForceSolver().solve(p)
        sol = DistributedGSD(
            iterations=250, delta=1e4, rng=np.random.default_rng(7)
        ).solve(p)
        assert sol.objective <= bf.objective * 1.05 + 1e-12

    def test_reports_message_stats(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.3)
        sol = DistributedGSD(iterations=50, delta=1e4).solve(p)
        assert sol.info["messages"] > 0
        assert "price" in sol.info["messages_by_kind"]

    def test_action_serves_workload(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.6)
        sol = DistributedGSD(iterations=100, delta=1e4).solve(p)
        assert sol.action.served_load(tiny_model.fleet) == pytest.approx(
            p.arrival_rate, rel=1e-6
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedGSD(iterations=0)
        with pytest.raises(ValueError):
            DistributedGSD(delta=0.0)


class LateAckBus(MessageBus):
    """Delivers every message, but while armed withholds replies of one
    kind past the sender's timeout window: the handler runs (state
    mutates), the ack is parked in ``late_acks`` instead of returned.

    This is the nastiest corner of the retry protocol: the sender raises
    :class:`BusTimeoutError` for a round the recipients actually executed
    -- possibly several times, once per retry -- and the late duplicate
    acks arrive after the round was abandoned.
    """

    def __init__(self, eat_kind: str):
        super().__init__()
        self.eat_kind = eat_kind
        self.armed = True
        self.late_acks: list[Message] = []

    def send(self, message: Message) -> Message | None:
        reply = super().send(message)
        if self.armed and message.kind == self.eat_kind:
            self.late_acks.append(reply)
            return None
        return reply


class TestLateAckAfterTimeout:
    """An agent answering a retry *after* ``BusTimeoutError`` was raised
    for the round: the late duplicate acks must be discarded and must not
    corrupt the next bisection round."""

    def _late_bus(self, fleet, eat_kind):
        bus = LateAckBus(eat_kind)
        agents = [
            ServerAgent(f"group-{g}", fleet, g) for g in range(fleet.num_groups)
        ]
        for a in agents:
            bus.register(a)
        return bus, agents

    def test_late_commit_acks_discarded_next_round_clean(self, tiny_model):
        p1 = make_problem(tiny_model, lam_frac=0.5, q=10.0)
        p2 = make_problem(tiny_model, lam_frac=0.7, q=2.0, price=55.0)

        # Reference: the same two slots on an always-reliable fabric.
        ref_bus, ref_agents = build_bus(tiny_model.fleet)
        ref = DualLoadCoordinator(ref_bus, retries=2)
        ref.configure(p1)
        ref.solve(p1)
        ref.configure(p2)
        nu_ref = ref.solve(p2)

        # Outage round: "commit" handlers all execute, every ack is late.
        bus, agents = self._late_bus(tiny_model.fleet, "commit")
        coord = DualLoadCoordinator(bus, retries=2)
        coord.configure(p1)
        with pytest.raises(BusTimeoutError):
            coord.solve(p1)
        # The round was answered retries+1 times -- after the timeout.
        assert len(bus.late_acks) == 3
        assert all(m is not None and m.kind == "ack" for m in bus.late_acks)
        assert coord.retries_used == 2
        # The recipient executed the abandoned round: its state moved.
        assert agents[0].load > 0.0

        # Next round on a healed fabric: the parked duplicates are never
        # consumed, and overwrite-idempotent handlers leave no residue --
        # the bisection lands exactly where the reliable fabric did.
        bus.armed = False
        coord.configure(p2)
        nu = coord.solve(p2)
        assert nu == nu_ref
        np.testing.assert_array_equal(
            np.array([a.load for a in agents]),
            np.array([a.load for a in ref_agents]),
        )
        np.testing.assert_array_equal(
            np.array([a.level for a in agents]),
            np.array([a.level for a in ref_agents]),
        )

    def test_late_price_reply_does_not_skew_bisection(self, tiny_model):
        """Same gap for a *query* kind: a price round that times out after
        its replies were computed must not leak those stale responses into
        the re-run bisection."""
        p = make_problem(tiny_model, lam_frac=0.5, q=10.0)

        ref_bus, ref_agents = build_bus(tiny_model.fleet)
        ref = DualLoadCoordinator(ref_bus, retries=1)
        ref.configure(p)
        nu_ref = ref.solve(p)

        bus, agents = self._late_bus(tiny_model.fleet, "price")
        coord = DualLoadCoordinator(bus, retries=1)
        coord.configure(p)
        with pytest.raises(BusTimeoutError):
            coord.solve(p)
        stale = len(bus.late_acks)
        assert stale == 2  # original + one retry, both answered late

        bus.armed = False
        nu = coord.solve(p)
        assert nu == nu_ref
        np.testing.assert_array_equal(
            np.array([a.load for a in agents]),
            np.array([a.load for a in ref_agents]),
        )
        # The parked replies stayed parked: exactly the timed-out round.
        assert len(bus.late_acks) == stale
