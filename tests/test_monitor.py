"""Tests for the health-monitoring layer: alerts, invariants, GSD
diagnostics, the tracer tap, and the HTML dashboard.

The corrupted-trace tests are the load-bearing ones: every invariant
monitor must actually *trip* when fed a trace violating its property --
a watchdog that never fires is indistinguishable from no watchdog.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import COCA
from repro.monitor import (
    DASHBOARD_SECTIONS,
    Alert,
    AlertChannel,
    BudgetTrajectoryMonitor,
    DroppedLoadMonitor,
    GSDAcceptanceMonitor,
    GSDDispersionMonitor,
    GSDStallMonitor,
    JsonlAlertSink,
    LoadConservationMonitor,
    MonitoringTracer,
    MonitorSuite,
    QueueBoundMonitor,
    SlotSanityMonitor,
    default_suite,
    monitored_telemetry,
    render_dashboard,
    replay,
    write_dashboard,
)
from repro.sim import simulate
from repro.telemetry import SCHEMA_VERSION, InMemoryTracer, Telemetry


def _run(scenario, telemetry=None, v=120.0):
    controller = COCA(scenario.model, scenario.environment.portfolio, v_schedule=v)
    return simulate(
        scenario.model, controller, scenario.environment, telemetry=telemetry
    )


@pytest.fixture(scope="session")
def neutral_v(week_scenario) -> float:
    """A V that actually reaches carbon neutrality on the week scenario --
    a fixed arbitrary V can legitimately end over budget, which is a true
    positive for the budget monitor, not a healthy run."""
    from repro.analysis import find_neutral_v

    return find_neutral_v(week_scenario, iters=8)


@pytest.fixture(scope="session")
def healthy_events(week_scenario, neutral_v):
    """Event stream of one healthy instrumented COCA week."""
    telemetry = Telemetry.recording()
    _run(week_scenario, telemetry=telemetry, v=neutral_v)
    return telemetry.events


# ---------------------------------------------------------------- alerts
class TestAlertChannel:
    def test_dedup_by_key_counts_repeats(self):
        seen: list[Alert] = []
        channel = AlertChannel(sinks=[seen.append])
        for t in range(5):
            channel.raise_alert("warning", "m", f"slot {t} broke", t=t, key="m:broke")
        assert len(channel.alerts) == 1
        (alert,) = channel.alerts
        assert alert.count == 5
        assert alert.t == 0 and alert.last_t == 4
        # Sinks hear only the first occurrence.
        assert len(seen) == 1

    def test_severity_escalation_keeps_worst(self):
        channel = AlertChannel()
        channel.raise_alert("warning", "m", "x", key="k")
        channel.raise_alert("critical", "m", "x again", key="k")
        channel.raise_alert("info", "m", "x still", key="k")
        (alert,) = channel.alerts
        assert alert.severity == "critical"
        assert channel.worst_severity == "critical"
        assert channel.count("critical") == 1 and channel.count() == 1

    def test_min_severity_gates_sinks_not_log(self):
        seen: list[Alert] = []
        channel = AlertChannel(sinks=[seen.append], min_severity="critical")
        channel.raise_alert("info", "m", "quiet")
        channel.raise_alert("critical", "m", "loud")
        assert len(seen) == 1 and seen[0].message == "loud"
        assert channel.count() == 2  # both still on the record

    def test_unknown_severity_rejected(self):
        channel = AlertChannel()
        with pytest.raises(ValueError, match="severity"):
            channel.raise_alert("catastrophic", "m", "x")

    def test_dedup_window_rearms_after_w_slots(self):
        seen: list[Alert] = []
        channel = AlertChannel(sinks=[seen.append], dedup_window=3)
        for t in range(8):
            channel.raise_alert("warning", "m", "stuck", t=t, key="k")
        # Dispatched at t=0, re-armed at t=3 and t=6; folded in between.
        assert len(seen) == 3
        (alert,) = channel.alerts
        assert alert.count == 8  # the true occurrence total is kept

    def test_dedup_window_rearms_on_recurrence_after_quiet_gap(self):
        seen: list[Alert] = []
        channel = AlertChannel(sinks=[seen.append], dedup_window=5)
        channel.raise_alert("warning", "m", "x", t=2, key="k")
        channel.raise_alert("warning", "m", "x", t=4, key="k")  # within window
        channel.raise_alert("warning", "m", "x", t=40, key="k")  # long quiet gap
        assert len(seen) == 2

    def test_dedup_window_ignores_untimed_repeats(self):
        seen: list[Alert] = []
        channel = AlertChannel(sinks=[seen.append], dedup_window=1)
        channel.raise_alert("warning", "m", "x", t=0, key="k")
        channel.raise_alert("warning", "m", "x", key="k")  # no slot: never re-arms
        assert len(seen) == 1

    def test_no_window_keeps_one_dispatch_ever(self):
        seen: list[Alert] = []
        channel = AlertChannel(sinks=[seen.append])
        for t in range(0, 1000, 100):
            channel.raise_alert("warning", "m", "x", t=t, key="k")
        assert len(seen) == 1  # historical batch behaviour is the default

    def test_dedup_window_validated(self):
        with pytest.raises(ValueError, match="dedup_window"):
            AlertChannel(dedup_window=0)

    def test_jsonl_sink_writes_dedup_lines(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = JsonlAlertSink(str(path))
        channel = AlertChannel(sinks=[sink])
        channel.raise_alert("warning", "m", "a", t=1)
        channel.raise_alert("critical", "n", "b", t=2)
        channel.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["monitor"] for row in lines] == ["m", "n"]
        assert lines[1]["severity"] == "critical"


# ------------------------------------------------------------ invariants
def _feed(monitor, events):
    """Run one monitor (plus finalize) over a hand-built event list."""
    suite = MonitorSuite([monitor])
    for event in events:
        suite.observe(event)
    suite.finalize()
    return suite


class TestInvariantsTrip:
    """Each monitor fires on a trace violating its property."""

    def test_queue_bound_trips_on_runaway_queue(self):
        monitor = QueueBoundMonitor(w_max=50.0, y_max=10.0)
        events = [
            {"kind": "queue.update", "t": 0, "after": 5.0, "v": 10.0, "brown": 1.0},
            # bound = 1.05 * (10*50 + 10) = 535.5; 9000 is far past it
            {"kind": "queue.update", "t": 1, "after": 9000.0, "v": 10.0, "brown": 1.0},
        ]
        suite = _feed(monitor, events)
        assert not monitor.report().passed
        (alert,) = suite.alerts
        assert alert.severity == "critical" and "Lyapunov bound" in alert.message

    def test_queue_bound_self_calibrates_from_trace(self):
        monitor = QueueBoundMonitor()  # no constants given
        events = [
            {"kind": "run.start", "max_facility_power": 10.0},
            {"kind": "slot.decision", "t": 0, "price": 50.0},
            {"kind": "queue.update", "t": 0, "after": 9000.0, "v": 10.0, "brown": 1.0},
        ]
        suite = _feed(monitor, events)
        assert monitor.checked == 1
        assert not monitor.report().passed
        assert suite.alerts[0].severity == "critical"

    def test_budget_trajectory_warns_then_goes_critical(self):
        monitor = BudgetTrajectoryMonitor(warmup_slots=2)
        # Every slot burns 10 MWh brown against a 1 MWh budget release.
        events = [
            {"kind": "controller.config", "alpha": 1.0},
            *[
                {"kind": "queue.update", "t": t, "after": 0.0, "brown": 10.0,
                 "offsite": 0.5, "rec_per_slot": 0.5}
                for t in range(6)
            ],
        ]
        suite = _feed(monitor, events)
        assert not monitor.report().passed
        severities = {a.key: a.severity for a in suite.alerts}
        assert severities[f"{monitor.name}:trajectory"] == "warning"
        assert severities[f"{monitor.name}:final"] == "critical"

    def test_budget_trajectory_quiet_on_balanced_run(self):
        monitor = BudgetTrajectoryMonitor(warmup_slots=2)
        events = [
            {"kind": "queue.update", "t": t, "brown": 1.0, "offsite": 0.9,
             "rec_per_slot": 0.1}
            for t in range(10)
        ]
        suite = _feed(monitor, events)
        assert monitor.report().passed
        assert suite.alerts == []

    def test_load_conservation_trips_on_lost_load(self):
        monitor = LoadConservationMonitor()
        events = [
            {"kind": "slot.outcome", "t": 0, "arrival_actual": 100.0,
             "served": 60.0, "dropped": 0.0},  # 40 req/s vanished
        ]
        suite = _feed(monitor, events)
        assert not monitor.report().passed
        assert "not conserved" in suite.alerts[0].message

    def test_load_conservation_trips_on_capacity_breach(self):
        monitor = LoadConservationMonitor(capacity=50.0)
        events = [
            {"kind": "slot.outcome", "t": 0, "arrival_actual": 80.0,
             "served": 80.0, "dropped": 0.0},
        ]
        suite = _feed(monitor, events)
        assert not monitor.report().passed
        assert any("capacity" in a.message for a in suite.alerts)

    def test_load_conservation_trips_on_share_mismatch(self):
        monitor = LoadConservationMonitor()
        events = [
            {"kind": "geo.dispatch", "t": 0, "load": 100.0,
             "shares": [30.0, 30.0]},
        ]
        suite = _feed(monitor, events)
        assert not monitor.report().passed
        assert "shares" in suite.alerts[0].message

    def test_dropped_load_warns_per_slot_and_criticals_per_run(self):
        monitor = DroppedLoadMonitor(run_threshold=0.01)
        events = [
            {"kind": "slot.outcome", "t": t, "arrival_actual": 100.0,
             "served": 90.0, "dropped": 10.0}
            for t in range(3)
        ]
        suite = _feed(monitor, events)
        assert not monitor.report().passed
        severities = {a.key: a.severity for a in suite.alerts}
        assert severities[f"{monitor.name}:slot"] == "warning"
        assert severities[f"{monitor.name}:run"] == "critical"

    def test_slot_sanity_trips_on_broken_decomposition(self):
        monitor = SlotSanityMonitor()
        events = [
            {"kind": "slot.outcome", "t": 0, "cost": 10.0,
             "electricity_cost": 3.0, "delay_cost": 1.0},
        ]
        suite = _feed(monitor, events)
        assert not monitor.report().passed
        assert "electricity" in suite.alerts[0].message

    def test_slot_sanity_trips_on_negative_energy(self):
        monitor = SlotSanityMonitor()
        events = [
            {"kind": "slot.outcome", "t": 0, "cost": 1.0,
             "electricity_cost": 1.0, "delay_cost": 0.0, "brown_energy": -2.0},
        ]
        suite = _feed(monitor, events)
        assert not monitor.report().passed
        assert "brown_energy" in suite.alerts[0].message


# ------------------------------------------------------- GSD diagnostics
class TestGSDDiagnosticsTrip:
    def test_acceptance_monitor_flags_frozen_chain(self):
        monitor = GSDAcceptanceMonitor()
        suite = _feed(monitor, [
            {"kind": "gsd.solve", "solve_index": 0, "acceptance_rate": 0.001},
        ])
        assert not monitor.report().passed
        assert "frozen" in suite.alerts[0].message

    def test_acceptance_monitor_flags_undiscriminating_chain(self):
        monitor = GSDAcceptanceMonitor()
        suite = _feed(monitor, [
            {"kind": "gsd.solve", "solve_index": 0, "acceptance_rate": 0.999},
        ])
        assert not monitor.report().passed
        assert "accepts everything" in suite.alerts[0].message

    def test_acceptance_monitor_quiet_in_band(self):
        monitor = GSDAcceptanceMonitor()
        suite = _feed(monitor, [
            {"kind": "gsd.solve", "solve_index": 0, "acceptance_rate": 0.4},
        ])
        assert monitor.report().passed
        assert suite.alerts == []

    def test_acceptance_monitor_tolerates_converged_chains(self):
        # Chains that start at the optimum accept nothing for their whole
        # budget; as long as the run-level mean stays in band that is
        # convergence, not a frozen temperature schedule.
        monitor = GSDAcceptanceMonitor()
        rates = [0.0, 0.0, 0.0, 0.1, 0.1]   # mean 0.04 > low=0.02
        suite = _feed(monitor, [
            {"kind": "gsd.solve", "solve_index": i, "acceptance_rate": r}
            for i, r in enumerate(rates)
        ])
        assert monitor.report().passed
        assert suite.alerts == []

    def test_stall_monitor_trips_after_patience_windows(self):
        monitor = GSDStallMonitor(patience=3)
        events = [
            {"kind": "gsd.iteration", "solve_index": 0, "iteration": 100 * (i + 1),
             "best_objective": 42.0, "acceptance_rate": 0.0, "window": 100}
            for i in range(4)
        ]
        suite = _feed(monitor, events)
        assert not monitor.report().passed
        assert "stalled" in suite.alerts[0].message
        assert monitor.longest_streak >= 3

    def test_stall_monitor_resets_across_chains(self):
        monitor = GSDStallMonitor(patience=3)
        # Two windows of stall in chain 0, then a new chain: streak resets.
        events = [
            {"kind": "gsd.iteration", "solve_index": 0, "iteration": 100,
             "best_objective": 42.0, "acceptance_rate": 0.0, "window": 100},
            {"kind": "gsd.iteration", "solve_index": 0, "iteration": 200,
             "best_objective": 42.0, "acceptance_rate": 0.0, "window": 100},
            {"kind": "gsd.solve", "solve_index": 0, "acceptance_rate": 0.5},
            {"kind": "gsd.iteration", "solve_index": 1, "iteration": 100,
             "best_objective": 99.0, "acceptance_rate": 0.0, "window": 100},
            {"kind": "gsd.iteration", "solve_index": 1, "iteration": 200,
             "best_objective": 99.0, "acceptance_rate": 0.0, "window": 100},
        ]
        suite = _feed(monitor, events)
        assert monitor.report().passed
        assert suite.alerts == []

    def test_dispersion_monitor_trips_on_wild_chains(self):
        monitor = GSDDispersionMonitor(min_chains=3)
        events = [
            {"kind": "gsd.solve", "solve_index": i, "acceptance_rate": rate,
             "iterations": 100, "iterations_to_convergence": 50}
            for i, rate in enumerate([0.001, 0.001, 0.001, 0.95])
        ]
        suite = _feed(monitor, events)
        assert not monitor.report().passed
        assert "dispersion" in suite.alerts[0].message

    def test_dispersion_monitor_quiet_on_consistent_chains(self):
        monitor = GSDDispersionMonitor(min_chains=3)
        events = [
            {"kind": "gsd.solve", "solve_index": i, "acceptance_rate": 0.3,
             "iterations": 100, "iterations_to_convergence": 60}
            for i in range(5)
        ]
        suite = _feed(monitor, events)
        assert monitor.report().passed
        assert suite.alerts == []


# ------------------------------------------------------- suite and tap
class TestSuite:
    def test_default_suite_has_all_monitors(self):
        suite = default_suite()
        names = {m.name for m in suite.monitors}
        assert {
            "queue-bound", "budget-trajectory", "load-conservation",
            "dropped-load", "slot-sanity",
            "gsd-acceptance", "gsd-stall", "gsd-dispersion",
        } <= names

    def test_default_suite_rejects_unknown_override(self):
        with pytest.raises(TypeError, match="unknown"):
            default_suite(not_a_knob=1.0)

    def test_healthy_run_passes_every_monitor(self, healthy_events):
        suite = replay(healthy_events)
        for report in suite.reports():
            assert report.passed, f"{report.monitor}: {report.detail}"
        assert suite.passed
        assert suite.alerts == []

    def test_live_tap_equals_offline_replay(
        self, week_scenario, healthy_events, neutral_v
    ):
        telemetry, live_suite = monitored_telemetry(tracer=InMemoryTracer())
        _run(week_scenario, telemetry=telemetry, v=neutral_v)
        live_suite.finalize()
        offline_suite = replay(healthy_events)
        live = [(r.monitor, r.checked, r.violations) for r in live_suite.reports()]
        offline = [
            (r.monitor, r.checked, r.violations) for r in offline_suite.reports()
        ]
        assert live == offline

    def test_monitored_run_is_bit_identical(self, week_scenario):
        plain = _run(week_scenario)
        telemetry, _suite = monitored_telemetry()
        monitored = _run(week_scenario, telemetry=telemetry)
        for column in ("cost", "brown_energy", "active_servers", "queue", "served"):
            np.testing.assert_array_equal(
                getattr(plain, column), getattr(monitored, column)
            )

    def test_tap_forwards_stamped_events_to_inner(self):
        inner = InMemoryTracer()
        suite = default_suite()
        tap = MonitoringTracer(suite, inner, run_id="tap0")
        tap.emit("queue.update", t=0, after=1.0, brown=0.5, offsite=0.5, v=10.0)
        (event,) = inner.events
        assert event["run_id"] == "tap0"
        assert event["schema_version"] == SCHEMA_VERSION
        assert event["kind"] == "queue.update"

    def test_finalize_is_idempotent(self):
        monitor = DroppedLoadMonitor(run_threshold=0.0)
        suite = MonitorSuite([monitor])
        suite.observe({"kind": "slot.outcome", "t": 0, "arrival_actual": 10.0,
                       "served": 9.0, "dropped": 1.0})
        suite.finalize()
        suite.finalize()
        run_alerts = [a for a in suite.alerts if a.key.endswith(":run")]
        assert len(run_alerts) == 1 and run_alerts[0].count == 1


# ------------------------------------------------------------- dashboard
class TestDashboard:
    def test_renders_all_sections(self, healthy_events):
        html = render_dashboard(healthy_events, title="week run")
        assert html.lstrip().startswith("<!DOCTYPE html>")
        for anchor in DASHBOARD_SECTIONS:
            assert f'id="{anchor}"' in html, anchor
        assert "<svg" in html
        assert "week run" in html

    def test_self_contained_no_external_refs(self, healthy_events):
        html = render_dashboard(healthy_events)
        for marker in ("http://", "https://", "src=", "@import"):
            assert marker not in html

    def test_alerts_rendered_on_corrupt_trace(self, healthy_events):
        corrupted = [dict(e) for e in healthy_events]
        for event in corrupted:
            if event["kind"] == "slot.outcome":
                event["brown_energy"] = -5.0
        html = render_dashboard(corrupted)
        assert "negative outcome fields" in html
        assert "✗" in html  # failing invariant row

    def test_write_dashboard_creates_file(self, tmp_path, healthy_events):
        out = tmp_path / "report.html"
        write_dashboard(healthy_events, str(out))
        assert out.exists() and out.stat().st_size > 1000

    def test_empty_trace_still_renders(self):
        html = render_dashboard([])
        for anchor in DASHBOARD_SECTIONS:
            assert f'id="{anchor}"' in html


# ------------------------------------------------------------------- CLI
class TestDashboardCLI:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "run.jsonl"
        assert main(
            ["quickstart", "--horizon", "48", "--v", "50",
             "--trace-out", str(path)]
        ) == 0
        return path

    def test_dashboard_renders_trace(self, tmp_path, trace_file, capsys):
        from repro.cli import main

        out = tmp_path / "report.html"
        rc = main(["dashboard", "--trace", str(trace_file), "-o", str(out)])
        assert rc == 0
        assert out.exists()
        stdout = capsys.readouterr().out
        assert "dashboard written to" in stdout
        assert "monitors passing" in stdout

    def test_missing_trace_is_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["dashboard", "--trace", str(tmp_path / "nope.jsonl")])
        assert rc == 1
        err = capsys.readouterr().err
        assert "repro dashboard:" in err and "not found" in err
        assert "Traceback" not in err

    def test_empty_trace_is_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        rc = main(["dashboard", "--trace", str(path)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "empty" in err and "Traceback" not in err

    def test_future_schema_is_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(
            {"kind": "queue.update", "schema_version": SCHEMA_VERSION + 1}
        ) + "\n")
        rc = main(["dashboard", "--trace", str(path)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "schema version" in err and "Traceback" not in err

    def test_telemetry_shares_error_path(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["telemetry", str(tmp_path / "gone.jsonl")])
        assert rc == 1
        err = capsys.readouterr().err
        assert "repro telemetry:" in err and "Traceback" not in err

    def test_strict_gates_on_failing_monitor(self, tmp_path, capsys):
        from repro.cli import main
        from repro.telemetry import write_jsonl_events

        path = tmp_path / "bad.jsonl"
        write_jsonl_events(
            [{"kind": "slot.outcome", "t": 0, "cost": 10.0,
              "electricity_cost": 1.0, "delay_cost": 1.0}],
            str(path),
        )
        out = tmp_path / "bad.html"
        rc = main(["dashboard", "--trace", str(path), "-o", str(out), "--strict"])
        assert rc == 2
        assert out.exists()  # report is still written for debugging
        err = capsys.readouterr().err
        assert "FAIL slot-sanity" in err
