"""Tests for PUE, tariffs, and brown-energy accounting (Eqs. (2)-(3))."""

import pytest

from repro.cluster import LinearTariff, PowerModel, TieredTariff, brown_energy


class TestBrownEnergy:
    def test_positive_part(self):
        assert brown_energy(10.0, 3.0) == 7.0

    def test_renewables_cover_everything(self):
        """Eq. (3): no grid draw when on-site supply suffices."""
        assert brown_energy(2.0, 5.0) == 0.0

    def test_exact_balance(self):
        assert brown_energy(4.0, 4.0) == 0.0


class TestPowerModel:
    def test_default_pue_is_identity(self):
        assert PowerModel().facility_power(10.0) == 10.0

    def test_pue_multiplies(self):
        assert PowerModel(pue=1.3).facility_power(10.0) == pytest.approx(13.0)

    def test_per_call_override(self):
        assert PowerModel(pue=1.3).facility_power(10.0, pue=1.5) == pytest.approx(15.0)

    def test_pue_below_one_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(pue=0.9)
        with pytest.raises(ValueError):
            PowerModel().facility_power(1.0, pue=0.5)


class TestLinearTariff:
    def test_cost(self):
        assert LinearTariff().cost(10.0, 40.0) == 400.0

    def test_marginal_is_price(self):
        assert LinearTariff().marginal(10.0, 40.0) == 40.0

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            LinearTariff().cost(-1.0, 40.0)


class TestTieredTariff:
    def make(self):
        return TieredTariff(thresholds=(10.0, 20.0), multipliers=(1.0, 1.5, 2.0))

    def test_first_tier_matches_linear(self):
        t = self.make()
        assert t.cost(5.0, 40.0) == pytest.approx(200.0)

    def test_tier_accumulation(self):
        t = self.make()
        # 10 at 1x + 10 at 1.5x + 5 at 2x, all times price 40.
        assert t.cost(25.0, 40.0) == pytest.approx(40 * (10 + 15 + 10))

    def test_marginal_by_tier(self):
        t = self.make()
        assert t.marginal(5.0, 40.0) == 40.0
        assert t.marginal(15.0, 40.0) == 60.0
        assert t.marginal(25.0, 40.0) == 80.0

    def test_convexity_enforced(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TieredTariff(thresholds=(10.0,), multipliers=(2.0, 1.0))

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError, match="increasing"):
            TieredTariff(thresholds=(10.0, 10.0), multipliers=(1.0, 1.0, 1.0))

    def test_multiplier_count_enforced(self):
        with pytest.raises(ValueError, match="one more"):
            TieredTariff(thresholds=(10.0,), multipliers=(1.0,))

    def test_continuity_at_thresholds(self):
        t = self.make()
        eps = 1e-9
        assert t.cost(10.0 - eps, 40.0) == pytest.approx(t.cost(10.0 + eps, 40.0), abs=1e-5)

    def test_convex_by_sampling(self):
        import numpy as np

        t = self.make()
        xs = np.linspace(0, 30, 121)
        costs = np.array([t.cost(float(x), 40.0) for x in xs])
        assert np.all(np.diff(costs, 2) >= -1e-9)
