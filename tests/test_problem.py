"""Tests for the one-slot problem P3 (Eq. (16)) and its evaluation."""

import numpy as np
import pytest

from repro.cluster import FleetAction, PowerModel, SwitchingCostModel, TieredTariff
from repro.solvers import InfeasibleError, SlotProblem
from tests.conftest import make_problem


class TestValidation:
    def test_negative_inputs_rejected(self, tiny_model):
        for kw in (
            {"arrival_rate": -1.0},
            {"onsite": -1.0},
            {"price": -1.0},
            {"q": -1.0},
            {"V": 0.0},
        ):
            base = dict(arrival_rate=10.0, onsite=0.0, price=40.0)
            base.update(kw)
            with pytest.raises(ValueError):
                tiny_model.slot_problem(**base)

    def test_negative_beta_rejected(self, tiny_fleet):
        with pytest.raises(ValueError):
            SlotProblem(
                fleet=tiny_fleet, arrival_rate=1.0, onsite=0.0, price=1.0, beta=-1.0
            )

    def test_gamma_range(self, tiny_fleet):
        from repro.core import DataCenterModel

        with pytest.raises(ValueError):
            DataCenterModel(fleet=tiny_fleet, gamma=1.0).slot_problem(
                arrival_rate=1.0, onsite=0.0, price=1.0
            )

    def test_feasibility_check(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=1.1)
        with pytest.raises(InfeasibleError):
            p.check_feasible()
        make_problem(tiny_model, lam_frac=0.99).check_feasible()

    def test_prev_on_counts_shape(self, tiny_model):
        with pytest.raises(ValueError, match="per group"):
            tiny_model.slot_problem(
                arrival_rate=1.0,
                onsite=0.0,
                price=1.0,
                prev_on_counts=np.array([1.0]),
            )


class TestWeights:
    def test_electricity_weight_structure(self, tiny_model):
        """The P3 highlight: brown energy is priced at V*w + q."""
        p = tiny_model.slot_problem(arrival_rate=1.0, onsite=0.0, price=40.0, q=7.0, V=3.0)
        assert p.electricity_weight == pytest.approx(3.0 * 40.0 + 7.0)

    def test_delay_weight(self, tiny_model):
        p = make_problem(tiny_model)
        assert p.delay_weight == pytest.approx(tiny_model.beta * tiny_model.delay_unit_cost)


class TestEvaluation:
    def test_objective_decomposition(self, tiny_model):
        """objective == V * g + q * y exactly (Eq. (16))."""
        p = make_problem(tiny_model, lam_frac=0.5, price=40.0, q=5.0, V=2.0)
        levels = np.full(3, 3, dtype=np.int64)
        lam = p.arrival_rate / 30.0
        action = FleetAction(levels, np.full(3, lam))
        ev = p.evaluate(action)
        assert ev.objective == pytest.approx(2.0 * ev.cost + 5.0 * ev.brown_energy)
        assert ev.cost == pytest.approx(ev.electricity_cost + ev.delay_cost)

    def test_onsite_offsets_power(self, tiny_model):
        p_dark = make_problem(tiny_model, lam_frac=0.5, onsite=0.0)
        p_sunny = make_problem(tiny_model, lam_frac=0.5, onsite=1e9)
        levels = np.full(3, 3, dtype=np.int64)
        action = FleetAction(levels, np.full(3, p_dark.arrival_rate / 30.0))
        assert p_dark.evaluate(action).electricity_cost > 0
        assert p_sunny.evaluate(action).electricity_cost == 0.0
        assert p_sunny.evaluate(action).brown_energy == 0.0

    def test_pue_scales_facility_power(self, tiny_fleet):
        from repro.core import DataCenterModel

        m1 = DataCenterModel(fleet=tiny_fleet)
        m2 = DataCenterModel(fleet=tiny_fleet, power_model=PowerModel(pue=1.5))
        levels = np.full(3, 3, dtype=np.int64)
        action = FleetAction(levels, np.full(3, 2.0))
        e1 = m1.slot_problem(arrival_rate=60.0, onsite=0.0, price=40.0).evaluate(action)
        e2 = m2.slot_problem(arrival_rate=60.0, onsite=0.0, price=40.0).evaluate(action)
        assert e2.facility_power == pytest.approx(1.5 * e1.facility_power)

    def test_switching_energy_billed_as_power(self, tiny_fleet):
        from repro.core import DataCenterModel

        model = DataCenterModel(
            fleet=tiny_fleet,
            switching=SwitchingCostModel(energy_per_toggle=1e-3),
        )
        p = model.slot_problem(
            arrival_rate=60.0,
            onsite=0.0,
            price=40.0,
            prev_on_counts=np.zeros(3),
        )
        levels = np.full(3, 3, dtype=np.int64)
        action = FleetAction(levels, np.full(3, 2.0))
        ev = p.evaluate(action)
        assert ev.switching_energy == pytest.approx(30 * 1e-3)
        # Switching energy increases facility power and hence cost.
        assert ev.facility_power == pytest.approx(ev.it_power + 0.03)

    def test_nonlinear_tariff_used(self, tiny_fleet):
        from repro.core import DataCenterModel

        tariff = TieredTariff(thresholds=(0.01,), multipliers=(1.0, 10.0))
        model = DataCenterModel(fleet=tiny_fleet, tariff=tariff)
        p = model.slot_problem(arrival_rate=60.0, onsite=0.0, price=40.0)
        levels = np.full(3, 3, dtype=np.int64)
        action = FleetAction(levels, np.full(3, 2.0))
        ev = p.evaluate(action)
        expected = tariff.cost(ev.brown_energy, 40.0)
        assert ev.electricity_cost == pytest.approx(expected)


class TestVariants:
    def test_with_q(self, tiny_model):
        p = make_problem(tiny_model, q=0.0)
        assert p.with_q(9.0).q == 9.0

    def test_carbon_unaware(self, tiny_model):
        assert make_problem(tiny_model, q=5.0).carbon_unaware().q == 0.0

    def test_with_arrival_rate(self, tiny_model):
        assert make_problem(tiny_model).with_arrival_rate(7.0).arrival_rate == 7.0
