"""Tests for repro.profile: sampler, flame export, bench ledger, CLI.

The sampler's contract is the same as telemetry's: observe, never
participate -- a profiled run's outputs are bit-identical to an unprofiled
one.  Its mechanics are deterministic given a clock, so tests inject one.
The ledger tests drive ``repro bench --check`` through both verdicts with a
stub suite, so the pass/fail exit codes are pinned without paying for a
real benchmark run.
"""

from __future__ import annotations

import json
import sys
import textwrap

import numpy as np
import pytest

from repro.cli import main
from repro.core import COCA
from repro.profile import (
    StackSampler,
    check_rows,
    discover_benches,
    flamegraph_html,
    flatten_metrics,
    git_revision,
    load_rows,
    make_row,
    run_suite,
    write_flamegraph,
    write_folded,
)
from repro.profile.ledger import append_row
from repro.sim import simulate
from repro.telemetry import JsonlTracer, Telemetry


class _SteppingClock:
    """Advances a fixed amount per reading -- every hook event samples."""

    def __init__(self, step: float) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _busy(n: int) -> float:
    total = 0.0
    for i in range(n):
        total += _leaf(i)
    return total


def _leaf(i: int) -> float:
    return float(i) * 0.5


class TestStackSampler:
    def test_deterministic_under_injected_clock(self):
        def run():
            sampler = StackSampler(interval_ms=1.0, clock=_SteppingClock(1e-3))
            with sampler:
                _busy(50)
            return sampler.folded()

        first, second = run(), run()
        assert first == second
        assert sum(first.values()) > 0
        assert any("_leaf" in stack for stack in first)

    def test_stacks_are_root_first(self):
        sampler = StackSampler(interval_ms=1.0, clock=_SteppingClock(1e-3))
        with sampler:
            _busy(10)
        stack = next(s for s in sampler.folded() if "_leaf" in s)
        frames = stack.split(";")
        assert frames.index(f"{__name__}._busy") < frames.index(
            f"{__name__}._leaf"
        )

    def test_catchup_weights_long_calls(self):
        sampler = StackSampler(interval_ms=1.0, clock=lambda: 0.0105)
        sampler._next = 0.001  # pretend start() ran at t=0
        sampler._hook(sys._getframe(), "call", None)
        # the clock sits 9.5 periods past the deadline -> one stack with
        # weight 10, and the deadline advances past the clock
        assert sampler.total_samples == 10
        assert sampler._next == pytest.approx(0.011)

    def test_span_path_prefixes_samples(self):
        tele = Telemetry.recording()
        sampler = StackSampler(
            interval_ms=1.0, clock=lambda: 1.0, telemetry=tele
        )
        sampler._next = 0.5
        with tele.span("slot"):
            with tele.span("gsd.solve"):
                sampler._hook(sys._getframe(), "call", None)
        stack = next(iter(sampler._samples))
        assert stack[0] == "span:slot" and stack[1] == "span:gsd.solve"

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StackSampler(interval_ms=0)
        with pytest.raises(ValueError):
            StackSampler(max_depth=0)
        sampler = StackSampler()
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()

    def test_profiled_run_bit_identical(self, week_scenario):
        def run(profiled: bool):
            controller = COCA(
                week_scenario.model,
                week_scenario.environment.portfolio,
                v_schedule=120.0,
            )
            if profiled:
                with StackSampler(interval_ms=1.0):
                    return simulate(
                        week_scenario.model,
                        controller,
                        week_scenario.environment,
                    )
            return simulate(
                week_scenario.model, controller, week_scenario.environment
            )

        plain, profiled = run(False), run(True)
        for field in ("cost", "brown_energy", "active_servers", "queue"):
            np.testing.assert_array_equal(
                getattr(plain, field), getattr(profiled, field)
            )


class TestFlame:
    FOLDED = {"a;b;c": 3, "a;b": 1, "x": 2}

    def test_write_folded_heaviest_first(self, tmp_path):
        path = tmp_path / "p.folded"
        write_folded(self.FOLDED, str(path))
        assert path.read_text() == "a;b;c 3\nx 2\na;b 1\n"

    def test_html_is_self_contained(self, tmp_path):
        html = flamegraph_html(self.FOLDED, title="t<est>")
        assert html.startswith("<!DOCTYPE html>")
        assert "t&lt;est&gt;" in html
        assert "src=" not in html and "http" not in html  # no external assets
        assert html.count('class="f"') >= 4  # a, b, c, x cells
        path = tmp_path / "p.html"
        write_flamegraph(self.FOLDED, str(path))
        assert path.read_text() == flamegraph_html(self.FOLDED)

    def test_empty_profile_renders_placeholder(self):
        assert "no samples collected" in flamegraph_html({})


def _write_stub_suite(bench_dir, *, inner_solves=100, exit_code=0):
    """A stub bench_solver_fastpath.py following the standalone-CLI
    convention (and reusing that suite's gated-counter config)."""
    bench_dir.mkdir(exist_ok=True)
    (bench_dir / "bench_solver_fastpath.py").write_text(
        textwrap.dedent(
            f"""
            import argparse, json

            def main(argv=None):
                p = argparse.ArgumentParser()
                p.add_argument("--quick", action="store_true")
                p.add_argument("--check", default=None)
                p.add_argument("-o", "--output", required=True)
                args = p.parse_args(argv)
                report = {{
                    "suites": {{"gsd": {{"inner_solves": {inner_solves}}}}},
                    "quick": args.quick,
                }}
                with open(args.output, "w") as fh:
                    json.dump(report, fh)
                return {exit_code}
            """
        )
    )


class TestLedger:
    def test_discovers_real_benchmarks(self):
        suites = discover_benches("benchmarks")
        assert suites["solver_fastpath"].runnable
        assert suites["span_overhead"].runnable
        assert not suites["fig4_gsd"].runnable

    def test_flatten_metrics(self):
        flat = flatten_metrics(
            {"a": 1, "b": {"c": 2.5, "ok": True}, "d": [3, "skip"], "e": "no"}
        )
        assert flat == {"a": 1.0, "b.c": 2.5, "b.ok": 1.0, "d.0": 3.0}

    def test_run_suite_and_row_round_trip(self, tmp_path):
        _write_stub_suite(tmp_path / "benches")
        suites = discover_benches(str(tmp_path / "benches"))
        result = run_suite(
            suites["solver_fastpath"], out_dir=str(tmp_path / "out")
        )
        assert result.exit_code == 0
        assert result.report["quick"] is True  # default args were applied
        row = make_row(result, git_rev="abc1234", timestamp="2026-01-01T00:00:00Z")
        assert row["metrics"]["suites.gsd.inner_solves"] == 100.0
        ledger = tmp_path / "trend.jsonl"
        append_row(str(ledger), row)
        append_row(str(ledger), row)
        assert load_rows(str(ledger)) == [row, row]

    def test_check_rows_verdicts(self):
        def row(inner, *, exit_code=0):
            return {
                "suite": "solver_fastpath",
                "exit_code": exit_code,
                "git_rev": "aaa",
                "timestamp": "t",
                "wall_s": 1.0,
                "metrics": {"suites.gsd.inner_solves": float(inner)},
            }

        # no prior row: seeds the trend, passes
        ok, messages = check_rows([], [row(100)])
        assert ok and any("seeding" in m for m in messages)
        # within tolerance: passes
        ok, _ = check_rows([row(100)], [row(115)])
        assert ok
        # beyond tolerance: fails and names the counter
        ok, messages = check_rows([row(100)], [row(130)])
        assert not ok
        assert any("inner_solves" in m and "regressed" in m for m in messages)
        # the suite's own contract failed: always fails
        ok, messages = check_rows([row(100)], [row(100, exit_code=1)])
        assert not ok and any("exited 1" in m for m in messages)

    def test_git_revision_is_short_string(self):
        rev = git_revision()
        assert isinstance(rev, str) and rev
        assert git_revision("/nonexistent-dir") == "unknown"


class TestBenchCLI:
    def _bench(self, tmp_path, *extra):
        return main(
            [
                "bench",
                "--bench-dir", str(tmp_path / "benches"),
                "--ledger", str(tmp_path / "trend.jsonl"),
                "--out-dir", str(tmp_path / "out"),
                *extra,
            ]
        )

    def test_check_pass_then_fail_on_regression(self, tmp_path, capsys):
        benches = tmp_path / "benches"
        _write_stub_suite(benches, inner_solves=100)
        assert self._bench(tmp_path, "--check") == 0
        assert "seeding trend" in capsys.readouterr().out
        # same counters again: passes against the seeded row
        assert self._bench(tmp_path, "--check") == 0
        assert "check passed" in capsys.readouterr().out
        # the counter regresses past 20%: exit 1
        _write_stub_suite(benches, inner_solves=200)
        assert self._bench(tmp_path, "--check") == 1
        assert "REGRESSION" in capsys.readouterr().err
        assert len(load_rows(str(tmp_path / "trend.jsonl"))) == 3

    def test_failing_suite_fails_without_check(self, tmp_path, capsys):
        _write_stub_suite(tmp_path / "benches", exit_code=1)
        assert self._bench(tmp_path) == 1
        assert "exit 1" in capsys.readouterr().out

    def test_no_append_leaves_ledger_alone(self, tmp_path, capsys):
        _write_stub_suite(tmp_path / "benches")
        assert self._bench(tmp_path, "--no-append") == 0
        assert load_rows(str(tmp_path / "trend.jsonl")) == []

    def test_unknown_suite_rejected(self, tmp_path, capsys):
        _write_stub_suite(tmp_path / "benches")
        assert self._bench(tmp_path, "nope") == 1
        assert "not a runnable suite" in capsys.readouterr().err

    def test_list_shows_runnable_state(self, tmp_path, capsys):
        _write_stub_suite(tmp_path / "benches")
        assert self._bench(tmp_path, "--list") == 0
        assert "solver_fastpath" in capsys.readouterr().out


class TestProfileCLI:
    def test_profile_writes_folded_and_flame(self, tmp_path, capsys):
        rc = main(
            [
                "profile",
                "--horizon", "24",
                "--interval-ms", "0.5",
                "--out-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        folded = (tmp_path / "profile.folded").read_text()
        assert folded.strip(), "short run must still collect samples"
        # span prefixes tie the flamegraph to the span tree
        assert "span:slot" in folded
        html = (tmp_path / "profile.html").read_text()
        assert html.startswith("<!DOCTYPE html>") and 'class="f"' in html
        assert "samples over" in out and "top" in out

    def test_telemetry_spans_flag(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        tracer = JsonlTracer(str(trace))
        tele = Telemetry(tracer=tracer)
        with tele.span("slot"):
            with tele.span("gsd.solve"):
                pass
        tracer.close()
        assert main(["telemetry", str(trace), "--spans"]) == 0
        out = capsys.readouterr().out
        assert "span hotspots" in out and "gsd.solve" in out
