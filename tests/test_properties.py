"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cluster import FleetAction, MG1PSDelay, SquaredLoadDelay
from repro.core import CarbonDeficitQueue
from repro.solvers import distribute_load
from repro.traces import Trace
from tests.conftest import make_problem

finite_floats = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestTraceProperties:
    @given(
        arrays(np.float64, st.integers(1, 200), elements=st.floats(0.01, 1e6)),
        st.floats(0.5, 1e3),
    )
    def test_scale_to_peak_then_peak(self, values, peak):
        trace = Trace(values).scale_to_peak(peak)
        assert trace.peak == pytest.approx(peak, rel=1e-9)

    @given(arrays(np.float64, st.integers(1, 200), elements=st.floats(0.01, 1e6)))
    def test_normalization_idempotent(self, values):
        a = Trace(values).normalized()
        b = a.normalized()
        np.testing.assert_allclose(a.values, b.values, rtol=1e-12)

    @given(
        arrays(np.float64, st.integers(2, 100), elements=st.floats(0.0, 1e3)),
        st.integers(1, 120),
    )
    def test_moving_average_bounded_by_extremes(self, values, window):
        trace = Trace(values)
        ma = trace.moving_average(window)
        assert np.all(ma >= values.min() - 1e-9)
        assert np.all(ma <= values.max() + 1e-9)

    @given(
        arrays(np.float64, st.integers(1, 50), elements=st.floats(0.0, 1e3)),
        st.integers(1, 400),
    )
    def test_repeat_to_preserves_values(self, values, horizon):
        trace = Trace(values).repeat_to(horizon)
        assert len(trace) == horizon
        for t in range(min(horizon, 25)):
            assert trace[t] == values[t % values.size]

    @given(arrays(np.float64, st.integers(1, 100), elements=st.floats(0.0, 1e3)))
    def test_running_average_last_is_mean(self, values):
        trace = Trace(values)
        assert trace.running_average()[-1] == pytest.approx(trace.mean, rel=1e-9, abs=1e-12)


class TestQueueProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0.0, 1e3), st.floats(0.0, 1e3)),
            min_size=1,
            max_size=60,
        ),
        st.floats(0.0, 10.0),
    )
    def test_queue_nonnegative_and_lipschitz(self, slots, z):
        """q(t) >= 0 always, and |q(t+1) - q(t)| <= max(y, alpha f + z)."""
        q = CarbonDeficitQueue(alpha=1.0, rec_per_slot=z)
        prev = 0.0
        for brown, offsite in slots:
            new = q.update(brown, offsite)
            assert new >= 0.0
            assert abs(new - prev) <= max(brown, offsite + z) + 1e-9
            prev = new

    @given(
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=60),
        st.floats(0.1, 10.0),
    )
    def test_queue_bounds_total_violation(self, browns, z):
        """The queue dominates the running constraint violation:
        q(T) >= sum(y) - sum(z) (the basis of Theorem 2(a))."""
        q = CarbonDeficitQueue(rec_per_slot=z)
        for y in browns:
            q.update(y, 0.0)
        violation = sum(browns) - z * len(browns)
        assert q.length >= violation - 1e-9


class TestDelayModelProperties:
    @given(st.floats(0.0, 9.99), st.floats(0.01, 1e4))
    def test_mg1ps_inverse_roundtrip(self, load, speed):
        assume(load < speed)
        m = MG1PSDelay()
        grad = m.marginal(load, speed)
        assume(np.isfinite(grad))
        back = m.load_at_marginal(grad, speed)
        assert back == pytest.approx(load, rel=1e-6, abs=1e-9)

    @given(
        st.floats(0.0, 5.0),
        st.floats(0.0, 5.0),
        st.floats(6.0, 50.0),
    )
    def test_convexity_midpoint(self, a, b, speed):
        for model in (MG1PSDelay(), SquaredLoadDelay()):
            mid = model.cost(0.5 * (a + b), speed)
            avg = 0.5 * (model.cost(a, speed) + model.cost(b, speed))
            assert mid <= avg + 1e-9


class TestLoadDistributionProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(0.0, 0.94),
        st.floats(0.0, 0.01),
        st.floats(1.0, 100.0),
        st.floats(0.0, 500.0),
    )
    def test_invariants_hold(self, lam_frac, onsite, price, q):
        from repro.cluster import Fleet, ServerGroup, opteron_2380
        from repro.core import DataCenterModel

        fleet = Fleet([ServerGroup(opteron_2380(), 10) for _ in range(3)])
        model = DataCenterModel(fleet=fleet, beta=10.0)
        p = make_problem(model, lam_frac=lam_frac, onsite=onsite, price=price, q=q)
        levels = np.full(3, 3, dtype=np.int64)
        dist = distribute_load(p, levels)
        loads = dist.per_server_load
        # Balance
        served = float(np.sum(fleet.counts * loads))
        assert served == pytest.approx(p.arrival_rate, rel=1e-6, abs=1e-6)
        # Box constraints
        assert np.all(loads >= -1e-12)
        assert np.all(loads <= p.gamma * 10.0 + 1e-9)
        # Objective finite and action valid
        action = FleetAction(levels, loads)
        assert np.isfinite(p.objective(action))

    @settings(max_examples=15, deadline=None)
    @given(st.floats(0.05, 0.9), st.floats(1.0, 100.0))
    def test_onsite_never_hurts(self, lam_frac, price):
        """More on-site renewable supply can only (weakly) reduce the
        optimal objective."""
        from repro.solvers import HomogeneousEnumerationSolver
        from repro.cluster import Fleet, ServerGroup, opteron_2380
        from repro.core import DataCenterModel

        fleet = Fleet([ServerGroup(opteron_2380(), 10) for _ in range(3)])
        model = DataCenterModel(fleet=fleet, beta=10.0)
        solver = HomogeneousEnumerationSolver()
        dark = solver.solve(make_problem(model, lam_frac=lam_frac, price=price, onsite=0.0))
        sunny = solver.solve(
            make_problem(model, lam_frac=lam_frac, price=price, onsite=0.003)
        )
        assert sunny.objective <= dark.objective + 1e-12


class TestEnumerationProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.floats(0.01, 0.9),
        st.floats(0.0, 0.01),
        st.floats(1.0, 100.0),
        st.floats(0.0, 1000.0),
    )
    def test_objective_monotone_in_q_weight(self, lam_frac, onsite, price, q):
        """The optimal *brown energy* is nonincreasing in q (the economics
        behind both the deficit queue and the OPT dual)."""
        from repro.solvers import HomogeneousEnumerationSolver
        from repro.cluster import Fleet, ServerGroup, opteron_2380
        from repro.core import DataCenterModel

        fleet = Fleet([ServerGroup(opteron_2380(), 10) for _ in range(3)])
        model = DataCenterModel(fleet=fleet, beta=10.0)
        solver = HomogeneousEnumerationSolver()
        lo = solver.solve(
            make_problem(model, lam_frac=lam_frac, onsite=onsite, price=price, q=q)
        )
        hi = solver.solve(
            make_problem(model, lam_frac=lam_frac, onsite=onsite, price=price, q=q + 100.0)
        )
        assert hi.evaluation.brown_energy <= lo.evaluation.brown_energy + 1e-12
        # And g itself is nondecreasing in q (cost of being greener).
        assert hi.cost >= lo.cost - 1e-12
