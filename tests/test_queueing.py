"""Tests for delay-cost models (Eq. (4) and the pluggable interface)."""

import numpy as np
import pytest

from repro.cluster import MG1PSDelay, SquaredLoadDelay


class TestMG1PS:
    def test_cost_formula(self):
        m = MG1PSDelay()
        assert m.cost(4.0, 10.0) == pytest.approx(4.0 / 6.0)

    def test_zero_load_zero_cost(self):
        assert MG1PSDelay().cost(0.0, 10.0) == 0.0

    def test_saturation_infinite(self):
        m = MG1PSDelay()
        assert m.cost(10.0, 10.0) == np.inf
        assert m.cost(11.0, 10.0) == np.inf

    def test_increasing_in_load(self):
        m = MG1PSDelay()
        loads = np.linspace(0, 9, 50)
        costs = m.cost(loads, 10.0)
        assert np.all(np.diff(costs) > 0)

    def test_decreasing_in_speed(self):
        m = MG1PSDelay()
        assert m.cost(4.0, 12.0) < m.cost(4.0, 10.0)

    def test_convex_in_load(self):
        m = MG1PSDelay()
        loads = np.linspace(0, 9.5, 100)
        costs = m.cost(loads, 10.0)
        assert np.all(np.diff(costs, 2) > -1e-12)

    def test_marginal_is_derivative(self):
        m = MG1PSDelay()
        eps = 1e-6
        numeric = (m.cost(4.0 + eps, 10.0) - m.cost(4.0 - eps, 10.0)) / (2 * eps)
        assert m.marginal(4.0, 10.0) == pytest.approx(numeric, rel=1e-6)

    def test_inverse_of_marginal(self):
        m = MG1PSDelay()
        for lam in [0.5, 3.0, 8.0]:
            grad = m.marginal(lam, 10.0)
            assert m.load_at_marginal(grad, 10.0) == pytest.approx(lam, rel=1e-9)

    def test_inverse_clipped_to_range(self):
        m = MG1PSDelay()
        # Marginal below the at-zero value maps to load 0.
        assert m.load_at_marginal(1e-9, 10.0) == 0.0

    def test_mean_response_time(self):
        m = MG1PSDelay()
        assert m.mean_response_time(4.0, 10.0) == pytest.approx(1.0 / 6.0)
        assert m.mean_response_time(10.0, 10.0) == np.inf

    def test_vectorized(self):
        m = MG1PSDelay()
        out = m.cost(np.array([1.0, 2.0]), np.array([10.0, 10.0]))
        assert out.shape == (2,)


class TestSquaredLoad:
    def test_cost_and_marginal_consistent(self):
        m = SquaredLoadDelay()
        eps = 1e-6
        numeric = (m.cost(4.0 + eps, 10.0) - m.cost(4.0 - eps, 10.0)) / (2 * eps)
        assert m.marginal(4.0, 10.0) == pytest.approx(numeric, rel=1e-6)

    def test_inverse_of_marginal(self):
        m = SquaredLoadDelay()
        grad = m.marginal(3.0, 10.0)
        assert m.load_at_marginal(grad, 10.0) == pytest.approx(3.0)

    def test_finite_at_saturation(self):
        assert np.isfinite(SquaredLoadDelay().cost(10.0, 10.0))

    def test_zero_load_zero_cost(self):
        assert SquaredLoadDelay().cost(0.0, 10.0) == 0.0
