"""Tests for dynamic REC purchasing (section 2.2 extension)."""

import numpy as np
import pytest

from repro.energy.rec_market import (
    PurchasingReport,
    ThresholdRECTrader,
    evaluate_purchasing,
    rec_price_trace,
)


class TestRECPriceTrace:
    def test_positive_and_reproducible(self):
        a = rec_price_trace(500, seed=1)
        b = rec_price_trace(500, seed=1)
        np.testing.assert_array_equal(a.values, b.values)
        assert a.values.min() >= 0.25

    def test_mean_in_band(self):
        trace = rec_price_trace(8760, mean_price=4.0)
        assert 2.0 < trace.mean < 8.0

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            rec_price_trace(0)


class TestThresholdTrader:
    def test_full_coverage_guaranteed(self):
        rng = np.random.default_rng(3)
        brown = rng.uniform(0, 10, 600)
        prices = rec_price_trace(600, seed=5)
        trader = ThresholdRECTrader()
        trader.run(brown, prices.values)
        assert trader.holdings >= brown.sum() - 1e-9

    def test_buys_below_average(self):
        """The threshold rule should pay no more than the period-average
        price (that is its whole point)."""
        rng = np.random.default_rng(4)
        brown = rng.uniform(1, 5, 2000)
        prices = rec_price_trace(2000, seed=6)
        trader = ThresholdRECTrader(percentile=30.0)
        trader.run(brown, prices.values)
        assert trader.average_price_paid() <= prices.mean * 1.02

    def test_stockpiles_with_large_multiple(self):
        rng = np.random.default_rng(5)
        brown = rng.uniform(1, 2, 500)
        prices = rec_price_trace(500, seed=7)
        small = ThresholdRECTrader(buy_multiple=1.0)
        big = ThresholdRECTrader(buy_multiple=3.0)
        small.run(brown, prices.values)
        big.run(brown, prices.values)
        assert big.holdings >= small.holdings

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdRECTrader(percentile=0.0)
        with pytest.raises(ValueError):
            ThresholdRECTrader(window=0)
        with pytest.raises(ValueError):
            ThresholdRECTrader(buy_multiple=0.0)
        with pytest.raises(ValueError):
            ThresholdRECTrader().run(np.ones(3), np.ones(4))

    def test_zero_brown_buys_nothing(self):
        trader = ThresholdRECTrader()
        trader.run(np.zeros(100), rec_price_trace(100).values)
        assert trader.spent == 0.0


class TestEvaluatePurchasing:
    def test_report_consistency(self):
        rng = np.random.default_rng(8)
        brown = rng.uniform(0, 8, 1500)
        prices = rec_price_trace(1500, seed=9)
        report = evaluate_purchasing(brown, prices)
        assert isinstance(report, PurchasingReport)
        assert report.total_brown == pytest.approx(brown.sum())
        assert report.prepurchase_cost == pytest.approx(brown.sum() * prices.mean)
        # Dynamic should not pay more than prepurchase by much.
        assert report.saving_vs_prepurchase > -0.05

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_purchasing(np.ones(3), rec_price_trace(5))
