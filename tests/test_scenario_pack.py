"""The named advice scenario pack and its CLI (``repro scenarios``).

Each scenario is a reproducible storyline with a pinned verdict:
``advice-good`` stays trusted, ``advice-adversarial`` falls back,
``advice-degrading`` falls back and recovers -- and on all three the
certified bound (advised cost ≤ (1+λ)× plain COCA) holds, with the
default monitor suite (including ``advice-trust``) passing on the
advised run's live stream.
"""

from __future__ import annotations

import json

import pytest

from repro.advice import SCENARIOS, list_scenarios, run_scenario
from repro.advice.pack import PACK_HORIZON, neutral_v
from repro.cli import main
from repro.scenarios import small_scenario

HORIZON = 24 * 5


@pytest.fixture(scope="module")
def pack_scenario():
    return small_scenario(horizon=HORIZON)


@pytest.fixture(scope="module")
def pack_v(pack_scenario):
    return neutral_v(pack_scenario)


@pytest.fixture(scope="module")
def results(pack_scenario, pack_v):
    """All three scenarios, run once on a shared calibrated V."""
    return {
        name: run_scenario(name, scenario=pack_scenario, v=pack_v)
        for name in SCENARIOS
    }


class TestScenarioPack:
    def test_registry(self):
        names = [name for name, _ in list_scenarios()]
        assert names == [
            "advice-good", "advice-degrading", "advice-adversarial"
        ]
        assert all(desc for _, desc in list_scenarios())

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_scenario("advice-nope")

    def test_horizon_must_fit_frames(self):
        with pytest.raises(ValueError, match="multiple"):
            run_scenario("advice-good", scenario=small_scenario(horizon=30))

    def test_default_horizon_is_a_week(self):
        assert PACK_HORIZON == 24 * 7

    def test_bound_holds_on_every_scenario(self, results):
        for name, result in results.items():
            assert result.bound_holds, (
                f"{name}: ratio {result.cost_ratio:.4f} > {result.bound}"
            )

    def test_good_scenario_stays_trusted(self, results):
        guard = results["advice-good"].guard
        assert guard["trusted"]
        assert guard["transitions"] == []
        assert guard["advised_slots"] == HORIZON

    def test_adversarial_scenario_falls_back(self, results):
        guard = results["advice-adversarial"].guard
        assert not guard["trusted"]
        assert len(guard["transitions"]) == 1
        assert guard["fallback_slots"] > guard["advised_slots"]
        # The committed run must not have silently been plain COCA: frame 0
        # ran on clean forecasts, so some slots were genuinely advised.
        assert guard["advised_slots"] > 0
        assert not results["advice-adversarial"].bit_identical

    def test_degrading_scenario_falls_back(self, results):
        guard = results["advice-degrading"].guard
        transitions = guard["transitions"]
        assert len(transitions) >= 1
        assert transitions[0][1] is False

    def test_degrading_scenario_recovers_over_a_week(self, week_scenario):
        # Recovery needs clean slots after the drift window ends, which the
        # pack's default week horizon provides (the 120-slot fixture does
        # not -- its faults stretch to t=105).
        result = run_scenario("advice-degrading", scenario=week_scenario)
        states = [up for _, up in result.guard["transitions"]]
        assert states[:2] == [False, True]
        assert result.bound_holds

    def test_monitor_suite_passes_adversarial(self, pack_scenario, pack_v):
        from repro.monitor import default_suite, monitored_telemetry

        telemetry, suite = monitored_telemetry(default_suite())
        run_scenario(
            "advice-adversarial",
            scenario=pack_scenario,
            v=pack_v,
            telemetry=telemetry,
        )
        suite.finalize()
        failed = [r.monitor for r in suite.reports() if not r.passed]
        assert failed == []


class TestScenariosCli:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_run_strict_json(self, capsys):
        code = main(
            ["scenarios", "run", "advice-adversarial",
             "--horizon", "48", "--strict", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "advice-adversarial"
        assert payload["bound_holds"] is True
        assert payload["monitors"]["failed"] == []

    def test_run_unknown_name_exits_bad_input(self, capsys):
        assert main(["scenarios", "run", "advice-nope"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_bad_horizon_exits_bad_input(self, capsys):
        assert main(["scenarios", "run", "advice-good", "--horizon", "30"]) == 1

    def test_run_writes_trace(self, tmp_path, capsys):
        trace = tmp_path / "advice.jsonl"
        code = main(
            ["scenarios", "run", "advice-good",
             "--horizon", "48", "--trace-out", str(trace)]
        )
        assert code == 0
        kinds = {json.loads(line)["kind"] for line in trace.read_text().splitlines()}
        assert "advice.decision" in kinds and "advice.frame" in kinds
