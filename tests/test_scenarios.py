"""Tests for the prebuilt paper scenarios."""

import numpy as np
import pytest

from repro.scenarios import paper_scenario, small_scenario


class TestSmallScenario:
    def test_structure(self, fortnight_scenario):
        sc = fortnight_scenario
        assert sc.horizon == 24 * 14
        assert sc.model.fleet.num_groups == 8
        assert sc.environment.portfolio.horizon == sc.horizon

    def test_budget_is_92_percent_of_unaware(self, fortnight_scenario):
        sc = fortnight_scenario
        assert sc.budget == pytest.approx(0.92 * sc.unaware_brown)
        assert sc.budget_fraction == pytest.approx(0.92)

    def test_workload_peak_is_half_capacity(self, fortnight_scenario):
        sc = fortnight_scenario
        assert sc.environment.actual_workload.peak == pytest.approx(
            0.5 * sc.model.fleet.max_capacity
        )

    def test_offsite_rec_split(self, fortnight_scenario):
        """Default budget: 40% off-site renewables, 60% RECs."""
        pf = fortnight_scenario.environment.portfolio
        assert pf.offsite_fraction == pytest.approx(0.40)
        assert pf.carbon_budget == pytest.approx(
            fortnight_scenario.budget / fortnight_scenario.alpha
        )

    def test_onsite_share(self, fortnight_scenario):
        """On-site renewables ~20% of the unaware facility energy."""
        sc = fortnight_scenario
        onsite = sc.environment.portfolio.onsite.total
        # unaware brown + onsite used >= unaware facility energy; the 20%
        # scaling is relative to total facility energy of the no-renewable
        # unaware run, so just sanity-check the ballpark.
        assert 0.05 * sc.unaware_brown < onsite < 0.6 * sc.unaware_brown

    def test_reproducible(self):
        a = small_scenario(horizon=24 * 3)
        b = small_scenario(horizon=24 * 3)
        np.testing.assert_array_equal(
            a.environment.actual_workload.values, b.environment.actual_workload.values
        )
        assert a.unaware_brown == b.unaware_brown


class TestScenarioTransforms:
    def test_with_budget_fraction(self, fortnight_scenario):
        sc = fortnight_scenario.with_budget_fraction(0.85)
        assert sc.budget == pytest.approx(0.85 * sc.unaware_brown)
        assert sc.environment.portfolio.carbon_budget == pytest.approx(
            sc.budget / sc.alpha
        )
        # Original untouched.
        assert fortnight_scenario.budget_fraction == pytest.approx(0.92)

    def test_with_budget_fraction_keeps_split(self, fortnight_scenario):
        sc = fortnight_scenario.with_budget_fraction(0.85)
        assert sc.environment.portfolio.offsite_fraction == pytest.approx(0.40)

    def test_with_budget_fraction_override_split(self, fortnight_scenario):
        sc = fortnight_scenario.with_budget_fraction(0.92, offsite_fraction=0.7)
        assert sc.environment.portfolio.offsite_fraction == pytest.approx(0.7)

    def test_with_switching(self, fortnight_scenario):
        sc = fortnight_scenario.with_switching(0.10)
        assert sc.model.switching is not None
        assert sc.model.switching.energy_per_toggle == pytest.approx(2.31e-5)

    def test_invalid_fraction(self, fortnight_scenario):
        with pytest.raises(ValueError):
            fortnight_scenario.with_budget_fraction(0.0)


class TestPaperScenario:
    def test_msr_variant(self):
        sc = paper_scenario(
            horizon=24 * 7, workload="msr", num_groups=4, servers_per_group=20
        )
        assert sc.environment.actual_workload.name == "msr-workload"

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            paper_scenario(horizon=24, workload="nope")

    @pytest.mark.slow
    def test_paper_scale_defaults(self):
        sc = paper_scenario(horizon=24 * 7)
        assert sc.model.fleet.num_servers == 216_000
        assert sc.model.beta == 10.0
