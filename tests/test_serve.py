"""Tests for the serving subsystem (``repro.serve``).

The load-bearing contract is stated in ``docs/SERVING.md``: a replay serve
is **bit-identical** to the batch run, whether it runs uninterrupted or is
stopped at an arbitrary slot boundary and resumed -- both through the
in-process service API and through the ``repro serve`` CLI.  The rest of
this file covers the pieces individually: signal sources, the live
environment, the frame journal, config validation, the status endpoint.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.cli import EXIT_BAD_INPUT, MANIFEST_NAME, main
from repro.core.coca import COCA
from repro.scenarios import small_scenario
from repro.serve import (
    JOURNAL_NAME,
    ControlService,
    FileTailSignalSource,
    FrameJournal,
    LiveEnvironment,
    ReplaySignalSource,
    ServeConfig,
    SignalFrame,
    StalenessResolver,
    StatusBoard,
    StatusServer,
    SyntheticSignalSource,
    frames_from_environment,
    write_feed,
)
from repro.sim import simulate
from repro.sim.engine import SlotRunner
from repro.state import (
    CheckpointWriter,
    environment_fingerprint,
    latest_valid_checkpoint,
    record_mismatches,
)

V = 150.0


@pytest.fixture(scope="module")
def scenario():
    """Two-day small scenario -- fast enough to simulate many times."""
    return small_scenario(horizon=48, seed=5)


def _controller(scenario):
    return COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=V,
        alpha=scenario.alpha,
    )


def _batch_record(scenario):
    return simulate(scenario.model, _controller(scenario), scenario.environment)


def _replay_service(scenario, *, checkpoint_dir=None, max_slots=None):
    environment = LiveEnvironment(scenario.horizon, base=scenario.environment)
    writer = (
        CheckpointWriter(str(checkpoint_dir), every=1) if checkpoint_dir else None
    )
    runner = SlotRunner(
        scenario.model, _controller(scenario), environment, checkpoint=writer
    )
    resolver = StalenessResolver(ReplaySignalSource(scenario.environment))
    runner.start()
    journal = (
        FrameJournal(str(checkpoint_dir / JOURNAL_NAME)) if checkpoint_dir else None
    )
    return ControlService(runner, resolver, journal=journal, max_slots=max_slots)


# ---------------------------------------------------------------- frames
class TestSignalFrame:
    def test_round_trips_through_dict(self):
        frame = SignalFrame(
            slot=3, arrival=1.5, onsite=0.2, price=40.0,
            arrival_actual=1.6, offsite=0.1,
        )
        assert SignalFrame.from_dict(frame.to_dict()) == frame

    def test_to_dict_drops_missing_fields(self):
        frame = SignalFrame(slot=0, arrival=1.0)
        d = frame.to_dict()
        assert "price" not in d and "onsite" not in d
        assert SignalFrame.from_dict(d).missing_fields == (
            "onsite", "price", "arrival_actual", "offsite",
        )

    def test_from_dict_ignores_unknown_keys(self):
        frame = SignalFrame.from_dict({"slot": 1, "price": 2.0, "exchange": "PJM"})
        assert frame.slot == 1 and frame.price == 2.0

    def test_complete_frame_has_no_missing_fields(self, scenario):
        frame = next(frames_from_environment(scenario.environment))
        assert frame.missing_fields == ()


# ---------------------------------------------------------------- sources
class TestReplaySource:
    def test_delivers_every_slot_in_order(self, scenario):
        source = ReplaySignalSource(scenario.environment)
        slots = []
        while (frame := source.poll()) is not None:
            assert frame.missing_fields == ()
            slots.append(frame.slot)
        assert slots == list(range(scenario.horizon))
        assert source.horizon == scenario.horizon

    def test_seek_repositions(self, scenario):
        source = ReplaySignalSource(scenario.environment)
        source.seek(10)
        assert source.poll().slot == 10
        with pytest.raises(ValueError):
            source.seek(scenario.horizon + 1)


class TestFileTailSource:
    def test_reads_back_a_written_feed(self, scenario, tmp_path):
        path = tmp_path / "feed.jsonl"
        n = write_feed(scenario.environment, path)
        assert n == scenario.horizon
        source = FileTailSignalSource(path)
        frames = []
        while (frame := source.poll()) is not None:
            frames.append(frame)
        assert [f.slot for f in frames] == list(range(scenario.horizon))
        assert frames == list(frames_from_environment(scenario.environment))
        source.close()

    def test_torn_tail_is_buffered_until_complete(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('{"slot": 0, "price": 1.0}\n{"slot": 1, "pri')
        source = FileTailSignalSource(path)
        assert source.poll().slot == 0
        assert source.poll() is None  # torn line: not parsed, not lost
        with path.open("a") as fh:
            fh.write('ce": 2.0}\n')
        frame = source.poll()
        assert frame.slot == 1 and frame.price == 2.0
        source.close()

    def test_malformed_complete_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('not json\n{"slot": 0}\n{"noslot": 1}\n')
        source = FileTailSignalSource(path)
        assert source.poll().slot == 0
        assert source.poll() is None
        assert source.malformed == 2 and source.delivered == 1
        source.close()

    def test_seek_skips_earlier_slots(self, scenario, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_feed(scenario.environment, path)
        source = FileTailSignalSource(path)
        for _ in range(5):
            source.poll()
        source.seek(2)
        assert source.poll().slot == 2
        source.close()


class TestSyntheticSource:
    def test_same_seed_same_delivery(self, scenario):
        a = SyntheticSignalSource(scenario.environment, seed=9)
        b = SyntheticSignalSource(scenario.environment, seed=9)
        seq_a = [a.poll() for _ in range(2 * scenario.horizon)]
        seq_b = [b.poll() for _ in range(2 * scenario.horizon)]
        assert seq_a == seq_b

    def test_perfect_probabilities_reduce_to_replay(self, scenario):
        source = SyntheticSignalSource(
            scenario.environment, seed=9,
            p_drop=0.0, p_late=0.0, p_field_loss=0.0, p_swap=0.0,
        )
        frames = [source.poll() for _ in range(scenario.horizon)]
        assert frames == list(frames_from_environment(scenario.environment))
        assert source.dropped == 0

    def test_drops_never_deliver(self, scenario):
        source = SyntheticSignalSource(
            scenario.environment, seed=9, p_drop=1.0,
            p_late=0.0, p_field_loss=0.0, p_swap=0.0,
        )
        assert source.poll() is None
        assert source.dropped == scenario.horizon

    def test_rejects_bad_probability(self, scenario):
        with pytest.raises(ValueError, match="p_drop"):
            SyntheticSignalSource(scenario.environment, seed=1, p_drop=1.5)


# ---------------------------------------------------------------- live env
class TestLiveEnvironment:
    def test_append_must_be_contiguous_and_resolved(self, scenario):
        env = LiveEnvironment(4)
        frames = list(frames_from_environment(scenario.environment))
        with pytest.raises(ValueError, match="out of order"):
            env.append(frames[1])
        env.append(frames[0])
        with pytest.raises(ValueError, match="unresolved"):
            env.append(SignalFrame(slot=1, price=1.0))

    def test_reads_past_resolved_prefix_raise(self, scenario):
        env = LiveEnvironment(scenario.horizon, base=scenario.environment)
        with pytest.raises(IndexError):
            env.observation(0)
        env.append(next(frames_from_environment(scenario.environment)))
        obs = env.observation(0)
        batch_obs = scenario.environment.observation(0)
        assert obs == batch_obs  # bit-identical floats, not approximately

    def test_base_fingerprint_matches_batch_environment(self, scenario):
        env = LiveEnvironment(scenario.horizon, base=scenario.environment)
        assert environment_fingerprint(env) == environment_fingerprint(
            scenario.environment
        )

    def test_live_fingerprint_is_prefix_function(self, scenario):
        frames = list(frames_from_environment(scenario.environment))
        a = LiveEnvironment(scenario.horizon)
        b = LiveEnvironment(scenario.horizon)
        for f in frames[:5]:
            a.append(f)
            b.append(f)
        assert a.fingerprint() == b.fingerprint()
        before = a.fingerprint()
        a.append(frames[5])
        assert a.fingerprint() != before


class TestFrameJournal:
    def test_round_trips_and_truncates(self, scenario, tmp_path):
        path = str(tmp_path / "frames.jsonl")
        frames = list(frames_from_environment(scenario.environment))[:6]
        journal = FrameJournal(path)
        for f in frames:
            journal.append(f)
        journal.close()
        assert FrameJournal.load(path) == frames
        assert FrameJournal.load(path, upto=3) == frames[:3]
        FrameJournal.truncate(path, frames[:3])
        assert FrameJournal.load(path) == frames[:3]

    def test_torn_tail_is_dropped(self, scenario, tmp_path):
        path = tmp_path / "frames.jsonl"
        frames = list(frames_from_environment(scenario.environment))[:2]
        lines = [json.dumps(f.to_dict()) for f in frames]
        path.write_text(lines[0] + "\n" + lines[1][:10])
        assert FrameJournal.load(str(path)) == frames[:1]

    def test_missing_file_is_empty(self, tmp_path):
        assert FrameJournal.load(str(tmp_path / "absent.jsonl")) == []


# ---------------------------------------------------------------- config
class TestServeConfig:
    def test_defaults_are_clean(self):
        assert ServeConfig().problems() == []

    def test_collects_every_problem_at_once(self, tmp_path):
        config = ServeConfig(
            source="file",  # no feed given
            slot_period_s=-1.0,
            checkpoint_every=0,
            status_port=70000,
            dashboard_every=5,  # no dashboard_out
            alert_rearm=0,
            max_slots=0,
            retries=-1,
            synthetic={"p_drop": 2.0},
        )
        problems = config.problems()
        assert len(problems) >= 8
        joined = "\n".join(problems)
        for needle in ("--feed", "--slot-period-s", "--checkpoint-every",
                       "--status-port", "--dashboard-every", "--alert-rearm",
                       "--max-slots", "--retries", "p_drop"):
            assert needle in joined

    def test_feed_only_for_file_source(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        feed.write_text("")
        config = ServeConfig(source="replay", feed=str(feed))
        assert any("--feed only applies" in p for p in config.problems())

    def test_unwritable_checkpoint_parent(self):
        config = ServeConfig(checkpoint_dir="/nonexistent/deep/dir")
        assert any("checkpoint dir" in p for p in config.problems())

    def test_describe_mentions_source(self):
        assert "source=replay" in ServeConfig().describe()


# ---------------------------------------------------------------- status
class TestStatusEndpoint:
    def test_board_merges_and_snapshots(self):
        board = StatusBoard()
        board.update(slot=4, state="running")
        board.update(slot=5)
        snap = board.snapshot()
        assert snap["slot"] == 5 and snap["state"] == "running"
        snap["slot"] = 99  # copies are detached
        assert board.snapshot()["slot"] == 5

    def test_http_status_and_healthz(self):
        board = StatusBoard()
        board.update(state="running", slot=7, horizon=48)
        server = StatusServer(board, port=0)
        try:
            with urllib.request.urlopen(f"{server.url}/status") as resp:
                body = json.load(resp)
            assert body["slot"] == 7 and body["state"] == "running"
            with urllib.request.urlopen(f"{server.url}/healthz") as resp:
                assert resp.status == 200
            board.update(state="stopped")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{server.url}/healthz")
            assert err.value.code == 503
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{server.url}/nope")
            assert err.value.code == 404
        finally:
            server.close()


# ------------------------------------------------------------ bit-identity
class TestReplayBitIdentity:
    def test_uninterrupted_serve_matches_batch(self, scenario):
        batch = _batch_record(scenario)
        result = _replay_service(scenario).run()
        assert result.status == "completed"
        assert record_mismatches(batch, result.record) == []

    def test_stop_and_resume_matches_batch(self, scenario, tmp_path):
        batch = _batch_record(scenario)
        stopped = _replay_service(
            scenario, checkpoint_dir=tmp_path, max_slots=19
        ).run()
        assert stopped.status == "stopped" and stopped.stopped_at == 19
        assert stopped.checkpoint_path is not None

        ckpt = latest_valid_checkpoint(str(tmp_path))
        assert ckpt is not None and ckpt.slot == 19
        environment = LiveEnvironment(scenario.horizon, base=scenario.environment)
        for frame in FrameJournal.load(str(tmp_path / JOURNAL_NAME), upto=19):
            environment.append(frame)
        runner = SlotRunner(scenario.model, _controller(scenario), environment)
        source = ReplaySignalSource(scenario.environment)
        resolver = StalenessResolver(source)
        runner.start()
        runner.restore(ckpt)
        source.seek(19)
        resolver.restore(environment.frames[-1])
        result = ControlService(runner, resolver).run()
        assert result.status == "completed"
        assert record_mismatches(batch, result.record) == []

    def test_replay_checkpoint_is_resumable_by_batch_engine(
        self, scenario, tmp_path
    ):
        """Serve checkpoints are interchangeable with `repro run` ones."""
        batch = _batch_record(scenario)
        _replay_service(scenario, checkpoint_dir=tmp_path, max_slots=11).run()
        ckpt = latest_valid_checkpoint(str(tmp_path))
        record = simulate(
            scenario.model,
            _controller(scenario),
            scenario.environment,  # the plain batch environment
            resume_from=ckpt,
        )
        assert record_mismatches(batch, record) == []


# ------------------------------------------------------------------- CLI
class TestServeCli:
    def test_dry_run_clean_config(self, capsys):
        assert main(["serve", "--dry-run"]) == 0
        assert "config ok" in capsys.readouterr().out

    def test_dry_run_reports_problems(self, capsys):
        assert main(["serve", "--dry-run", "--source", "file"]) == EXIT_BAD_INPUT
        err = capsys.readouterr().err
        assert "--feed" in err and "problem(s)" in err

    def test_bad_config_refused_without_dry_run(self, capsys):
        assert main(["serve", "--source", "file"]) == EXIT_BAD_INPUT

    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(["serve", "--resume"]) == EXIT_BAD_INPUT
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_resume_without_manifest_is_bad_input(self, tmp_path, capsys):
        code = main(
            ["serve", "--resume", "--checkpoint-dir", str(tmp_path)]
        )
        assert code == EXIT_BAD_INPUT
        assert MANIFEST_NAME in capsys.readouterr().err

    def test_replay_serve_cli_matches_batch_run(self, tmp_path, capsys):
        batch_out = tmp_path / "batch.npz"
        serve_out = tmp_path / "serve.npz"
        args = ["--horizon", "36", "--seed", "4"]
        assert main(["run", *args, "--record-out", str(batch_out)]) == 0
        assert (
            main(
                [
                    "serve", "--source", "replay", *args,
                    "--checkpoint-dir", str(tmp_path / "ckpt"),
                    "--record-out", str(serve_out),
                ]
            )
            == 0
        )
        from repro.state import load_record

        assert record_mismatches(
            load_record(str(batch_out)), load_record(str(serve_out))
        ) == []

    def test_cli_stop_resume_round_trip(self, tmp_path, capsys):
        args = ["--horizon", "36", "--seed", "4"]
        ckpt_dir = str(tmp_path / "ckpt")
        batch_out = tmp_path / "batch.npz"
        serve_out = tmp_path / "serve.npz"
        assert main(["run", *args, "--record-out", str(batch_out)]) == 0
        # max-slots stops with a forced checkpoint but exits 0 (no signal).
        assert (
            main(
                ["serve", "--source", "replay", *args,
                 "--checkpoint-dir", ckpt_dir, "--max-slots", "13"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stopped at slot 13/36" in out
        assert (
            main(
                ["serve", "--resume", "--checkpoint-dir", ckpt_dir,
                 "--record-out", str(serve_out)]
            )
            == 0
        )
        from repro.state import load_record

        assert record_mismatches(
            load_record(str(batch_out)), load_record(str(serve_out))
        ) == []


# ------------------------------------------------------------ forecast feed
class TestForecastPayloads:
    """Feeds carry optional advice windows on frame-boundary slots; the
    payload rides the same JSONL line format and is never required."""

    def test_frames_attach_windows_on_boundaries_only(self, scenario):
        frames = list(
            frames_from_environment(scenario.environment, advice_frame=24)
        )
        for frame in frames:
            if frame.slot % 24 == 0:
                assert frame.forecast is not None
                assert frame.forecast["start"] == frame.slot
                assert len(frame.forecast["arrival"]) == 24
            else:
                assert frame.forecast is None

    def test_forecast_round_trips_through_feed_file(self, scenario, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_feed(scenario.environment, path, advice_frame=24)
        source = FileTailSignalSource(path)
        frames = []
        while (frame := source.poll()) is not None:
            frames.append(frame)
        source.close()
        assert frames == list(
            frames_from_environment(scenario.environment, advice_frame=24)
        )

    def test_payload_free_feed_leaves_advised_serve_bit_identical(
        self, scenario
    ):
        """No payloads ever arrive -> the feed-backed advisor never has a
        window -> every slot falls back -> bit-identical to plain COCA."""
        from repro.advice import (
            AdvisedController,
            FeedForecastProvider,
            ForecastAdvisor,
        )

        batch = _batch_record(scenario)
        environment = LiveEnvironment(scenario.horizon, base=scenario.environment)
        advisor = ForecastAdvisor(
            scenario.model,
            scenario.environment.portfolio,
            frame_length=24,
            horizon=scenario.horizon,
            provider=FeedForecastProvider(),
            alpha=scenario.alpha,
        )
        controller = AdvisedController(_controller(scenario), advisor=advisor)
        runner = SlotRunner(scenario.model, controller, environment)
        # Replay source with no advice_frame: frames carry no payloads.
        resolver = StalenessResolver(ReplaySignalSource(scenario.environment))
        runner.start()
        result = ControlService(runner, resolver).run()
        assert result.status == "completed"
        # Only the recorded controller label differs ("COCA+advice"); every
        # numeric trajectory is bit-identical to the plain batch run.
        assert record_mismatches(batch, result.record) == ["controller"]
        for name in ("cost", "brown_energy", "queue", "served"):
            assert list(getattr(result.record, name)) == list(
                getattr(batch, name)
            )
        assert controller.guard.advised_slots == 0
        assert controller.guard.fallback_slots == scenario.horizon

    def test_advised_replay_serve_consumes_feed_windows(self, scenario):
        """Payload-bearing frames reach the feed provider through the
        service's ingest hook; every boundary window is consumed fresh."""
        from repro.advice import (
            AdvisedController,
            FeedForecastProvider,
            ForecastAdvisor,
        )

        environment = LiveEnvironment(scenario.horizon, base=scenario.environment)
        provider = FeedForecastProvider()
        advisor = ForecastAdvisor(
            scenario.model,
            scenario.environment.portfolio,
            frame_length=24,
            horizon=scenario.horizon,
            provider=provider,
            alpha=scenario.alpha,
        )
        controller = AdvisedController(_controller(scenario), advisor=advisor)
        runner = SlotRunner(scenario.model, controller, environment)
        resolver = StalenessResolver(
            ReplaySignalSource(scenario.environment, advice_frame=24)
        )
        runner.start()
        result = ControlService(runner, resolver).run()
        assert result.status == "completed"
        assert provider.ingested == scenario.horizon // 24
        assert provider.stale_rejected == 0
        total = controller.guard.advised_slots + controller.guard.fallback_slots
        assert total == scenario.horizon
