"""End-to-end serve smoke: real process, real signals, real resume.

This is the test behind CI's ``serve-smoke`` job: start ``repro serve`` as
a subprocess on a replayed feed, poll the live ``/status`` endpoint,
SIGTERM it mid-horizon (exit code 4), then ``repro serve --resume`` to
completion and require the stitched record to be bit-identical to a batch
``repro run`` of the same scenario.  Everything here crosses a process
boundary on purpose -- in-process coverage of the same flows lives in
``test_serve.py``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.state import load_record, record_mismatches

HORIZON = 48
SEED = 9
SCENARIO_ARGS = ["--horizon", str(HORIZON), "--seed", str(SEED)]


def _spawn(args, cwd):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _run(args, cwd):
    proc = _spawn(args, cwd)
    out, _ = proc.communicate(timeout=300)
    return proc.returncode, out


def _wait_for(predicate, timeout_s=60.0, interval_s=0.1, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise AssertionError(f"timed out waiting for {what}")


def _get_status(port):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/status", timeout=5) as r:
        return json.loads(r.read())


@pytest.mark.slow
def test_sigterm_then_resume_is_bit_identical_to_batch(tmp_path):
    d = str(tmp_path)
    ckpt = os.path.join(d, "ckpt")
    port_file = os.path.join(d, "port.txt")
    serve_record = os.path.join(d, "serve.npz")
    batch_record = os.path.join(d, "batch.npz")

    # Batch reference for the same scenario and controller settings.
    code, out = _run(
        ["run", *SCENARIO_ARGS, "--record-out", batch_record], d
    )
    assert code == 0, out

    # Start the service paced slowly enough to interrupt mid-horizon.
    proc = _spawn(
        [
            "serve",
            "--source", "replay",
            *SCENARIO_ARGS,
            "--slot-period-s", "0.2",
            "--status-port", "0",
            "--status-port-file", port_file,
            "--checkpoint-dir", ckpt,
            "--checkpoint-every", "1",
        ],
        d,
    )
    try:
        port = int(
            _wait_for(
                lambda: os.path.exists(port_file)
                and open(port_file).read().strip(),
                what="status port file",
            )
        )

        # The live endpoint answers while the run is in flight.
        status = _wait_for(
            lambda: (s := _get_status(port)) and s["slot"] >= 3 and s,
            what="slot >= 3 on /status",
        )
        assert status["state"] == "running"
        assert status["horizon"] == HORIZON
        assert 3 <= status["slot"] < HORIZON
        assert "carbon" in status and "solver_latency" in status

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)

    assert proc.returncode == 4, out  # EXIT_SHUTDOWN
    assert "serve: stopped at slot" in out
    assert os.path.isdir(ckpt) and any(
        name.startswith("ckpt-") for name in os.listdir(ckpt)
    ), out

    # Resume the interrupted service run to completion, free-running.
    code, out = _run(
        [
            "serve",
            "--resume",
            "--checkpoint-dir", ckpt,
            "--record-out", serve_record,
        ],
        d,
    )
    assert code == 0, out

    mismatches = record_mismatches(
        load_record(batch_record), load_record(serve_record)
    )
    assert mismatches == []
