"""Staleness semantics: late, missing, out-of-order, and gap observations.

The resolver's contract (``docs/SERVING.md``): whatever the feed does, each
``resolve(t)`` returns exactly one *complete* frame for slot ``t`` -- the
slot clock never moves backwards -- and every loss is (a) counted under a
``signal.*`` counter and (b) routed through the run's
:class:`~repro.faults.FaultInjector`, so the controller's observation
degrades through the same code path scheduled chaos uses.  Property tests
drive the resolver with arbitrary delivery orders; the golden test pins the
exact resolution counts of one seeded synthetic run so drift in the
delivery plan or the resolution logic is loud.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector, FaultSchedule
from repro.scenarios import small_scenario
from repro.serve import (
    ControlService,
    LiveEnvironment,
    ReplaySignalSource,
    SignalFrame,
    SignalSource,
    StalenessResolver,
    SyntheticSignalSource,
    frames_from_environment,
)
from repro.sim.engine import SlotRunner
from repro.telemetry import Telemetry


class ScriptedSource(SignalSource):
    """Delivers a fixed script of frames / Nones (empty polls)."""

    def __init__(self, script):
        self.script = list(script)
        self._i = 0

    def poll(self):
        if self._i >= len(self.script):
            return None
        item = self.script[self._i]
        self._i += 1
        return item


def _frame(slot, value=1.0):
    return SignalFrame(
        slot=slot, arrival=value, onsite=value, price=value,
        arrival_actual=value, offsite=value,
    )


def _injector():
    return FaultInjector(FaultSchedule(), num_groups=3)


def _resolver(script, **kw):
    kw.setdefault("injector", _injector())
    return StalenessResolver(ScriptedSource(script), **kw)


# ------------------------------------------------------------- unit cases
class TestResolutions:
    def test_on_time_complete_frame_is_ok(self):
        resolver = _resolver([_frame(0)])
        frame = resolver.resolve(0)
        assert frame == _frame(0)
        assert resolver.stats()["ok"] == 1

    def test_late_frame_counts_and_is_used(self):
        # One empty poll, then the frame, within a generous fake-time budget.
        clock = iter(range(100))
        resolver = _resolver(
            [None, _frame(0)],
            timeout_s=50.0,
            clock=lambda: next(clock),
            sleep=lambda s: None,
        )
        frame = resolver.resolve(0)
        assert frame == _frame(0)
        assert resolver.stats()["late"] == 1
        assert resolver.stats()["ok"] == 0

    def test_missing_slot_synthesizes_from_last_clean(self):
        injector = _injector()
        resolver = _resolver([_frame(0, value=3.0)], injector=injector)
        resolver.resolve(0)
        frame = resolver.resolve(1)  # feed dried up
        assert resolver.stats()["missing"] == 1
        assert frame.slot == 1 and frame.missing_fields == ()
        assert frame.price == 3.0  # frozen at the last clean value
        # ...and the loss was registered on the injector (standard path).
        assert injector.summary()["by_kind"].get("signal", 0) == 3

    def test_gap_buffers_future_frame_for_its_own_slot(self):
        resolver = _resolver([_frame(0), _frame(2)])
        resolver.resolve(0)
        frame1 = resolver.resolve(1)  # slot 2 arrived instead: a gap at 1
        assert frame1.slot == 1
        assert resolver.stats()["gap"] == 1
        frame2 = resolver.resolve(2)  # buffered frame used, not re-polled
        assert frame2 == _frame(2)
        assert resolver.stats()["ok"] == 2

    def test_out_of_order_frame_is_discarded(self):
        resolver = _resolver([_frame(0), _frame(0), _frame(1)])
        resolver.resolve(0)
        frame = resolver.resolve(1)
        assert frame == _frame(1)  # the stale duplicate of slot 0 was dropped
        assert resolver.stats()["out_of_order"] == 1

    def test_degraded_fields_are_filled_and_injected(self):
        injector = _injector()
        resolver = _resolver(
            [_frame(0, value=7.0), SignalFrame(slot=1, arrival=2.0)],
            injector=injector,
        )
        resolver.resolve(0)
        frame = resolver.resolve(1)
        assert resolver.stats()["degraded_fields"] == 1
        assert frame.arrival == 2.0  # delivered field kept
        assert frame.price == 7.0 and frame.onsite == 7.0  # holes frozen
        # arrival_actual falls back to the frame's own prediction first.
        assert frame.arrival_actual == 2.0
        # onsite + price lost -> two signal injections (arrival arrived).
        assert injector.summary()["by_kind"].get("signal", 0) == 2

    def test_replay_resolver_without_injector_refuses_degradation(self):
        resolver = StalenessResolver(ScriptedSource([SignalFrame(slot=0)]))
        with pytest.raises(RuntimeError, match="replay"):
            resolver.resolve(0)

    def test_counters_reach_telemetry(self):
        telemetry = Telemetry.recording()
        resolver = _resolver([_frame(0), _frame(2)], telemetry=telemetry)
        for t in range(3):
            resolver.resolve(t)
        kinds = [e["kind"] for e in telemetry.events]
        assert "signal.ok" in kinds and "signal.gap" in kinds
        assert telemetry.metrics.counter("signal.gap").value == 1
        assert telemetry.metrics.counter("signal.ok").value == 2

    def test_timeout_zero_never_reads_the_clock(self):
        def boom():  # pragma: no cover - only fires on regression
            raise AssertionError("replay path must not read a clock")

        resolver = _resolver([_frame(0)], timeout_s=0.0, clock=boom, sleep=boom)
        assert resolver.resolve(0) == _frame(0)


# --------------------------------------------------------------- property
frame_values = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def delivery_scripts(draw):
    """An arbitrary feed script over a small horizon: on-time, duplicated,
    shuffled, holed, field-degraded, and padded with empty polls."""
    horizon = draw(st.integers(min_value=1, max_value=8))
    items = []
    for slot in range(horizon):
        fate = draw(st.sampled_from(["ok", "drop", "degraded", "dup"]))
        if fate == "drop":
            continue
        value = draw(frame_values)
        frame = _frame(slot, value=value)
        if fate == "degraded":
            keep = draw(st.sets(st.sampled_from(
                ["arrival", "onsite", "price", "arrival_actual", "offsite"]
            )))
            frame = SignalFrame.from_dict(
                {k: v for k, v in frame.to_dict().items()
                 if k == "slot" or k in keep}
            )
        items.append(frame)
        if fate == "dup":
            items.append(frame)
    shuffled = draw(st.permutations(items))
    script = []
    for item in shuffled:
        script.extend([None] * draw(st.integers(min_value=0, max_value=1)))
        script.append(item)
    return horizon, script


class TestResolverProperties:
    @settings(max_examples=60, deadline=None)
    @given(delivery_scripts())
    def test_always_one_complete_frame_per_slot(self, case):
        horizon, script = case
        resolver = _resolver(script)
        resolved = [resolver.resolve(t) for t in range(horizon)]
        # Exactly one frame per slot, in slot order, every field filled:
        # the slot clock never moves backwards and never skips.
        assert [f.slot for f in resolved] == list(range(horizon))
        assert all(f.missing_fields == () for f in resolved)

    @settings(max_examples=60, deadline=None)
    @given(delivery_scripts())
    def test_every_slot_is_counted_exactly_once(self, case):
        horizon, script = case
        resolver = _resolver(script)
        for t in range(horizon):
            resolver.resolve(t)
        stats = resolver.stats()
        # The five primary resolutions partition the slots; out_of_order
        # counts discarded frames, not slots.
        assert (
            stats["ok"] + stats["late"] + stats["missing"] + stats["gap"]
            + stats["degraded_fields"]
            == horizon
        )

    @settings(max_examples=40, deadline=None)
    @given(delivery_scripts())
    def test_losses_always_route_through_the_injector(self, case):
        horizon, script = case
        injector = _injector()
        resolver = _resolver(script, injector=injector)
        for t in range(horizon):
            resolver.resolve(t)
        stats = resolver.stats()
        injected = injector.summary()["by_kind"].get("signal", 0)
        if stats["missing"] or stats["gap"] or stats["degraded_fields"]:
            assert injected > 0
        else:
            assert injected == 0


# ------------------------------------------------------------ end to end
class TestDegradedServiceRuns:
    @pytest.fixture(scope="class")
    def scenario(self):
        return small_scenario(horizon=36, seed=5)

    def _serve(self, scenario, source, *, injector=None):
        from repro.core.coca import COCA
        from repro.faults import DegradationPolicy

        environment = LiveEnvironment(scenario.horizon)
        controller = COCA(
            scenario.model,
            scenario.environment.portfolio,
            v_schedule=150.0,
            alpha=scenario.alpha,
        )
        telemetry = Telemetry.recording()
        runner = SlotRunner(
            scenario.model,
            controller,
            environment,
            telemetry=telemetry,
            faults=injector if injector is not None else _injector(),
            degradation=DegradationPolicy(),
        )
        resolver = StalenessResolver(
            source, injector=runner.injector, telemetry=telemetry
        )
        runner.start()
        return ControlService(runner, resolver), telemetry

    def test_lossy_feed_completes_the_horizon(self, scenario):
        source = SyntheticSignalSource(
            scenario.environment, seed=3,
            p_drop=0.2, p_late=0.2, p_field_loss=0.1, p_swap=0.2,
        )
        service, telemetry = self._serve(scenario, source)
        result = service.run()
        assert result.status == "completed"
        assert len(result.record.cost) == scenario.horizon
        stats = service.resolver.stats()
        assert stats["missing"] + stats["gap"] > 0  # the feed really was lossy
        kinds = {e["kind"] for e in telemetry.events}
        assert "fault.inject" in kinds  # losses went through the injector
        assert any(k.startswith("signal.") for k in kinds)

    def test_lossy_feed_is_deterministic(self, scenario):
        def run():
            source = SyntheticSignalSource(
                scenario.environment, seed=3,
                p_drop=0.2, p_late=0.2, p_field_loss=0.1, p_swap=0.2,
            )
            service, _ = self._serve(scenario, source)
            return service.run()

        from repro.state import record_mismatches

        a, b = run(), run()
        assert record_mismatches(a.record, b.record) == []

    def test_perfect_live_feed_matches_replay_arithmetic(self, scenario):
        """An injector that never fires leaves results bit-identical."""
        from repro.sim import simulate
        from repro.core.coca import COCA
        from repro.state import record_mismatches

        batch = simulate(
            scenario.model,
            COCA(
                scenario.model,
                scenario.environment.portfolio,
                v_schedule=150.0,
                alpha=scenario.alpha,
            ),
            scenario.environment,
        )
        service, _ = self._serve(
            scenario, ReplaySignalSource(scenario.environment)
        )
        result = service.run()
        assert record_mismatches(batch, result.record) == []


# ----------------------------------------------------------------- golden
class TestGoldenResolution:
    def test_seeded_synthetic_run_resolves_identically(self):
        """Regression pin: the full resolution tally of one seeded lossy
        feed.  A change here means the delivery plan or the resolution
        logic changed -- deliberate changes update the expected dict."""
        scenario = small_scenario(horizon=36, seed=5)
        source = SyntheticSignalSource(
            scenario.environment, seed=11,
            p_drop=0.15, p_late=0.2, p_field_loss=0.1, p_swap=0.15,
        )
        resolver = StalenessResolver(source, injector=_injector())
        resolved = [resolver.resolve(t) for t in range(scenario.horizon)]
        assert [f.slot for f in resolved] == list(range(scenario.horizon))
        assert all(f.missing_fields == () for f in resolved)
        assert resolver.stats() == GOLDEN_STATS


#: Pinned by running the seeded feed above once; see the test docstring.
GOLDEN_STATS = {
    "ok": 9,
    "late": 0,
    "missing": 10,
    "gap": 8,
    "out_of_order": 9,
    "degraded_fields": 9,
}


# ---------------------------------------------------------------- forecast
class TestForecastStaleness:
    """Advice payloads under loss: a synthesized or donor-patched frame
    never resurrects a forecast, a degraded frame keeps its own payload,
    and a feed-backed provider rejects windows left over from an earlier
    frame -- staleness always degrades advice to plain COCA, never stalls
    the slot clock or steers with outdated windows."""

    def _payload(self, slot, length=2):
        return {
            "start": slot,
            "arrival": [1.0] * length,
            "onsite": [0.5] * length,
            "price": [40.0] * length,
            "offsite": [0.0] * length,
        }

    def test_missing_slot_never_resurrects_forecast(self):
        donor = SignalFrame.from_dict(
            {**_frame(0, value=3.0).to_dict(), "forecast": self._payload(0)}
        )
        resolver = _resolver([donor])
        assert resolver.resolve(0).forecast == self._payload(0)
        frame = resolver.resolve(1)  # feed dried up: synthesized from donor
        assert resolver.stats()["missing"] == 1
        assert frame.forecast is None

    def test_gap_synthesis_never_resurrects_forecast(self):
        donor = SignalFrame.from_dict(
            {**_frame(0).to_dict(), "forecast": self._payload(0)}
        )
        resolver = _resolver([donor, _frame(2)])
        resolver.resolve(0)
        frame = resolver.resolve(1)  # slot 2 arrived instead: gap at 1
        assert resolver.stats()["gap"] == 1
        assert frame.forecast is None

    def test_degraded_frame_keeps_its_own_payload(self):
        degraded = SignalFrame(slot=1, arrival=2.0, forecast=self._payload(1))
        resolver = _resolver([_frame(0, value=7.0), degraded])
        resolver.resolve(0)
        frame = resolver.resolve(1)
        assert resolver.stats()["degraded_fields"] == 1
        assert frame.price == 7.0  # hole frozen from the donor...
        assert frame.forecast == self._payload(1)  # ...payload untouched

    def test_stale_window_is_rejected_not_reused(self):
        from repro.advice import FeedForecastProvider

        provider = FeedForecastProvider()
        provider.ingest(self._payload(0))
        assert provider.window(0, 2) is not None
        # Frame at slot 2 lost its payload: the slot-0 window must not be
        # reused for it.
        assert provider.window(2, 2) is None
        assert provider.stale_rejected == 1

    def test_lossy_advised_serve_completes_without_stalling(self):
        """End to end: an advised service on a lossy feed finishes every
        slot; lost boundary payloads cost advice, never progress."""
        from repro.core.coca import COCA
        from repro.advice import (
            AdvisedController,
            FeedForecastProvider,
            ForecastAdvisor,
        )
        from repro.faults import DegradationPolicy

        scenario = small_scenario(horizon=36, seed=5)
        source = SyntheticSignalSource(
            scenario.environment, seed=3, advice_frame=12,
            p_drop=0.3, p_late=0.2, p_field_loss=0.2, p_swap=0.2,
        )
        environment = LiveEnvironment(scenario.horizon)
        provider = FeedForecastProvider()
        advisor = ForecastAdvisor(
            scenario.model,
            scenario.environment.portfolio,
            frame_length=12,
            horizon=scenario.horizon,
            provider=provider,
            alpha=scenario.alpha,
        )
        controller = AdvisedController(
            COCA(
                scenario.model,
                scenario.environment.portfolio,
                v_schedule=150.0,
                alpha=scenario.alpha,
            ),
            advisor=advisor,
        )
        runner = SlotRunner(
            scenario.model, controller, environment,
            faults=_injector(), degradation=DegradationPolicy(),
        )
        resolver = StalenessResolver(source, injector=runner.injector)
        runner.start()
        result = ControlService(runner, resolver).run()
        assert result.status == "completed"
        assert len(result.record.cost) == scenario.horizon
        stats = resolver.stats()
        assert stats["missing"] + stats["gap"] > 0  # feed really was lossy
        # Some boundary payloads were lost with their frames, so not every
        # frame could be advised -- and the run still covered every slot.
        guard = controller.guard
        assert guard.advised_slots + guard.fallback_slots == scenario.horizon
        assert provider.ingested < scenario.horizon // 12
