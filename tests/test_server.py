"""Tests for server profiles (paper Eq. (1) and section 5.1 numbers)."""

import numpy as np
import pytest

from repro.cluster import WATT, ServerProfile, cubic_dvfs_profile, opteron_2380


class TestOpteron2380:
    """The paper's measured server (section 5.1)."""

    def test_paper_power_numbers(self):
        p = opteron_2380()
        assert p.static_power == pytest.approx(140 * WATT)
        totals = (p.static_power + p.dynamic_power) / WATT
        np.testing.assert_allclose(totals, [184, 194, 208, 231])

    def test_max_speed_is_10_req_per_s(self):
        assert opteron_2380().max_speed == pytest.approx(10.0)

    def test_speeds_proportional_to_frequency(self):
        p = opteron_2380()
        np.testing.assert_allclose(
            p.speeds / p.max_speed, np.array([0.8, 1.3, 1.8, 2.5]) / 2.5
        )

    def test_power_at_full_load_top_speed(self):
        p = opteron_2380()
        assert p.power(10.0, 3) == pytest.approx(231 * WATT)

    def test_power_at_idle_is_static(self):
        p = opteron_2380()
        for k in range(p.num_speeds):
            assert p.power(0.0, k) == pytest.approx(140 * WATT)

    def test_power_linear_in_load(self):
        """Eq. (1): dynamic power scales with utilization."""
        p = opteron_2380()
        half = p.power(5.0, 3)
        assert half == pytest.approx((140 + 91 / 2) * WATT)

    def test_utilization(self):
        p = opteron_2380()
        assert p.utilization(5.0, 3) == pytest.approx(0.5)

    def test_load_beyond_speed_rejected(self):
        with pytest.raises(ValueError):
            opteron_2380().power(11.0, 3)
        with pytest.raises(ValueError):
            opteron_2380().power(-1.0, 3)

    def test_describe_contains_watts(self):
        assert "231" in opteron_2380().describe()


class TestValidation:
    def test_speeds_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            ServerProfile("x", 0.0, np.array([2.0, 1.0]), np.array([1.0, 2.0]))

    def test_speeds_must_be_positive(self):
        with pytest.raises(ValueError, match="increasing|positive"):
            ServerProfile("x", 0.0, np.array([0.0, 1.0]), np.array([1.0, 2.0]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            ServerProfile("x", 0.0, np.array([1.0, 2.0]), np.array([1.0]))

    def test_negative_static_power(self):
        with pytest.raises(ValueError, match="static"):
            ServerProfile("x", -1.0, np.array([1.0]), np.array([1.0]))

    def test_negative_dynamic_power(self):
        with pytest.raises(ValueError, match="dynamic"):
            ServerProfile("x", 0.0, np.array([1.0]), np.array([-1.0]))

    def test_arrays_frozen(self):
        p = opteron_2380()
        with pytest.raises(ValueError):
            p.speeds[0] = 5.0


class TestEquality:
    def test_equal_profiles(self):
        assert opteron_2380() == opteron_2380()
        assert hash(opteron_2380()) == hash(opteron_2380())

    def test_unequal_profiles(self):
        assert opteron_2380() != cubic_dvfs_profile()

    def test_eq_against_other_type(self):
        assert opteron_2380() != 42


class TestCubicProfile:
    def test_energy_per_request_decreases_at_low_speed(self):
        """With cubic dynamic power, slower speeds cost less energy per
        request -- the regime where DVFS is genuinely useful."""
        p = cubic_dvfs_profile()
        epr = p.energy_per_request
        assert np.all(np.diff(epr) > 0)  # increasing in speed

    def test_opteron_energy_per_request_decreases_with_speed(self):
        """The measured Opteron is the opposite: its top speed is the most
        efficient (static power dominates), which is why the optimal policy
        for the paper's fleet is 'top speed or off'."""
        epr = opteron_2380().energy_per_request
        assert np.all(np.diff(epr) < 0)

    def test_level_count(self):
        assert cubic_dvfs_profile(levels=6).num_speeds == 6

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            cubic_dvfs_profile(levels=0)
