"""Differential property suite for the process-sharded GSD solver.

The headline contract (docs/SCALING.md): :class:`ShardedGSDSolver` is
**bit-identical** to the single-process :class:`GSDSolver` -- same levels,
same per-server loads, same objective, same evaluation count, same
speculation accounting, same trace -- for *any* shard count, including
counts that do not divide the group count.  The suite sweeps randomized
heterogeneous fleets (sizes up to the thousands), failures, caps, and
both draw modes, plus unit coverage of the :mod:`repro.ipc` transport and
worker pool the solver rides on.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing

import numpy as np
import pytest

from repro.cluster import Fleet, ServerGroup, cubic_dvfs_profile, opteron_2380
from repro.core import DataCenterModel
from repro.ipc import Channel, ChannelClosedError, ShardWorkerPool, channel_pair
from repro.ipc.pool import worker_loop
from repro.solvers import (
    GSDSolver,
    ShardedGSDSolver,
    ShardPlan,
    distribute_load,
    problem_fingerprint,
)
from tests.conftest import make_problem

SHARD_COUNTS = [1, 2, 4, 7]  # 7 does not divide the 9-group fleet below


# ---------------------------------------------------------------------------
# Fixtures and helpers
# ---------------------------------------------------------------------------
def _mixed_fleet(num_groups: int, seed: int = 0) -> Fleet:
    """A heterogeneous fleet alternating profiles with varied group sizes."""
    rng = np.random.default_rng(seed)
    profiles = (opteron_2380, cubic_dvfs_profile)
    return Fleet(
        [
            ServerGroup(profiles[g % 2](), int(rng.integers(2, 15)))
            for g in range(num_groups)
        ]
    )


@pytest.fixture(scope="module")
def model9() -> DataCenterModel:
    """9 heterogeneous groups -- small enough for exact differentials,
    awkward enough (odd, prime-adjacent) to exercise uneven shard plans."""
    return DataCenterModel(fleet=_mixed_fleet(9, seed=3), beta=10.0)


def run_sharded(problem, *, shards, seed=7, iterations=60, **kw):
    with ShardedGSDSolver(
        shards=shards,
        iterations=iterations,
        rng=np.random.default_rng(seed),
        **kw,
    ) as solver:
        return solver.solve(problem)


def run_gsd(problem, *, seed=7, iterations=60, batched=True, **kw):
    # batched=True so the speculation accounting is comparable; the batched
    # chain is itself bit-identical to the scalar one (see gsd docs), which
    # test_matches_scalar_chain_too pins independently.
    return GSDSolver(
        iterations=iterations,
        rng=np.random.default_rng(seed),
        batched=batched,
        **kw,
    ).solve(problem)


def assert_bit_identical(sharded, reference):
    """The full differential: decision, loads, objective, counters, trace."""
    np.testing.assert_array_equal(sharded.action.levels, reference.action.levels)
    np.testing.assert_array_equal(
        sharded.action.per_server_load, reference.action.per_server_load
    )
    assert sharded.info["final_objective"] == reference.info["final_objective"]
    assert sharded.info["evaluations"] == reference.info["evaluations"]
    assert sharded.evaluation.objective == reference.evaluation.objective
    assert sharded.evaluation.cost == reference.evaluation.cost
    spec_s = sharded.info["speculation"]
    spec_r = reference.info["speculation"]
    for key in ("blocks", "full_blocks", "resyncs", "wasted_evaluations"):
        assert spec_s[key] == spec_r[key], key
    if "trace" in sharded.info and "trace" in reference.info:
        ts, tr = sharded.info["trace"], reference.info["trace"]
        np.testing.assert_array_equal(ts.chain_objective, tr.chain_objective)
        np.testing.assert_array_equal(ts.best_objective, tr.best_objective)
        np.testing.assert_array_equal(ts.accepted, tr.accepted)


# ---------------------------------------------------------------------------
# Shard plan
# ---------------------------------------------------------------------------
class TestShardPlan:
    @pytest.mark.parametrize("num_groups", [1, 2, 5, 9, 10, 1000])
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_partition_is_total_and_contiguous(self, num_groups, num_shards):
        if num_shards > num_groups:
            pytest.skip("more shards than groups is rejected by the plan")
        plan = ShardPlan(num_groups, num_shards)
        covered = []
        for s in range(num_shards):
            groups = plan.groups(s)
            covered.extend(groups)
            for g in groups:
                assert plan.owner(g) == s
        assert covered == list(range(num_groups))

    def test_non_divisor_split_matches_array_split(self):
        plan = ShardPlan(10, 4)
        sizes = [len(plan.groups(s)) for s in range(4)]
        assert sizes == [len(c) for c in np.array_split(np.arange(10), 4)]
        assert sizes == [3, 3, 2, 2]

    def test_first_shards_absorb_the_remainder(self):
        plan = ShardPlan(9, 7)
        assert [len(plan.groups(s)) for s in range(7)] == [2, 2, 1, 1, 1, 1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(5, 0)
        with pytest.raises(ValueError):
            ShardPlan(5, 6)


# ---------------------------------------------------------------------------
# IPC transport and worker pool
# ---------------------------------------------------------------------------
def _echo_worker(channel: Channel, index: int) -> None:
    worker_loop(
        channel,
        {
            "echo": lambda frame: {"value": frame["value"], "worker": index},
            "boom": lambda frame: 1 / 0,
        },
    )


class TestTransport:
    def test_roundtrip_and_timeout(self):
        ctx = multiprocessing.get_context("fork")
        a, b = channel_pair(ctx)
        a.send({"seq": 1, "op": "x", "blob": np.arange(4)})
        frame = b.recv(timeout=5.0)
        assert frame["op"] == "x"
        np.testing.assert_array_equal(frame["blob"], np.arange(4))
        assert b.recv(timeout=0.01) is None  # nothing pending -> timeout
        a.close()
        with pytest.raises(ChannelClosedError):
            b.recv(timeout=5.0)
        b.close()

    def test_recv_seq_drops_stale_and_rejects_future(self):
        ctx = multiprocessing.get_context("fork")
        a, b = channel_pair(ctx)
        a.send({"seq": 1})
        a.send({"seq": 2})
        a.send({"seq": 3})
        # Awaiting 2: the late reply to round 1 is silently discarded.
        assert b.recv_seq(2, timeout=5.0)["seq"] == 2
        assert b.stale_drops == 1
        # A frame from the future is a protocol bug, not a late ack.
        with pytest.raises(RuntimeError, match="out-of-order"):
            b.recv_seq(2, timeout=5.0)
        a.close()
        b.close()

    def test_malformed_frame_rejected(self):
        ctx = multiprocessing.get_context("fork")
        a, b = channel_pair(ctx)
        a.send({"op": "x"})  # no seq field
        with pytest.raises(ValueError, match="malformed"):
            b.recv(timeout=5.0)
        a.close()
        b.close()


class TestWorkerPool:
    def test_request_posts_and_collects(self):
        with ShardWorkerPool(2, _echo_worker) as pool:
            reply = pool.request(0, "echo", value=41, timeout=30.0)
            assert reply["value"] == 41 and reply["worker"] == 0
            # post-all-then-collect-all: replies route by seq, per worker.
            s0 = pool.post(0, "echo", value="a")
            s1 = pool.post(1, "echo", value="b")
            assert pool.collect(1, s1, timeout=30.0)["value"] == "b"
            assert pool.collect(0, s0, timeout=30.0)["value"] == "a"
            assert pool.spawned == 2

    def test_handler_error_and_unknown_op_reply_not_kill(self):
        with ShardWorkerPool(1, _echo_worker) as pool:
            reply = pool.request(0, "boom", timeout=30.0)
            assert "ZeroDivisionError" in reply["error"]
            reply = pool.request(0, "frobnicate", timeout=30.0)
            assert "unknown op" in reply["error"]
            # Both faults were survivable: the worker still answers.
            assert pool.request(0, "echo", value=1, timeout=30.0)["value"] == 1

    def test_respawn_replaces_process_and_clears_cache(self):
        with ShardWorkerPool(1, _echo_worker) as pool:
            handle = pool.worker(0)
            handle.mark_known("fp-1")
            old_pid = handle.pid
            fresh = pool.respawn(0)
            assert fresh.pid != old_pid
            assert fresh.generation == handle.generation + 1
            assert not fresh.knows("fp-1")
            assert pool.respawns == 1
            assert pool.request(0, "echo", value=2, timeout=30.0)["value"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardWorkerPool(0, _echo_worker)
        with ShardWorkerPool(1, _echo_worker) as pool:
            with pytest.raises(IndexError):
                pool.worker(1)


# ---------------------------------------------------------------------------
# Differential: sharded == single-process, bit for bit
# ---------------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_matches_gsd_bitwise(self, model9, shards):
        p = make_problem(model9, lam_frac=0.55, q=8.0, onsite=0.2, V=200.0)
        ref = run_gsd(p, record_history=True)
        sol = run_sharded(p, shards=shards, record_history=True)
        assert_bit_identical(sol, ref)
        assert sol.info["sharding"]["shards"] == min(shards, 9)
        assert sum(sol.info["sharding"]["plan"]) == 9

    def test_matches_scalar_chain_too(self, model9):
        """The speculative block machinery must not leak into decisions:
        the plain scalar GSD chain lands on the same answer."""
        p = make_problem(model9, lam_frac=0.55, q=8.0)
        ref = run_gsd(p, batched=False)
        sol = run_sharded(p, shards=4)
        np.testing.assert_array_equal(sol.action.levels, ref.action.levels)
        np.testing.assert_array_equal(
            sol.action.per_server_load, ref.action.per_server_load
        )
        assert sol.info["final_objective"] == ref.info["final_objective"]
        assert sol.info["evaluations"] == ref.info["evaluations"]

    @pytest.mark.parametrize("shards", [2, 4])
    def test_nu_matches_centralized_waterfilling(self, model9, shards):
        p = make_problem(model9, lam_frac=0.4, q=12.0)
        sol = run_sharded(p, shards=shards)
        ld = distribute_load(p, sol.action.levels)
        assert sol.info["load_distribution"]["nu"] == ld.nu
        assert sol.info["load_distribution"]["regime"] == ld.regime
        np.testing.assert_array_equal(sol.action.per_server_load, ld.per_server_load)

    @pytest.mark.parametrize("shards", [3, 7])
    def test_failed_groups_match(self, model9, shards):
        failed = [1, 4]
        p = make_problem(model9, lam_frac=0.3, q=5.0)
        ref = run_gsd(p, failed_groups=failed)
        sol = run_sharded(p, shards=shards, failed_groups=failed)
        assert_bit_identical(sol, ref)
        assert np.all(sol.action.levels[failed] == -1)

    def test_initial_levels_match(self, model9):
        init = [0, 1, 2, 0, 1, 2, 0, 1, 2]
        p = make_problem(model9, lam_frac=0.25, q=4.0)
        ref = run_gsd(p, initial_levels=init)
        sol = run_sharded(p, shards=4, initial_levels=init)
        assert_bit_identical(sol, ref)

    def test_power_capped_problem_matches(self, model9):
        # Cap the facility just above what a mid-load slot needs so the
        # chain actually trips the screening path.
        probe = make_problem(model9, lam_frac=0.5, q=6.0)
        baseline = run_gsd(probe, iterations=20)
        cap = 1.12 * baseline.evaluation.facility_power
        p = dataclasses.replace(probe, peak_power_cap=cap)
        ref = run_gsd(p)
        sol = run_sharded(p, shards=4)
        assert_bit_identical(sol, ref)
        assert sol.info["fastpath"]["screened_infeasible"] >= 0

    def test_more_shards_than_groups_clamps(self, tiny_model):
        # A 1-group fleet under shards=4: plan clamps to one shard.
        fleet = Fleet([ServerGroup(opteron_2380(), 6)])
        model = DataCenterModel(fleet=fleet, beta=10.0)
        p = make_problem(model, lam_frac=0.5)
        ref = run_gsd(p, iterations=30)
        sol = run_sharded(p, shards=4, iterations=30)
        assert_bit_identical(sol, ref)
        assert sol.info["sharding"]["shards"] == 1

    @pytest.mark.parametrize("case", range(6))
    def test_randomized_fleets_property(self, case):
        """Random heterogeneous fleets, sizes, failures, and shard counts:
        sharded must track the single-process chain bit for bit."""
        rng = np.random.default_rng(1000 + case)
        G = int(rng.integers(2, 28))
        fleet = _mixed_fleet(G, seed=int(rng.integers(0, 2**31)))
        model = DataCenterModel(fleet=fleet, beta=float(rng.uniform(5.0, 20.0)))
        failed = None
        if G > 3 and rng.random() < 0.5:
            failed = rng.choice(G, size=int(rng.integers(1, G // 2)), replace=False)
        kw = dict(
            lam_frac=float(rng.uniform(0.15, 0.6)),
            q=float(rng.uniform(0.0, 15.0)),
            onsite=float(rng.uniform(0.0, 0.5)),
            price=float(rng.uniform(20.0, 80.0)),
        )
        p = make_problem(model, **kw)
        shards = int(rng.integers(1, min(7, G) + 1))
        seed = int(rng.integers(0, 2**31))
        ref = run_gsd(p, seed=seed, iterations=40, failed_groups=failed)
        sol = run_sharded(
            p, shards=shards, seed=seed, iterations=40, failed_groups=failed
        )
        assert_bit_identical(sol, ref)

    def test_thousand_group_fleet_matches(self):
        fleet = _mixed_fleet(1000, seed=42)
        model = DataCenterModel(fleet=fleet, beta=10.0)
        p = make_problem(model, lam_frac=0.45, q=6.0)
        ref = run_gsd(p, iterations=12)
        sol = run_sharded(p, shards=7, iterations=12)
        assert_bit_identical(sol, ref)

    @pytest.mark.slow
    def test_ten_thousand_group_fleet_matches(self):
        fleet = _mixed_fleet(10_000, seed=42)
        model = DataCenterModel(fleet=fleet, beta=10.0)
        p = make_problem(model, lam_frac=0.45, q=6.0)
        ref = run_gsd(p, iterations=8)
        sol = run_sharded(p, shards=7, iterations=8)
        assert_bit_identical(sol, ref)


# ---------------------------------------------------------------------------
# Local draw mode: shard-count invariance
# ---------------------------------------------------------------------------
class TestLocalDrawMode:
    def test_shard_count_invariant(self, model9):
        p = make_problem(model9, lam_frac=0.5, q=8.0)
        results = [
            run_sharded(p, shards=s, draw_mode="local", draw_seed=5)
            for s in (1, 3, 7)
        ]
        for other in results[1:]:
            np.testing.assert_array_equal(
                results[0].action.levels, other.action.levels
            )
            np.testing.assert_array_equal(
                results[0].action.per_server_load, other.action.per_server_load
            )
            assert results[0].info["final_objective"] == other.info["final_objective"]
            assert results[0].info["evaluations"] == other.info["evaluations"]

    def test_state_dict_resume_is_bit_identical(self, model9):
        """Checkpoint the worker substream positions mid-sequence, thaw in
        a *fresh* solver with a different shard count, and require the
        second solve to land exactly where an uninterrupted pair did."""
        p = make_problem(model9, lam_frac=0.5, q=8.0)
        with ShardedGSDSolver(
            shards=3, iterations=40, rng=np.random.default_rng(9),
            draw_mode="local", draw_seed=5,
        ) as golden:
            golden.solve(p)
            want = golden.solve(p)

        with ShardedGSDSolver(
            shards=3, iterations=40, rng=np.random.default_rng(9),
            draw_mode="local", draw_seed=5,
        ) as first:
            first.solve(p)
            state = json.loads(json.dumps(first.state_dict()))

        with ShardedGSDSolver(
            shards=5, iterations=40, rng=np.random.default_rng(0),
            draw_mode="local", draw_seed=5,
        ) as resumed:
            resumed.load_state_dict(state)
            got = resumed.solve(p)

        np.testing.assert_array_equal(got.action.levels, want.action.levels)
        np.testing.assert_array_equal(
            got.action.per_server_load, want.action.per_server_load
        )
        assert got.info["final_objective"] == want.info["final_objective"]


# ---------------------------------------------------------------------------
# Warm pool reuse and fingerprinting
# ---------------------------------------------------------------------------
class TestWarmPool:
    def test_workers_persist_across_solves(self, model9):
        p = make_problem(model9, lam_frac=0.5, q=8.0)
        with ShardedGSDSolver(
            shards=3, iterations=20, rng=np.random.default_rng(2)
        ) as solver:
            solver.solve(p)
            pids = [solver.pool.worker(i).pid for i in range(3)]
            solver.solve(p)
            assert [solver.pool.worker(i).pid for i in range(3)] == pids
            assert solver.pool.respawns == 0

    def test_fingerprint_ignores_slot_fields(self, model9, tiny_model):
        a = make_problem(model9, lam_frac=0.5, price=40.0)
        b = make_problem(model9, lam_frac=0.2, price=90.0, q=7.0, onsite=0.3)
        fp_a, _ = problem_fingerprint(a)
        fp_b, _ = problem_fingerprint(b)
        # Slot-varying inputs ride the per-solve "begin" frame; only the
        # structural problem (fleet, delay model, ...) keys the warm cache.
        assert fp_a == fp_b
        fp_c, _ = problem_fingerprint(make_problem(tiny_model, lam_frac=0.5))
        assert fp_c != fp_a

    def test_bulk_state_ships_once_per_fingerprint(self, model9):
        with ShardedGSDSolver(
            shards=2, iterations=15, rng=np.random.default_rng(4)
        ) as solver:
            solver.solve(make_problem(model9, lam_frac=0.5))
            fp, _ = problem_fingerprint(make_problem(model9, lam_frac=0.3))
            assert all(solver.pool.worker(i).knows(fp) for i in range(2))
            n_load = solver.solve(make_problem(model9, lam_frac=0.3)).info[
                "messages_by_kind"
            ]
            # load_problem travels out-of-band, so bus traffic never grows
            # with problem size -- and the second solve re-ships nothing.
            assert "load_problem" not in n_load


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------
class TestValidation:
    def test_constructor_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ShardedGSDSolver(shards=0)
        with pytest.raises(ValueError):
            ShardedGSDSolver(shards=2, iterations=0)
        with pytest.raises(ValueError):
            ShardedGSDSolver(shards=2, draw_mode="psychic")
        with pytest.raises(ValueError):
            ShardedGSDSolver(shards=2, retries=-1)
        with pytest.raises(ValueError):
            ShardedGSDSolver(shards=2, io_timeout_s=0.0)
        with pytest.raises(ValueError):
            ShardedGSDSolver(shards=2, delta=-1.0)

    def test_failed_group_out_of_range(self, model9):
        p = make_problem(model9, lam_frac=0.4)
        with ShardedGSDSolver(
            shards=2, iterations=5, failed_groups=[99]
        ) as solver:
            with pytest.raises(ValueError, match="out of range"):
                solver.solve(p)
