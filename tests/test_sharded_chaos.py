"""Cross-process chaos for the sharded solver: seeded bus faults over real
IPC, engine-level replay, and worker-death recovery.

Three contracts (docs/SCALING.md):

1. **Replay** -- a seeded :class:`FaultyMessageBus` in front of the shard
   proxies produces real loss/delay/duplication across the process
   boundary, and the whole run is a pure function of the seeds.
2. **Fault absorption** -- in central draw mode every handler the retry
   path re-delivers is idempotent, so when no round exhausts its retry
   budget the chaos run lands bit-identically on the reliable answer.
3. **Worker death is not a bus fault** -- SIGKILL of a shard worker at any
   point (mid-solve included) is healed by respawn + state replay without
   consuming the sender's retry budget; results stay bit-identical and the
   kill is visible only in the respawn counter.

The CLI test extends ``test_crash_recovery.py``: SIGKILL the whole
checkpointed ``repro run --shards`` process tree mid-horizon, resume, and
require bit-identity with an uninterrupted golden run.
"""

from __future__ import annotations

import json
import os
import signal
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cli import MANIFEST_NAME, _materialize_run
from repro.core.coca import COCA
from repro.faults import (
    DegradationPolicy,
    FaultInjector,
    FaultSchedule,
    FaultyMessageBus,
)
from repro.scenarios import small_scenario
from repro.sim import simulate
from repro.solvers import ShardedGSDSolver
from repro.state import latest_valid_checkpoint, record_mismatches
from tests.conftest import make_problem
from tests.test_crash_recovery import _kill_mid_run, _spawn_run
from tests.test_sharded import model9  # noqa: F401 (fixture)


def faulty_factory(seed, *, loss=0.0, delay=0.0, duplicate=0.0):
    """A per-solve bus factory salting ``seed`` with a solve counter, the
    same discipline as :meth:`FaultInjector.bus_factory`."""
    count = {"n": 0}

    def factory():
        salt = count["n"]
        count["n"] += 1
        return FaultyMessageBus(
            loss=loss,
            delay=delay,
            duplicate=duplicate,
            rng=np.random.default_rng([seed, salt]),
        )

    return factory


def _chaos_solve(problem, *, seed=17, **kw):
    with ShardedGSDSolver(
        shards=3,
        iterations=50,
        rng=np.random.default_rng(seed),
        retries=5,
        **kw,
    ) as solver:
        sol = solver.solve(problem)
        return sol, solver.last_bus


class TestSeededChaosOverIPC:
    def test_replay_is_bit_identical(self, model9):
        p = make_problem(model9, lam_frac=0.5, q=8.0)
        runs = []
        for _ in range(2):
            sol, bus = _chaos_solve(
                p,
                bus_factory=faulty_factory(11, loss=0.06, delay=0.04, duplicate=0.05),
            )
            runs.append((sol, bus.fault_stats()))
        (a, stats_a), (b, stats_b) = runs
        # The chaos was real...
        assert stats_a["dropped"] + stats_a["delayed"] + stats_a["duplicated"] > 0
        # ...and a pure function of the seeds.
        assert stats_a == stats_b
        np.testing.assert_array_equal(a.action.levels, b.action.levels)
        np.testing.assert_array_equal(
            a.action.per_server_load, b.action.per_server_load
        )
        assert a.info["final_objective"] == b.info["final_objective"]
        assert a.info["bus_faults"] == b.info["bus_faults"]
        assert a.info["retries_used"] == b.info["retries_used"]

    def test_absorbed_faults_match_reliable_run(self, model9):
        """Central-mode handlers are idempotent under re-delivery: as long
        as no exchange exhausts its retries, the chaos run must land on
        the reliable run's answer bit for bit."""
        p = make_problem(model9, lam_frac=0.5, q=8.0)
        reliable, _ = _chaos_solve(p)
        chaotic, bus = _chaos_solve(
            p, bus_factory=faulty_factory(23, loss=0.04, delay=0.03, duplicate=0.04)
        )
        stats = bus.fault_stats()
        assert stats["dropped"] + stats["delayed"] + stats["duplicated"] > 0
        np.testing.assert_array_equal(chaotic.action.levels, reliable.action.levels)
        np.testing.assert_array_equal(
            chaotic.action.per_server_load, reliable.action.per_server_load
        )
        assert chaotic.info["final_objective"] == reliable.info["final_objective"]
        assert chaotic.info["evaluations"] == reliable.info["evaluations"]

    def test_fault_injector_installs_onto_sharded(self):
        sched = FaultSchedule.generate(
            5, horizon=12, num_groups=9, loss=0.1, delay=0.05, duplicate=0.02
        )
        injector = FaultInjector(sched, num_groups=9)
        with ShardedGSDSolver(shards=2, iterations=5) as solver:
            assert injector.install(SimpleNamespace(solver=solver)) is True
            assert solver.bus_factory == injector.bus_factory
            assert solver.retries > 0
            bus = solver.bus_factory()
            assert isinstance(bus, FaultyMessageBus)


class TestEngineChaosReplay:
    def test_sharded_lossy_replay_bit_identical(self):
        """Full simulate() with group failures and a lossy bus over IPC,
        twice: the records must match field for field."""
        scenario = small_scenario(horizon=24, seed=11)
        sched = FaultSchedule.generate(
            7,
            horizon=scenario.horizon,
            num_groups=scenario.model.fleet.num_groups,
            failure_rate=0.05,
            loss=0.08,
            delay=0.03,
            duplicate=0.02,
        )
        records = []
        for _ in range(2):
            solver = ShardedGSDSolver(
                shards=2, iterations=8, rng=np.random.default_rng(5)
            )
            controller = COCA(
                scenario.model,
                scenario.environment.portfolio,
                v_schedule=150.0,
                alpha=scenario.alpha,
                solver=solver,
            )
            try:
                records.append(
                    simulate(
                        scenario.model,
                        controller,
                        scenario.environment,
                        faults=sched,
                        degradation=DegradationPolicy(retries=2),
                    )
                )
            finally:
                solver.close()
        a, b = records
        assert record_mismatches(a, b) == []
        np.testing.assert_allclose(a.served + a.dropped, a.arrival_actual, rtol=1e-9)


class _KillWorkerOnNthSend:
    """A bus that SIGKILLs a shard worker just before delivering the Nth
    message -- a deterministic mid-solve host failure."""

    def __init__(self, pool, victim: int, nth: int):
        from repro.solvers import MessageBus

        self._bus = MessageBus()
        self.pool = pool
        self.victim = victim
        self.nth = nth
        self.sent = 0
        self.killed = False

    def __getattr__(self, name):
        return getattr(self._bus, name)

    def send(self, message):
        self.sent += 1
        if not self.killed and self.sent == self.nth:
            handle = self.pool.worker(self.victim)
            os.kill(handle.pid, signal.SIGKILL)
            handle.process.join(timeout=10.0)
            self.killed = True
        return self._bus.send(message)


class TestWorkerDeathRecovery:
    def test_sigkill_mid_solve_is_bit_identical(self, model9):
        """Kill a worker between two bus deliveries mid-chain: the proxy
        heals it (respawn + state replay) without burning the sender's
        retry budget, and the answer does not move."""
        p = make_problem(model9, lam_frac=0.5, q=8.0)
        with ShardedGSDSolver(
            shards=3, iterations=50, rng=np.random.default_rng(17)
        ) as ref_solver:
            ref = ref_solver.solve(p)

        solver = ShardedGSDSolver(
            shards=3, iterations=50, rng=np.random.default_rng(17), retries=0
        )
        killer = {}

        def factory():
            bus = _KillWorkerOnNthSend(solver.pool, victim=1, nth=25)
            killer["bus"] = bus
            return bus

        solver.bus_factory = factory
        try:
            sol = solver.solve(p)
        finally:
            solver.close()
        assert killer["bus"].killed, "the kill never fired; lower nth"
        assert sol.info["sharding"]["respawns"] == 1
        np.testing.assert_array_equal(sol.action.levels, ref.action.levels)
        np.testing.assert_array_equal(
            sol.action.per_server_load, ref.action.per_server_load
        )
        assert sol.info["final_objective"] == ref.info["final_objective"]
        assert sol.info["evaluations"] == ref.info["evaluations"]

    def test_sigkill_between_solves_is_bit_identical(self, model9):
        p = make_problem(model9, lam_frac=0.45, q=5.0)
        with ShardedGSDSolver(
            shards=3, iterations=40, rng=np.random.default_rng(8)
        ) as golden_solver:
            golden_solver.solve(p)
            want = golden_solver.solve(p)

        with ShardedGSDSolver(
            shards=3, iterations=40, rng=np.random.default_rng(8)
        ) as solver:
            solver.solve(p)
            handle = solver.pool.worker(2)
            os.kill(handle.pid, signal.SIGKILL)
            handle.process.join(timeout=10.0)
            got = solver.solve(p)
            assert solver.pool.respawns == 1

        np.testing.assert_array_equal(got.action.levels, want.action.levels)
        np.testing.assert_array_equal(
            got.action.per_server_load, want.action.per_server_load
        )
        assert got.info["final_objective"] == want.info["final_objective"]

    def test_sigkill_under_chaos_bus_is_bit_identical(self, model9):
        """Worker death and modeled bus faults compose: the respawn covers
        the host failure, the seeded fault pattern stays untouched."""
        p = make_problem(model9, lam_frac=0.5, q=8.0)
        ref, _ = _chaos_solve(
            p, bus_factory=faulty_factory(31, loss=0.05, delay=0.03)
        )

        solver = ShardedGSDSolver(
            shards=3, iterations=50, rng=np.random.default_rng(17), retries=5
        )
        inner = faulty_factory(31, loss=0.05, delay=0.03)

        def factory():
            bus = inner()
            killer = _KillWorkerOnNthSend(solver.pool, victim=0, nth=30)
            killer._bus = bus
            # Route sends through the killer, faults through the seeded bus.
            return killer

        solver.bus_factory = factory
        try:
            sol = solver.solve(p)
        finally:
            solver.close()
        np.testing.assert_array_equal(sol.action.levels, ref.action.levels)
        assert sol.info["final_objective"] == ref.info["final_objective"]
        assert sol.info["sharding"]["respawns"] == 1


# ---------------------------------------------------------------------------
# CLI: SIGKILL the whole sharded run, resume from checkpoints
# ---------------------------------------------------------------------------
def _shutdown(controller) -> None:
    close = getattr(getattr(controller, "solver", None), "close", None)
    if callable(close):
        close()


def _resume_and_diff_sharded(ckpt_dir):
    """`test_crash_recovery._resume_and_diff`, with worker-pool teardown."""
    with open(os.path.join(ckpt_dir, MANIFEST_NAME)) as fh:
        manifest = json.load(fh)
    ckpt = latest_valid_checkpoint(ckpt_dir)
    assert ckpt is not None, "SIGKILL left no valid checkpoint behind"

    scenario, controller, injector, policy = _materialize_run(manifest)
    assert type(controller.solver).__name__ == "ShardedGSDSolver"
    try:
        resumed = simulate(
            scenario.model,
            controller,
            scenario.environment,
            faults=injector,
            degradation=policy,
            resume_from=ckpt,
        )
    finally:
        _shutdown(controller)
    scenario, controller, injector, policy = _materialize_run(manifest, scenario=scenario)
    try:
        golden = simulate(
            scenario.model,
            controller,
            scenario.environment,
            faults=injector,
            degradation=policy,
        )
    finally:
        _shutdown(controller)
    assert record_mismatches(resumed, golden) == [], (
        f"sharded resume from slot {ckpt.slot} diverged from the golden run"
    )


def test_cli_sigkill_then_resume_with_shards(tmp_path):
    ckpt_dir = str(tmp_path / "ckpts")
    proc = _spawn_run(
        [
            "--horizon", "96",
            "--seed", "7",
            "--shards", "2",
            "--iterations", "8",
            "--checkpoint-dir", ckpt_dir,
            "--checkpoint-every", "1",
            "--checkpoint-keep", "3",
            "--slot-sleep-ms", "40",
        ]
    )
    _kill_mid_run(proc, ckpt_dir, min_checkpoints=3)
    _resume_and_diff_sharded(ckpt_dir)
