"""Tests for the environment, slot engine, and record metrics."""

import numpy as np
import pytest

from repro.baselines import CarbonUnaware
from repro.core import COCA
from repro.energy import RenewablePortfolio
from repro.sim import Environment, simulate
from repro.sim.engine import realize_action
from repro.traces import Trace, overestimate


class TestEnvironment:
    def test_horizon_consistency_enforced(self, week_scenario):
        sc = week_scenario
        bad_price = Trace(np.ones(10))
        with pytest.raises(ValueError, match="horizon"):
            Environment(
                workload=sc.environment.actual_workload,
                portfolio=sc.environment.portfolio,
                price=bad_price,
            )

    def test_observation_fields(self, week_scenario):
        env = week_scenario.environment
        obs = env.observation(5)
        assert obs.t == 5
        assert obs.arrival_rate == env.predicted_workload[5]
        assert obs.onsite == env.portfolio.onsite[5]
        assert obs.price == env.price[5]

    def test_prediction_model_splits_views(self, week_scenario):
        env = week_scenario.environment
        pair = overestimate(env.actual_workload, 1.2)
        env2 = env.with_workload(pair)
        assert env2.observation(3).arrival_rate == pytest.approx(
            1.2 * env2.actual_arrival(3)
        )

    def test_with_portfolio(self, week_scenario):
        env = week_scenario.environment
        pf = env.portfolio.with_budget_split(env.portfolio.carbon_budget * 2, 0.5)
        assert env.with_portfolio(pf).portfolio.carbon_budget == pytest.approx(
            env.portfolio.carbon_budget * 2
        )


class TestRealizeAction:
    def test_exact_prediction_is_identity(self, week_scenario):
        sc = week_scenario
        unaware = CarbonUnaware(sc.model)
        obs = sc.environment.observation(12)
        sol = unaware.decide(obs)
        realized, dropped = realize_action(
            sc.model, sol.action, obs.arrival_rate, obs.arrival_rate
        )
        assert dropped == 0.0
        np.testing.assert_allclose(
            realized.per_server_load, sol.action.per_server_load
        )

    def test_overestimation_scales_down(self, week_scenario):
        sc = week_scenario
        unaware = CarbonUnaware(sc.model)
        obs = sc.environment.observation(12)
        sol = unaware.decide(obs)
        realized, dropped = realize_action(
            sc.model, sol.action, 0.5 * obs.arrival_rate, obs.arrival_rate
        )
        assert dropped == 0.0
        assert realized.served_load(sc.model.fleet) == pytest.approx(
            0.5 * obs.arrival_rate
        )

    def test_underestimation_uses_headroom(self, week_scenario):
        sc = week_scenario
        unaware = CarbonUnaware(sc.model)
        obs = sc.environment.observation(12)
        sol = unaware.decide(obs)
        actual = 1.2 * obs.arrival_rate
        realized, dropped = realize_action(sc.model, sol.action, actual, obs.arrival_rate)
        capacity_on = float(
            np.sum(
                sc.model.fleet.counts
                * sc.model.gamma
                * sc.model.fleet.group_speeds(sol.action.levels)
            )
        )
        served = realized.served_load(sc.model.fleet)
        assert served + dropped == pytest.approx(actual, rel=1e-9)
        assert served <= capacity_on * (1 + 1e-9)

    def test_zero_actual_clears_loads(self, week_scenario):
        sc = week_scenario
        unaware = CarbonUnaware(sc.model)
        sol = unaware.decide(sc.environment.observation(12))
        realized, dropped = realize_action(sc.model, sol.action, 0.0, 100.0)
        assert realized.served_load(sc.model.fleet) == 0.0
        assert dropped == 0.0

    def test_nothing_on_drops_everything(self, week_scenario):
        from repro.cluster import FleetAction

        sc = week_scenario
        off = FleetAction.all_off(sc.model.fleet)
        realized, dropped = realize_action(sc.model, off, 50.0, 0.0)
        assert dropped == pytest.approx(50.0)


class TestSimulationRecord:
    @pytest.fixture(scope="class")
    def record(self, week_scenario):
        sc = week_scenario
        coca = COCA(sc.model, sc.environment.portfolio, v_schedule=0.01)
        return simulate(sc.model, coca, sc.environment)

    def test_lengths(self, record, week_scenario):
        assert record.horizon == week_scenario.horizon
        assert len(record.queue) == record.horizon
        assert len(record.v_applied) == record.horizon

    def test_cost_decomposition(self, record):
        np.testing.assert_allclose(
            record.cost, record.electricity_cost + record.delay_cost
        )

    def test_served_matches_actual(self, record):
        np.testing.assert_allclose(
            record.served + record.dropped, record.arrival_actual, rtol=1e-9
        )

    def test_no_drops_under_perfect_prediction(self, record):
        assert record.dropped.sum() == pytest.approx(0.0, abs=1e-6)

    def test_running_average_endpoints(self, record):
        run = record.running_average_cost()
        assert run[0] == pytest.approx(record.cost[0])
        assert run[-1] == pytest.approx(record.average_cost)

    def test_moving_average_window(self, record):
        ma = record.moving_average_cost(window=24)
        assert ma[0] == pytest.approx(record.cost[0])
        assert ma[30] == pytest.approx(record.cost[7:31].mean())

    def test_deficit_series_sums_to_ledger(self, record, week_scenario):
        pf = week_scenario.environment.portfolio
        total = record.deficit_series(pf).sum()
        ledger = record.ledger(pf)
        assert total == pytest.approx(ledger.deficit, rel=1e-9)

    def test_summary_row(self, record, week_scenario):
        s = record.summary(week_scenario.environment.portfolio)
        row = s.as_row()
        assert row["controller"] == "COCA"
        assert s.average_cost == pytest.approx(record.average_cost)

    def test_brown_consistent_with_power(self, record):
        """brown = [facility - onsite]^+ slot by slot."""
        np.testing.assert_allclose(
            record.brown_energy,
            np.maximum(record.facility_power - record.onsite, 0.0),
            rtol=1e-9,
            atol=1e-12,
        )

    def test_array_length_validation(self, record):
        from dataclasses import replace

        with pytest.raises(ValueError, match="length"):
            replace(record, cost=record.cost[:-1])
