"""Randomized cross-solver consistency: every P3 engine vs an exhaustive oracle.

Property: on randomly drawn small fleets and slot problems -- heterogeneous
profiles, renewables, carbon weights, operational caps (section 3.1), failed
groups -- the engines agree with a test-local exhaustive enumeration:

- coordinate descent (enough restarts) finds the oracle optimum exactly;
- GSD with a long chain and a high/adaptive temperature lands within 2%
  (Theorem 1's convergence is in the limit; 2% mirrors the existing GSD
  validation tests);
- the homogeneous enumeration engine equals the oracle on single-profile
  fleets;
- every property holds with the fast-path cache on and off, with identical
  objectives between the two (bit-identity of the cache), and warm starts
  stay inside their 1e-9 contract.

The local oracle -- unlike :class:`BruteForceSolver` -- can pin failed
groups off and recompute the optimum under caps chosen *after* looking at
the config distribution, which is how the caps are made binding.
"""

from itertools import product

import numpy as np
import pytest

from repro.cluster import Fleet, FleetAction, ServerGroup, cubic_dvfs_profile, opteron_2380
from repro.core import DataCenterModel
from repro.solvers import (
    BruteForceSolver,
    CoordinateDescentSolver,
    GSDSolver,
    HomogeneousEnumerationSolver,
    InfeasibleError,
    distribute_load,
    geometric_temperature,
)

_PROFILES = (opteron_2380, cubic_dvfs_profile)


def random_model(rng, *, homogeneous=False):
    G = int(rng.integers(2, 5))
    if homogeneous:
        count = int(rng.integers(4, 13))
        groups = [ServerGroup(opteron_2380(), count) for _ in range(G)]
    else:
        groups = [
            ServerGroup(_PROFILES[int(rng.integers(0, 2))](), int(rng.integers(4, 13)))
            for _ in range(G)
        ]
    return DataCenterModel(fleet=Fleet(groups), beta=10.0)


def random_problem(model, rng):
    lam = float(rng.uniform(0.05, 0.85)) * model.fleet.capacity(model.gamma)
    return model.slot_problem(
        arrival_rate=lam,
        onsite=float(rng.uniform(0.0, 0.004)),
        price=float(rng.uniform(10.0, 80.0)),
        q=float(rng.choice([0.0, 5.0, 50.0])),
    )


def enumerate_feasible(problem, failed=()):
    """All ``(levels, evaluation)`` pairs whose inner solve succeeds, with
    ``failed`` groups pinned off -- the restricted enumeration BruteForce
    does not offer."""
    fleet = problem.fleet
    ranges = [
        [-1] if g in failed else range(-1, int(k))
        for g, k in enumerate(fleet.num_levels)
    ]
    out = []
    for combo in product(*ranges):
        levels = np.asarray(combo, dtype=np.int64)
        try:
            dist = distribute_load(problem, levels)
        except InfeasibleError:
            continue
        action = FleetAction(levels=levels, per_server_load=dist.per_server_load)
        out.append((levels, problem.evaluate(action)))
    return out


def oracle_objective(problem, failed=()):
    """Exhaustive optimum honoring caps and failed groups; inf if none."""
    best = np.inf
    for _, ev in enumerate_feasible(problem, failed):
        if problem.violates_caps(ev):
            continue
        best = min(best, ev.objective)
    return best


def gsd_long_chain(problem, seed, **kw):
    delta = GSDSolver.auto_delta(problem, greediness=2.0)
    return GSDSolver(
        iterations=3000,
        delta=geometric_temperature(delta, 1.002),
        rng=np.random.default_rng(seed),
        **kw,
    ).solve(problem)


class TestCrossSolverConsistency:
    @pytest.mark.parametrize("seed", range(6))
    def test_engines_agree_with_oracle(self, seed):
        rng = np.random.default_rng(1000 + seed)
        model = random_model(rng)
        p = random_problem(model, rng)
        oracle = oracle_objective(p)
        assert np.isfinite(oracle)

        cd = CoordinateDescentSolver(restarts=8, rng=np.random.default_rng(seed))
        cd_obj = cd.solve(p).objective
        assert cd_obj == pytest.approx(oracle, rel=1e-9)

        gsd = gsd_long_chain(p, seed)
        assert gsd.objective <= oracle * 1.02 + 1e-12
        # and never better than the exhaustive optimum:
        assert gsd.objective >= oracle * (1.0 - 1e-9) - 1e-12

        bf = BruteForceSolver().solve(p)
        assert bf.objective == pytest.approx(oracle, rel=1e-12)

    @pytest.mark.parametrize("seed", range(4))
    def test_engines_agree_under_binding_caps(self, seed):
        """Caps drawn from the config distribution so they *bind* (exclude
        the unconstrained optimum) while leaving feasible configurations."""
        rng = np.random.default_rng(2000 + seed)
        model = random_model(rng)
        p = random_problem(model, rng)
        configs = enumerate_feasible(p)
        assert configs
        # Anchor the caps at a random feasible config so the capped problem
        # is never empty, then tighten to that config's exact footprint.
        _, anchor = configs[int(rng.integers(0, len(configs)))]
        import dataclasses

        capped = dataclasses.replace(
            p,
            peak_power_cap=anchor.facility_power * (1.0 + 1e-9)
            if anchor.facility_power > 0
            else None,
            max_delay_cost=anchor.delay_cost * (1.0 + 1e-9),
        )
        oracle = oracle_objective(capped)
        assert np.isfinite(oracle)

        # Greedy descent has no global guarantee once caps carve holes in
        # the lattice: assert feasibility and one-sided optimality only (it
        # may also legitimately find *no* cap-feasible configuration).
        try:
            cd_sol = CoordinateDescentSolver(
                restarts=8, rng=np.random.default_rng(seed)
            ).solve(capped)
        except InfeasibleError:
            cd_sol = None
        if cd_sol is not None:
            assert np.isfinite(cd_sol.objective)
            assert not capped.violates_caps(cd_sol.evaluation)
            assert cd_sol.objective >= oracle * (1.0 - 1e-9) - 1e-12

        # GSD moves only through cap-feasible states, so the capped optimum
        # may be unreachable from its start; a clean InfeasibleError (not a
        # silently cap-violating action) is the accepted outcome then.
        try:
            gsd = gsd_long_chain(capped, seed)
        except InfeasibleError:
            gsd = None
        if gsd is not None:
            assert not capped.violates_caps(gsd.evaluation)
            assert (
                oracle * (1.0 - 1e-9) - 1e-12
                <= gsd.objective
                <= oracle * 1.02 + 1e-12
            )

        bf = BruteForceSolver().solve(capped)
        assert bf.objective == pytest.approx(oracle, rel=1e-12)

    @pytest.mark.parametrize("seed", range(3))
    def test_failed_groups_vs_restricted_oracle(self, seed):
        rng = np.random.default_rng(3000 + seed)
        model = random_model(rng)
        G = model.fleet.num_groups
        failed = int(rng.integers(0, G))
        p = random_problem(model, rng)
        oracle = oracle_objective(p, failed={failed})
        if not np.isfinite(oracle):
            pytest.skip("drawn load needs the failed group")

        for use_cache in (True, False):
            sol = gsd_long_chain(
                p, seed, failed_groups=[failed], use_cache=use_cache
            )
            assert sol.action.levels[failed] == -1
            assert sol.action.per_server_load[failed] == 0.0
            assert (
                oracle * (1.0 - 1e-9) - 1e-12
                <= sol.objective
                <= oracle * 1.02 + 1e-12
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_homogeneous_enumeration_matches_oracle(self, seed):
        rng = np.random.default_rng(4000 + seed)
        model = random_model(rng, homogeneous=True)
        p = random_problem(model, rng)
        oracle = oracle_objective(p)
        en = HomogeneousEnumerationSolver().solve(p)
        assert en.objective == pytest.approx(oracle, rel=1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_cache_on_off_and_warm_agree(self, seed):
        rng = np.random.default_rng(5000 + seed)
        model = random_model(rng)
        p = random_problem(model, rng)

        gsd_on = gsd_long_chain(p, seed, use_cache=True)
        gsd_off = gsd_long_chain(p, seed, use_cache=False)
        assert gsd_on.objective == gsd_off.objective  # exact: cache is a memo

        cd_on = CoordinateDescentSolver(
            restarts=4, rng=np.random.default_rng(seed), use_cache=True
        ).solve(p)
        cd_off = CoordinateDescentSolver(
            restarts=4, rng=np.random.default_rng(seed), use_cache=False
        ).solve(p)
        assert cd_on.objective == cd_off.objective

        cd_warm = CoordinateDescentSolver(
            restarts=4, rng=np.random.default_rng(seed), warm_start=True
        ).solve(p)
        assert cd_warm.objective == pytest.approx(cd_on.objective, rel=1e-9)
