"""Cross-validation of the P3 engines against the brute-force oracle.

Theorem 1 says GSD converges to the global optimum as delta grows; the
enumeration engine is exact for homogeneous fleets by construction; and
coordinate descent should find the optimum on these small instances.  All
three are checked against exhaustive search on randomized slot problems.
"""

import numpy as np
import pytest

from repro.solvers import (
    BruteForceSolver,
    CoordinateDescentSolver,
    GSDSolver,
    HomogeneousEnumerationSolver,
    InfeasibleError,
    geometric_temperature,
)
from tests.conftest import make_problem


def random_problem(model, rng, *, q_choices=(0.0, 5.0, 50.0)):
    return make_problem(
        model,
        lam_frac=float(rng.uniform(0.02, 0.9)),
        onsite=float(rng.uniform(0.0, 0.004)),
        price=float(rng.uniform(10.0, 80.0)),
        q=float(rng.choice(q_choices)),
    )


class TestBruteForce:
    def test_config_count(self, tiny_model):
        assert BruteForceSolver().config_count(make_problem(tiny_model)) == 5**3

    def test_cap_enforced(self, tiny_model):
        solver = BruteForceSolver(max_configs=10)
        with pytest.raises(ValueError, match="cap"):
            solver.solve(make_problem(tiny_model))

    def test_infeasible_slot(self, tiny_model):
        with pytest.raises(InfeasibleError):
            BruteForceSolver().solve(make_problem(tiny_model, lam_frac=1.2))

    def test_action_is_valid(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.5)
        sol = BruteForceSolver().solve(p)
        tiny_model.fleet.validate_action(
            sol.action.levels, sol.action.per_server_load, p.arrival_rate, p.gamma
        )


class TestEnumerationExactness:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_homogeneous(self, tiny_model, seed):
        rng = np.random.default_rng(seed)
        p = random_problem(tiny_model, rng)
        bf = BruteForceSolver().solve(p)
        en = HomogeneousEnumerationSolver().solve(p)
        assert en.objective == pytest.approx(bf.objective, rel=1e-9, abs=1e-12)

    def test_rejects_heterogeneous(self, hetero_model):
        with pytest.raises(ValueError, match="single-profile"):
            HomogeneousEnumerationSolver().solve(make_problem(hetero_model))

    def test_zero_load_goes_all_off(self, tiny_model):
        sol = HomogeneousEnumerationSolver().solve(make_problem(tiny_model, lam_frac=0.0))
        assert sol.evaluation.it_power == 0.0
        assert np.all(sol.action.levels == -1)

    def test_reports_diagnostics(self, tiny_model):
        sol = HomogeneousEnumerationSolver().solve(make_problem(tiny_model, lam_frac=0.5))
        assert sol.info["servers_on"] > 0
        assert sol.info["candidates"] > 0

    def test_switching_aware_avoids_thrash(self, tiny_model):
        """With huge switching costs and all servers previously on, the
        switching-aware solver should keep them on rather than power-cycle
        down and up."""
        from dataclasses import replace

        from repro.cluster import SwitchingCostModel

        model = replace(
            tiny_model, switching=SwitchingCostModel(energy_per_toggle=10.0, charge_off=True)
        )
        p = model.slot_problem(
            arrival_rate=0.3 * model.fleet.capacity(model.gamma),
            onsite=0.0,
            price=40.0,
            prev_on_counts=model.fleet.counts.copy(),
        )
        aware = HomogeneousEnumerationSolver(switching_aware=True).solve(p)
        naive = HomogeneousEnumerationSolver(switching_aware=False).solve(p)
        assert aware.action.active_servers(model.fleet) >= naive.action.active_servers(
            model.fleet
        )
        assert aware.evaluation.switching_energy <= naive.evaluation.switching_energy


class TestCoordinateDescent:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, hetero_model, seed):
        rng = np.random.default_rng(seed)
        p = random_problem(hetero_model, rng, q_choices=(0.0, 20.0))
        bf = BruteForceSolver().solve(p)
        cd = CoordinateDescentSolver(restarts=8).solve(p)
        assert cd.objective <= bf.objective * (1.0 + 1e-9) + 1e-12

    def test_deterministic_given_seed(self, hetero_model):
        p = make_problem(hetero_model, lam_frac=0.4)
        a = CoordinateDescentSolver(rng=np.random.default_rng(3), restarts=2).solve(p)
        b = CoordinateDescentSolver(rng=np.random.default_rng(3), restarts=2).solve(p)
        assert a.objective == b.objective

    def test_validation(self):
        with pytest.raises(ValueError):
            CoordinateDescentSolver(max_sweeps=0)
        with pytest.raises(ValueError):
            CoordinateDescentSolver(restarts=0)


class TestGSD:
    @pytest.mark.parametrize("seed", range(5))
    def test_converges_to_optimum_homogeneous(self, tiny_model, seed):
        """Theorem 1: large delta concentrates on the global optimum."""
        rng = np.random.default_rng(seed)
        p = random_problem(tiny_model, rng)
        bf = BruteForceSolver().solve(p)
        delta = GSDSolver.auto_delta(p, greediness=3.0)
        gsd = GSDSolver(
            iterations=3000,
            delta=geometric_temperature(delta, 1.001),
            rng=np.random.default_rng(seed + 100),
        ).solve(p)
        assert gsd.objective <= bf.objective * 1.02 + 1e-12

    @pytest.mark.parametrize("seed", range(4))
    def test_converges_heterogeneous_with_adaptive_delta(self, hetero_model, seed):
        rng = np.random.default_rng(seed)
        p = random_problem(hetero_model, rng, q_choices=(0.0, 20.0))
        delta = GSDSolver.auto_delta(p, greediness=2.0)
        gsd = GSDSolver(
            iterations=4000,
            delta=geometric_temperature(delta, 1.002),
            rng=np.random.default_rng(seed),
        ).solve(p)
        bf = BruteForceSolver().solve(p)
        assert gsd.objective <= bf.objective * 1.02 + 1e-12

    def test_history_recorded(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.5)
        sol = GSDSolver(iterations=200, delta=1e3, record_history=True).solve(p)
        trace = sol.info["trace"]
        assert len(trace) == 200
        # Best-so-far is monotone nonincreasing.
        assert np.all(np.diff(trace.best_objective) <= 1e-12)
        assert 0.0 <= trace.acceptance_rate <= 1.0

    def test_best_never_worse_than_initial(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.6)
        levels0 = np.full(3, 3, dtype=np.int64)
        from repro.solvers import solve_fixed_levels

        _, ev0 = solve_fixed_levels(p, levels0)
        sol = GSDSolver(iterations=500, delta=1e5, initial_levels=levels0).solve(p)
        assert sol.objective <= ev0.objective + 1e-12

    def test_infeasible_initial_recovers(self, tiny_model):
        p = make_problem(tiny_model, lam_frac=0.8)
        sol = GSDSolver(
            iterations=300, delta=1e5, initial_levels=np.array([-1, -1, -1])
        ).solve(p)
        assert np.isfinite(sol.objective)

    def test_larger_delta_more_greedy(self, tiny_model):
        """Fig. 4(a) mechanism: larger delta accepts fewer uphill moves."""
        p = make_problem(tiny_model, lam_frac=0.5)
        small = GSDSolver(
            iterations=800,
            delta=GSDSolver.auto_delta(p, greediness=0.05),
            rng=np.random.default_rng(0),
            record_history=True,
        ).solve(p)
        large = GSDSolver(
            iterations=800,
            delta=GSDSolver.auto_delta(p, greediness=100.0),
            rng=np.random.default_rng(0),
            record_history=True,
        ).solve(p)
        # The hot chain wanders more: its mean chain objective sits above
        # the greedy chain's.
        assert (
            small.info["trace"].chain_objective.mean()
            > large.info["trace"].chain_objective.mean()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            GSDSolver(iterations=0)
        with pytest.raises(ValueError):
            GSDSolver(delta=-1.0)
        with pytest.raises(ValueError):
            geometric_temperature(-1.0)
        with pytest.raises(ValueError):
            geometric_temperature(1.0, 0.5)
