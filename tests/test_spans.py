"""Tests for hierarchical spans, timer delegation, reservoirs, /metrics.

The load-bearing guarantees of the PR-7 observability layer:

- spans observe, never participate: a span-instrumented run is bit-identical
  to an uninstrumented one;
- span events survive the process-pool sweep merge with resolvable parent
  links and a deterministic structure;
- the GSD hot loop's named child buckets account for >=90% of solver wall
  time (profiles must be actionable, not "misc");
- bounded (reservoir) histograms stay exact for count/total/max and keep
  percentiles within a pinned error band;
- the Prometheus exposition is stable text, golden-pinned.
"""

from __future__ import annotations

import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.analysis import sweep_constant_v
from repro.core import COCA
from repro.scenarios import paper_scenario
from repro.serve import StatusBoard, StatusServer
from repro.sim import simulate
from repro.solvers import GSDSolver
from repro.telemetry import (
    NULL_SPAN,
    MetricsRegistry,
    Telemetry,
    render_prometheus,
    render_trace_summary,
    span_hotspots,
)


def _span_events(telemetry):
    return [e for e in telemetry.tracer.events if e["kind"] == "span"]


class TestSpanAPI:
    def test_nested_spans_link_parents(self):
        tele = Telemetry.recording()
        with tele.span("outer") as outer:
            with tele.span("inner"):
                pass
        events = _span_events(tele)
        assert [e["name"] for e in events] == ["inner", "outer"]
        inner, outer_ev = events
        assert inner["parent_id"] == outer_ev["span_id"]
        assert inner["depth"] == 1 and outer_ev["depth"] == 0
        assert outer_ev["parent_id"] is None
        assert outer.elapsed >= inner["elapsed_s"]

    def test_exclusive_subtracts_children(self):
        tele = Telemetry.recording()
        with tele.span("outer"):
            with tele.span("child"):
                pass
        outer_ev = _span_events(tele)[-1]
        child_ev = _span_events(tele)[0]
        assert outer_ev["exclusive_s"] == pytest.approx(
            outer_ev["elapsed_s"] - child_ev["elapsed_s"]
        )

    def test_add_buckets_ride_the_parent_event(self):
        tele = Telemetry.recording()
        with tele.span("solve") as sp:
            for _ in range(100):
                sp.add("bisect", 0.001)
            sp.add("screen", 0.002, count=3)
        (event,) = _span_events(tele)  # one event, not one per bucket
        assert event["name"] == "solve"
        children = event["children"]
        assert children["bisect"][0] == 100
        assert children["bisect"][1] == pytest.approx(0.1)
        assert children["screen"][0] == 3
        # bucket time is attributed to the parent's children (clamped at 0:
        # the fabricated 102 ms here dwarfs the real elapsed time)
        assert event["exclusive_s"] == pytest.approx(
            max(event["elapsed_s"] - 0.102, 0.0)
        )

    def test_disabled_telemetry_returns_null_span(self):
        tele = Telemetry()  # no tracer -> spans short-circuit
        sp = tele.span("anything")
        assert sp is NULL_SPAN and not sp
        with sp as inner:
            inner.add("ignored", 1.0)

    def test_exception_unwinds_the_stack(self):
        tele = Telemetry.recording()
        with pytest.raises(RuntimeError):
            with tele.span("outer"):
                with tele.span("inner"):
                    raise RuntimeError("boom")
        assert not tele.spans.active
        assert [e["name"] for e in _span_events(tele)] == ["inner", "outer"]

    def test_timer_delegates_to_open_span(self):
        tele = Telemetry.recording()
        with tele.span("slot"):
            with tele.timer("solve_ms") as timer:
                pass
        (event,) = _span_events(tele)
        assert event["name"] == "slot"
        assert event["children"]["solve_ms"][0] == 1
        assert event["children"]["solve_ms"][1] == pytest.approx(timer.elapsed)
        # the histogram still observed exactly one sample
        assert tele.metrics.histogram("solve_ms").count == 1

    def test_timer_without_span_is_plain(self):
        tele = Telemetry.recording()
        with tele.timer("solve_ms"):
            pass
        assert _span_events(tele) == []
        assert tele.metrics.histogram("solve_ms").count == 1


class TestSpanBitIdentity:
    """Spans observe the run; they never participate in it."""

    def test_instrumented_matches_uninstrumented(self, week_scenario):
        def run(telemetry):
            controller = COCA(
                week_scenario.model,
                week_scenario.environment.portfolio,
                v_schedule=120.0,
            )
            return simulate(
                week_scenario.model,
                controller,
                week_scenario.environment,
                telemetry=telemetry,
            )

        plain = run(None)
        spanned = run(Telemetry.recording())
        for field in ("cost", "brown_energy", "active_servers", "queue", "dropped"):
            np.testing.assert_array_equal(
                getattr(plain, field), getattr(spanned, field)
            )


class TestSweepMerge:
    """Span events survive the process-pool merge deterministically."""

    def _structure(self, telemetry):
        """Sorted (indented-name, count) rows -- the tree's shape.  Sibling
        *order* in the table follows wall time, which varies run to run, so
        structure comparisons must not depend on it."""
        events = [e for e in telemetry.tracer.events if e["kind"] == "span"]
        table = span_hotspots(events, top=100)
        return sorted((row["span"], row["count"]) for row in table)

    def test_parallel_merge_matches_serial_structure(self, week_scenario):
        values = [50.0, 150.0]
        serial = Telemetry.recording()
        sweep_constant_v(week_scenario, values, telemetry=serial)
        parallel = Telemetry.recording()
        sweep_constant_v(week_scenario, values, workers=2, telemetry=parallel)
        assert self._structure(parallel) == self._structure(serial)

    def test_parallel_merge_is_reproducible(self, week_scenario):
        values = [50.0, 150.0]
        a, b = Telemetry.recording(), Telemetry.recording()
        sweep_constant_v(week_scenario, values, workers=2, telemetry=a)
        sweep_constant_v(week_scenario, values, workers=2, telemetry=b)
        assert self._structure(a) == self._structure(b)

    def test_merged_parent_links_resolve(self, week_scenario):
        tele = Telemetry.recording()
        sweep_constant_v(week_scenario, [50.0, 150.0], workers=2, telemetry=tele)
        events = [e for e in tele.tracer.events if e["kind"] == "span"]
        assert events, "parallel sweep should carry span events back"
        known = {(e["run_id"], e["span_id"]) for e in events}
        for event in events:
            if event["parent_id"] is not None:
                assert (event["run_id"], event["parent_id"]) in known


class TestGSDAttribution:
    def test_paper_scale_solve_attributes_90pct(self):
        scenario = paper_scenario(horizon=24, num_groups=200)
        model = scenario.model
        problem = model.slot_problem(
            arrival_rate=0.6 * model.fleet.capacity(model.gamma),
            onsite=0.0,
            price=40.0,
            q=0.0,
            V=100.0,
        )
        tele = Telemetry.recording()
        solver = GSDSolver(
            iterations=500, rng=np.random.default_rng(7), warm_start=True
        )
        solver.bind_telemetry(tele)
        solver.solve(problem)
        events = _span_events(tele)
        solve_ev = next(e for e in events if e["name"] == "gsd.solve")
        child_s = sum(
            seconds for _count, seconds in solve_ev["children"].values()
        ) + sum(
            e["elapsed_s"]
            for e in events
            if e["parent_id"] == solve_ev["span_id"]
        )
        assert child_s / solve_ev["elapsed_s"] >= 0.90

    def test_hotspot_table_renders_tree(self):
        tele = Telemetry.recording()
        with tele.span("slot"):
            with tele.span("gsd.solve") as sp:
                sp.add("gsd.inner_bisection", 0.004, count=9)
        events = tele.tracer.events
        rows = span_hotspots(events)
        spans = [row["span"] for row in rows]
        assert spans[0] == "slot"
        assert any(s.strip() == "gsd.solve" for s in spans)
        assert any(s.strip() == "gsd.inner_bisection" for s in spans)
        # indentation encodes depth
        depth = {s.strip(): len(s) - len(s.lstrip()) for s in spans}
        assert depth["slot"] < depth["gsd.solve"] < depth["gsd.inner_bisection"]

    def test_render_summary_spans_flag(self):
        tele = Telemetry.recording()
        with tele.span("slot"):
            pass
        text = render_trace_summary(tele.tracer.events, spans=True)
        assert "span hotspots" in text
        legacy = render_trace_summary(
            [{"kind": "slot", "t": 0, "run_id": "r", "schema_version": 2}],
            spans=True,
        )
        assert "no span events" in legacy


class TestReservoirHistogram:
    def test_exact_until_capacity_and_running_stats(self):
        reg = MetricsRegistry(reservoir=64, seed=1)
        h = reg.histogram("lat")
        for v in range(200):
            h.observe(float(v))
        assert h.count == 200
        assert h.total == pytest.approx(sum(range(200)))
        assert h.max == 199.0
        assert len(h._values) == 64

    def test_same_seed_same_samples(self):
        def build(seed):
            reg = MetricsRegistry(reservoir=32, seed=seed)
            h = reg.histogram("lat")
            for v in range(500):
                h.observe(float(v))
            return list(h._values)

        assert build(3) == build(3)
        assert build(3) != build(4)

    def test_percentile_error_bounded(self):
        # Uniform stream 0..9999: reservoir p50/p90/p99 must stay within
        # 5 percentile points of truth at N=1024 (Algorithm R is unbiased;
        # this band is generous enough to be seed-stable, tight enough to
        # catch a broken sampler).
        reg = MetricsRegistry(reservoir=1024, seed=0)
        h = reg.histogram("lat")
        values = np.arange(10_000, dtype=float)
        for v in values:
            h.observe(float(v))
        sample = np.asarray(h._values)
        for q in (50, 90, 99):
            truth = np.percentile(values, q)
            got = np.percentile(sample, q)
            assert abs(got - truth) <= 0.05 * 10_000, (q, got, truth)

    def test_unbounded_default_unchanged(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in range(100):
            h.observe(float(v))
        assert len(h._values) == 100 and h.count == 100

    def test_merge_bounded_state_preserves_exact_stats(self):
        worker = MetricsRegistry(reservoir=16, seed=2)
        h = worker.histogram("lat")
        for v in range(100):
            h.observe(float(v))
        parent = MetricsRegistry(reservoir=16, seed=2)
        parent.merge_state(worker.state())
        merged = parent.histogram("lat")
        assert merged.count == 100
        assert merged.total == pytest.approx(sum(range(100)))
        assert merged.max == 99.0

    def test_rejects_nonpositive_reservoir(self):
        with pytest.raises(ValueError):
            MetricsRegistry(reservoir=0).histogram("lat")


class TestPrometheus:
    def test_golden_exposition(self):
        reg = MetricsRegistry()
        reg.counter("sim.slots").inc(7)
        reg.gauge("sim.queue_depth").set(2.5)
        h = reg.histogram("coca.solve_ms")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert render_prometheus(reg) == (
            "# HELP repro_coca_solve_ms Summary of histogram 'coca.solve_ms'.\n"
            "# TYPE repro_coca_solve_ms summary\n"
            'repro_coca_solve_ms{quantile="0.5"} 2.5\n'
            'repro_coca_solve_ms{quantile="0.9"} 3.7\n'
            'repro_coca_solve_ms{quantile="0.99"} 3.9699999999999998\n'
            "repro_coca_solve_ms_sum 10.0\n"
            "repro_coca_solve_ms_count 4\n"
            "# HELP repro_sim_queue_depth Gauge 'sim.queue_depth'.\n"
            "# TYPE repro_sim_queue_depth gauge\n"
            "repro_sim_queue_depth 2.5\n"
            "# HELP repro_sim_slots_total Counter 'sim.slots'.\n"
            "# TYPE repro_sim_slots_total counter\n"
            "repro_sim_slots_total 7.0\n"
        )

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_http_metrics_endpoint(self):
        board = StatusBoard()
        board.update(state="running")
        reg = MetricsRegistry()
        reg.counter("sim.slots").inc(3)
        server = StatusServer(board, port=0, registry=reg)
        try:
            with urllib.request.urlopen(f"{server.url}/metrics") as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                body = resp.read().decode("utf-8")
            assert "repro_sim_slots_total 3" in body
        finally:
            server.close()

    def test_metrics_404_without_registry(self):
        board = StatusBoard()
        server = StatusServer(board, port=0)
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{server.url}/metrics")
            assert err.value.code == 404
        finally:
            server.close()


class TestSlotAttributionGauges:
    def test_per_slot_cost_and_carbon_gauges(self, week_scenario):
        tele = Telemetry.recording()
        controller = COCA(
            week_scenario.model,
            week_scenario.environment.portfolio,
            v_schedule=120.0,
        )
        record = simulate(
            week_scenario.model,
            controller,
            week_scenario.environment,
            telemetry=tele,
        )
        gauges = tele.metrics.state()["gauges"]
        assert gauges["sim.slot"] == week_scenario.horizon - 1
        assert gauges["sim.slot_cost_dollars"] == pytest.approx(
            float(record.cost[-1])
        )
        assert "sim.queue_depth" in gauges  # the carbon-deficit series
        assert "sim.slot_solve_time_s" in gauges
