"""Crash-safe state: checkpoint format, round-trips, rotation, resume.

Four contracts anchor ``repro.state`` (docs/OPERATIONS.md):

1. **Byte-identity** — save -> load -> save of a checkpoint is
   byte-identical for arbitrary JSON-safe run state (hypothesis-pinned).
2. **Corruption detection** — truncation at any point and a single bit
   flip anywhere are always rejected, never silently loaded.
3. **Recovery** — a corrupt newest rotation entry falls back to the
   previous valid one, with a ``state.checkpoint_rejected`` event.
4. **Resume replay** — kill-at-slot-k plus resume reproduces the
   remaining slots bit-identically, including under chaos schedules
   with a lossy distributed bus.
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coca import COCA
from repro.faults import DegradationPolicy, FaultInjector, FaultSchedule
from repro.scenarios import small_scenario
from repro.sim import simulate
from repro.solvers import DistributedGSD, GSDSolver
from repro.state import (
    CheckpointError,
    CheckpointWriter,
    atomic_write_bytes,
    atomic_write_text,
    canonical_dumps,
    checkpoint_path,
    commit_file,
    decode_action,
    decode_array,
    decode_rng,
    dumps_checkpoint,
    encode_action,
    encode_array,
    encode_rng,
    environment_fingerprint,
    latest_valid_checkpoint,
    list_checkpoints,
    load_checkpoint,
    load_record,
    loads_checkpoint,
    record_mismatches,
    save_record,
    write_checkpoint,
)
from repro.telemetry import InMemoryTracer, Telemetry


def _record_fields_equal(a, b) -> list[str]:
    return record_mismatches(a, b)


# ------------------------------------------------------------- strategies
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=16),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=24,
)
#: Arbitrary mid-run state payloads: what a checkpoint must round-trip.
states = st.dictionaries(st.text(max_size=8), json_values, max_size=6)
slots = st.integers(min_value=0, max_value=10**7)


# --------------------------------------------------------------- atomic IO
class TestAtomic:
    def test_write_bytes_replaces_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(str(path), b"one")
        atomic_write_bytes(str(path), b"two")
        assert path.read_bytes() == b"two"
        assert os.listdir(tmp_path) == ["out.bin"]

    def test_write_text(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "héllo\n")
        assert path.read_text() == "héllo\n"

    def test_commit_file(self, tmp_path):
        final = tmp_path / "trace.jsonl"
        fh = open(str(final) + ".part", "w")
        fh.write("line\n")
        commit_file(fh, str(final))
        assert final.read_text() == "line\n"
        assert not os.path.exists(str(final) + ".part")


# ------------------------------------------------------------- serializers
class TestSerialize:
    @given(states)
    @settings(max_examples=100, deadline=None)
    def test_canonical_dumps_round_trip_is_byte_identical(self, state):
        first = canonical_dumps(state)
        second = canonical_dumps(json.loads(first))
        assert first == second

    @pytest.mark.parametrize("dtype", ["float64", "int64", "float32"])
    def test_array_round_trip_preserves_dtype(self, dtype):
        arr = np.array([1, 2, 3], dtype=dtype)
        back = decode_array(encode_array(arr))
        assert back.dtype == arr.dtype
        assert np.array_equal(back, arr)

    def test_array_none_passes_through(self):
        assert encode_array(None) is None
        assert decode_array(None) is None

    def test_action_round_trip(self):
        from repro.cluster.fleet import FleetAction

        action = FleetAction(
            levels=np.array([2, -1, 0], dtype=np.int64),
            per_server_load=np.array([0.5, 0.0, 0.25]),
        )
        back = decode_action(encode_action(action))
        assert np.array_equal(back.levels, action.levels)
        assert np.array_equal(back.per_server_load, action.per_server_load)
        assert decode_action(None) is None

    def test_rng_round_trip_continues_identically(self):
        rng = np.random.default_rng(42)
        rng.random(17)  # advance mid-stream
        clone = decode_rng(json.loads(canonical_dumps(encode_rng(rng)).decode()))
        assert np.array_equal(rng.random(32), clone.random(32))

    def test_environment_fingerprint_distinguishes_worlds(self):
        a = small_scenario(horizon=48, seed=3).environment
        b = small_scenario(horizon=48, seed=4).environment
        assert environment_fingerprint(a) == environment_fingerprint(a)
        assert environment_fingerprint(a) != environment_fingerprint(b)


# -------------------------------------------------------- checkpoint format
class TestCheckpointFormat:
    @given(slots, states)
    @settings(max_examples=100, deadline=None)
    def test_save_load_save_is_byte_identical(self, slot, state):
        data = dumps_checkpoint(slot, state)
        ckpt = loads_checkpoint(data)
        assert ckpt.slot == slot
        assert dumps_checkpoint(ckpt.slot, ckpt.state) == data

    @given(slots, states, st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncation_always_rejected(self, slot, state, data):
        # The final byte is a cosmetic trailing newline the loader tolerates
        # losing; every cut that removes actual data must be rejected.
        blob = dumps_checkpoint(slot, state)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 2))
        with pytest.raises(CheckpointError):
            loads_checkpoint(blob[:cut])

    @given(slots, states, st.data())
    @settings(max_examples=60, deadline=None)
    def test_single_bit_flip_always_rejected(self, slot, state, data):
        blob = bytearray(dumps_checkpoint(slot, state))
        idx = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        blob[idx] ^= 1 << bit
        with pytest.raises(CheckpointError):
            loads_checkpoint(bytes(blob))

    def test_negative_slot_rejected(self):
        with pytest.raises(CheckpointError):
            dumps_checkpoint(-1, {})

    def test_future_version_rejected(self):
        blob = dumps_checkpoint(3, {"q": 1.5})
        header, payload = blob.split(b"\n", 1)
        doc = json.loads(header)
        doc["version"] = 99
        forged = canonical_dumps(doc) + b"\n" + payload
        with pytest.raises(CheckpointError, match="version"):
            loads_checkpoint(forged)

    def test_non_checkpoint_file_rejected(self):
        with pytest.raises(CheckpointError):
            loads_checkpoint(b'{"hello": "world"}\n{}')

    def test_file_round_trip(self, tmp_path):
        path = write_checkpoint(tmp_path, 7, {"queue": 1.25})
        ckpt = load_checkpoint(path)
        assert ckpt.slot == 7
        assert ckpt.state == {"queue": 1.25}
        assert ckpt.path == path


# ----------------------------------------------------- rotation + recovery
class TestRotationAndRecovery:
    def test_rotation_keeps_newest_k(self, tmp_path):
        writer = CheckpointWriter(tmp_path, every=1, keep=3, sync=False)
        for slot in range(1, 11):
            writer.write(slot, {"slot": slot})
        names = [os.path.basename(p) for p in list_checkpoints(tmp_path)]
        assert names == [
            "ckpt-00000008.json",
            "ckpt-00000009.json",
            "ckpt-00000010.json",
        ]

    def test_cadence(self, tmp_path):
        writer = CheckpointWriter(tmp_path, every=4, keep=10, sync=False)
        for slot in range(1, 13):
            writer.maybe_write(slot, lambda: {"slot": slot})
        slot_nums = [
            int(os.path.basename(p)[5:13]) for p in list_checkpoints(tmp_path)
        ]
        assert slot_nums == [4, 8, 12]

    def test_build_state_not_called_off_cadence(self, tmp_path):
        writer = CheckpointWriter(tmp_path, every=100, keep=2, sync=False)
        writer.maybe_write(3, lambda: pytest.fail("capture ran off-cadence"))

    def test_corrupt_newest_falls_back_with_telemetry(self, tmp_path):
        writer = CheckpointWriter(tmp_path, every=1, keep=3, sync=False)
        for slot in range(1, 4):
            writer.write(slot, {"slot": slot})
        newest = checkpoint_path(tmp_path, 3)
        blob = bytearray(open(newest, "rb").read())
        blob[len(blob) // 2] ^= 0x01
        open(newest, "wb").write(bytes(blob))

        tracer = InMemoryTracer()
        ckpt = latest_valid_checkpoint(tmp_path, telemetry=Telemetry(tracer=tracer))
        assert ckpt is not None and ckpt.slot == 2
        rejected = [e for e in tracer.events if e["kind"] == "state.checkpoint_rejected"]
        assert len(rejected) == 1
        assert rejected[0]["path"] == newest

    def test_no_valid_checkpoint_returns_none(self, tmp_path):
        assert latest_valid_checkpoint(tmp_path) is None
        (tmp_path / "ckpt-00000001.json").write_bytes(b"garbage")
        assert latest_valid_checkpoint(tmp_path) is None

    def test_writer_validates_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointWriter(tmp_path, every=0)
        with pytest.raises(ValueError):
            CheckpointWriter(tmp_path, keep=0)


# ----------------------------------------------------------- record files
class TestRecordFiles:
    def test_save_load_round_trip_and_mismatch(self, tmp_path):
        scenario = small_scenario(horizon=48, seed=3)
        record = simulate(
            scenario.model,
            COCA(
                scenario.model,
                scenario.environment.portfolio,
                v_schedule=150.0,
                alpha=scenario.alpha,
            ),
            scenario.environment,
        )
        path = str(tmp_path / "record.npz")
        save_record(record, path)
        back = load_record(path)
        assert record_mismatches(record, back) == []
        tampered = dataclasses.replace(back, cost=back.cost + 1.0)
        assert "cost" in record_mismatches(record, tampered)


# ------------------------------------------------------- resume bit-replay
def _coca(scenario, solver=None):
    return COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=150.0,
        alpha=scenario.alpha,
        solver=solver,
    )


class TestResumeReplay:
    @pytest.mark.parametrize("seed", [3, 5, 9])
    def test_resume_is_bit_identical(self, tmp_path, seed):
        scenario = small_scenario(horizon=48, seed=seed)
        golden = simulate(scenario.model, _coca(scenario), scenario.environment)
        checkpointed = simulate(
            scenario.model,
            _coca(scenario),
            scenario.environment,
            checkpoint=CheckpointWriter(tmp_path, every=1, keep=100, sync=False),
        )
        assert record_mismatches(golden, checkpointed) == []

        kill_slot = 13 + seed
        ckpt = load_checkpoint(checkpoint_path(tmp_path, kill_slot))
        resumed = simulate(
            scenario.model, _coca(scenario), scenario.environment, resume_from=ckpt
        )
        assert record_mismatches(golden, resumed) == []

    def test_resume_under_chaos_with_lossy_bus(self, tmp_path):
        scenario = small_scenario(horizon=36, seed=5)
        schedule = FaultSchedule.generate(
            11,
            horizon=36,
            num_groups=scenario.model.fleet.num_groups,
            failure_rate=0.05,
            mean_repair=4.0,
            signal_rate=0.02,
            loss=0.15,
            delay=0.1,
            duplicate=0.05,
        )

        def run(**kwargs):
            solver = DistributedGSD(iterations=6, rng=np.random.default_rng(11))
            injector = FaultInjector(
                schedule, num_groups=scenario.model.fleet.num_groups
            )
            return simulate(
                scenario.model,
                _coca(scenario, solver=solver),
                scenario.environment,
                faults=injector,
                degradation=DegradationPolicy(),
                **kwargs,
            )

        golden = run()
        run(checkpoint=CheckpointWriter(tmp_path, every=1, keep=100, sync=False))
        ckpt = load_checkpoint(checkpoint_path(tmp_path, 17))
        resumed = run(resume_from=ckpt)
        assert record_mismatches(golden, resumed) == []

    def test_resume_with_gsd_solver(self, tmp_path):
        scenario = small_scenario(horizon=36, seed=7)

        def run(**kwargs):
            solver = GSDSolver(iterations=40, rng=np.random.default_rng(7))
            return simulate(
                scenario.model,
                _coca(scenario, solver=solver),
                scenario.environment,
                **kwargs,
            )

        golden = run()
        run(checkpoint=CheckpointWriter(tmp_path, every=1, keep=100, sync=False))
        ckpt = load_checkpoint(checkpoint_path(tmp_path, 20))
        resumed = run(resume_from=ckpt)
        assert record_mismatches(golden, resumed) == []

    def test_resume_refuses_wrong_environment(self, tmp_path):
        scenario = small_scenario(horizon=48, seed=3)
        simulate(
            scenario.model,
            _coca(scenario),
            scenario.environment,
            checkpoint=CheckpointWriter(tmp_path, every=1, keep=100, sync=False),
        )
        ckpt = load_checkpoint(checkpoint_path(tmp_path, 10))
        other = small_scenario(horizon=48, seed=4)
        with pytest.raises(CheckpointError, match="fingerprint"):
            simulate(other.model, _coca(other), other.environment, resume_from=ckpt)

    def test_resume_refuses_wrong_controller(self, tmp_path):
        from repro.baselines import CarbonUnaware

        scenario = small_scenario(horizon=48, seed=3)
        simulate(
            scenario.model,
            _coca(scenario),
            scenario.environment,
            checkpoint=CheckpointWriter(tmp_path, every=1, keep=100, sync=False),
        )
        ckpt = load_checkpoint(checkpoint_path(tmp_path, 10))
        with pytest.raises(CheckpointError, match="controller"):
            simulate(
                scenario.model,
                CarbonUnaware(scenario.model),
                scenario.environment,
                resume_from=ckpt,
            )

    def test_resume_emits_state_resume_event(self, tmp_path):
        scenario = small_scenario(horizon=48, seed=3)
        simulate(
            scenario.model,
            _coca(scenario),
            scenario.environment,
            checkpoint=CheckpointWriter(tmp_path, every=1, keep=100, sync=False),
        )
        ckpt = load_checkpoint(checkpoint_path(tmp_path, 10))
        tracer = InMemoryTracer()
        simulate(
            scenario.model,
            _coca(scenario),
            scenario.environment,
            resume_from=ckpt,
            telemetry=Telemetry(tracer=tracer),
        )
        resumes = [e for e in tracer.events if e["kind"] == "state.resume"]
        assert len(resumes) == 1 and resumes[0]["slot"] == 10


# -------------------------------------------------- controller state dicts
class TestControllerStateRoundTrips:
    def _mid_run_state(self, controller, scenario, slots=9):
        simulate_slots = scenario.environment
        controller.start(simulate_slots)
        for t in range(slots):
            obs = simulate_slots.observation(t)
            solution = controller.decide(obs)
            from repro.core.controller import SlotOutcome

            controller.observe(
                SlotOutcome(
                    t=t,
                    evaluation=solution.evaluation,
                    offsite=simulate_slots.offsite(t),
                )
            )
        return controller.state_dict()

    def test_coca_state_save_load_save_byte_identical(self):
        scenario = small_scenario(horizon=48, seed=3)
        state = self._mid_run_state(_coca(scenario), scenario)
        first = canonical_dumps(state)
        fresh = _coca(scenario)
        fresh.load_state_dict(json.loads(first))
        assert canonical_dumps(fresh.state_dict()) == first

    def test_injector_state_round_trip_including_empty_schedule(self):
        for schedule in (
            FaultSchedule(events=(), messages=None, seed=None),
            FaultSchedule.generate(5, horizon=48, num_groups=4, signal_rate=0.05),
        ):
            injector = FaultInjector(schedule, num_groups=4)
            for t in range(12):
                injector.begin_slot(t)
            first = canonical_dumps(injector.state_dict())
            clone = FaultInjector(schedule, num_groups=4)
            clone.load_state_dict(json.loads(first))
            assert canonical_dumps(clone.state_dict()) == first

    def test_geo_state_save_load_save_byte_identical(self):
        from repro.geo import GeoCOCA, GeoEnvironment, Site
        from repro.traces import fiu_workload, price_trace, solar_trace

        horizon = 48
        sites = tuple(
            Site(
                name=f"dc{i}",
                model=small_scenario(horizon=horizon, seed=3).model,
                price=price_trace(horizon, seed=50 + i),
                onsite=solar_trace(horizon, seed=60 + i),
            )
            for i in range(2)
        )
        env = GeoEnvironment(
            workload=fiu_workload(horizon, peak=400.0, seed=3),
            sites=sites,
            offsite=solar_trace(horizon, seed=99),
            recs=5.0,
        )
        geo = GeoCOCA(env, v_schedule=100.0)
        for t in range(7):
            result = geo.decide(t)
            geo.observe(t, result)
        first = canonical_dumps(geo.state_dict())
        clone = GeoCOCA(env, v_schedule=100.0)
        clone.load_state_dict(json.loads(first))
        assert canonical_dumps(clone.state_dict()) == first
