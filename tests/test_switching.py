"""Tests for the switching-cost model (Fig. 5(d) substrate)."""

import numpy as np
import pytest

from repro.cluster import OPTERON_MAX_HOURLY_KWH, SwitchingCostModel


class TestFromFraction:
    def test_paper_normalization(self):
        """10% of 0.231 kWh = 0.0231 kWh = 2.31e-5 MWh per toggle."""
        m = SwitchingCostModel.from_fraction(0.10)
        assert m.energy_per_toggle == pytest.approx(2.31e-5)

    def test_zero_fraction_disabled(self):
        m = SwitchingCostModel.from_fraction(0.0)
        assert not m.enabled
        assert m.energy(np.array([0.0]), np.array([100.0])) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SwitchingCostModel.from_fraction(-0.1)
        with pytest.raises(ValueError):
            SwitchingCostModel(energy_per_toggle=-1.0)


class TestTransitionCounting:
    def test_power_on_only_by_default(self):
        m = SwitchingCostModel(energy_per_toggle=1.0)
        prev = np.array([10.0, 20.0])
        new = np.array([15.0, 5.0])
        # 5 turned on in group 0; 15 turned off in group 1 (not charged).
        assert m.transition_count(prev, new) == 5.0

    def test_charge_off_counts_both(self):
        m = SwitchingCostModel(energy_per_toggle=1.0, charge_off=True)
        prev = np.array([10.0, 20.0])
        new = np.array([15.0, 5.0])
        assert m.transition_count(prev, new) == 20.0

    def test_no_change_no_cost(self):
        m = SwitchingCostModel(energy_per_toggle=1.0, charge_off=True)
        same = np.array([7.0, 3.0])
        assert m.energy(same, same) == 0.0

    def test_energy_scales_with_toggle_cost(self):
        m = SwitchingCostModel(energy_per_toggle=0.5)
        assert m.energy(np.array([0.0]), np.array([4.0])) == pytest.approx(2.0)

    def test_cold_start_charges_all(self):
        m = SwitchingCostModel(energy_per_toggle=1.0)
        assert m.energy(np.zeros(3), np.array([10.0, 0.0, 5.0])) == 15.0
