"""Tests for the telemetry subsystem: tracing, metrics, exporters, CLI.

The load-bearing guarantee is the first class: attaching (or omitting)
telemetry must not perturb a single bit of the simulation -- the subsystem
observes the run, it never participates in it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines import CarbonUnaware
from repro.core import COCA
from repro.sim import simulate
from repro.solvers import GSDSolver
from repro.telemetry import (
    NULL_TELEMETRY,
    SCHEMA_VERSION,
    InMemoryTracer,
    JsonlTracer,
    MetricsRegistry,
    Telemetry,
    TraceError,
    coerce,
    load_trace,
    metrics_to_markdown,
    read_jsonl_events,
    render_trace_summary,
    trace_summary_tables,
    write_jsonl_events,
    write_metrics,
)


def _run(scenario, telemetry=None, v=120.0):
    controller = COCA(
        scenario.model, scenario.environment.portfolio, v_schedule=v
    )
    return simulate(
        scenario.model, controller, scenario.environment, telemetry=telemetry
    )


class TestBitIdentical:
    """Telemetry on, off, or absent -- same numbers, always."""

    def test_noop_default_matches_recording(self, week_scenario):
        plain = _run(week_scenario)
        traced = _run(week_scenario, telemetry=Telemetry.recording())
        for field in ("cost", "brown_energy", "active_servers", "queue"):
            np.testing.assert_array_equal(
                getattr(plain, field), getattr(traced, field)
            )

    def test_explicit_null_matches_none(self, week_scenario):
        a = _run(week_scenario, telemetry=None)
        b = _run(week_scenario, telemetry=NULL_TELEMETRY)
        np.testing.assert_array_equal(a.cost, b.cost)

    def test_gsd_unperturbed_by_telemetry(self, hetero_model):
        def gsd_run(telemetry):
            solver = GSDSolver(iterations=60, rng=np.random.default_rng(7))
            if telemetry is not None:
                solver.bind_telemetry(telemetry)
            problem = hetero_model.slot_problem(
                arrival_rate=0.5 * hetero_model.fleet.capacity(hetero_model.gamma),
                onsite=0.0,
                price=40.0,
                q=0.0,
                V=1.0,
            )
            return solver.solve(problem).action.per_server_load

        np.testing.assert_array_equal(
            gsd_run(None), gsd_run(Telemetry.recording())
        )

    def test_null_telemetry_is_inert(self):
        NULL_TELEMETRY.emit("anything", t=0)
        with NULL_TELEMETRY.timer("never.recorded"):
            pass
        assert NULL_TELEMETRY.events == []
        assert not NULL_TELEMETRY.enabled
        assert coerce(None) is NULL_TELEMETRY


class TestEventStream:
    def test_simulate_emits_slot_events(self, week_scenario):
        telemetry = Telemetry.recording()
        record = _run(week_scenario, telemetry=telemetry)
        kinds = [e["kind"] for e in telemetry.events]
        horizon = len(record.cost)
        assert kinds.count("slot.decision") == horizon
        assert kinds.count("slot.outcome") == horizon
        assert kinds.count("queue.update") == horizon
        decision = next(e for e in telemetry.events if e["kind"] == "slot.decision")
        assert {"t", "objective", "planned_cost", "solve_time_s"} <= set(decision)
        outcome = next(e for e in telemetry.events if e["kind"] == "slot.outcome")
        assert outcome["t"] == 0
        assert outcome["cost"] == pytest.approx(float(record.cost[0]))

    def test_queue_update_tracks_deficit_queue(self, week_scenario):
        telemetry = Telemetry.recording()
        record = _run(week_scenario, telemetry=telemetry)
        after = [
            e["after"] for e in telemetry.events if e["kind"] == "queue.update"
        ]
        # record.queue[t] is the depth the slot-t decision saw; the event's
        # "after" is the depth once slot t's outcome is folded in.
        np.testing.assert_allclose(after[:-1], record.queue[1:])

    def test_metrics_aggregates_match_record(self, week_scenario):
        telemetry = Telemetry.recording()
        record = _run(week_scenario, telemetry=telemetry)
        metrics = telemetry.metrics
        assert metrics.counter("sim.slots").value == len(record.cost)
        assert metrics.counter("sim.cost_dollars").value == pytest.approx(
            float(record.cost.sum())
        )
        assert metrics.histogram("sim.solve_time_s").count == len(record.cost)


class TestGSDEvents:
    def _solve(self, hetero_model, **gsd_kwargs):
        telemetry = Telemetry.recording()
        solver = GSDSolver(rng=np.random.default_rng(3), **gsd_kwargs)
        solver.bind_telemetry(telemetry)
        problem = hetero_model.slot_problem(
            arrival_rate=0.6 * hetero_model.fleet.capacity(hetero_model.gamma),
            onsite=0.0,
            price=40.0,
            q=0.0,
            V=1.0,
        )
        solver.solve(problem)
        return telemetry

    def test_one_iteration_event_per_log_interval(self, hetero_model):
        telemetry = self._solve(hetero_model, iterations=40, log_interval=10)
        iteration_events = [
            e for e in telemetry.events if e["kind"] == "gsd.iteration"
        ]
        assert len(iteration_events) == 4
        assert [e["iteration"] for e in iteration_events] == [10, 20, 30, 40]
        for e in iteration_events:
            assert 0.0 <= e["acceptance_rate"] <= 1.0
            assert e["best_objective"] <= e["chain_objective"] + 1e-9

    def test_solve_summary_event_and_metrics(self, hetero_model):
        telemetry = self._solve(hetero_model, iterations=25, log_interval=10)
        solves = [e for e in telemetry.events if e["kind"] == "gsd.solve"]
        assert len(solves) == 1
        assert solves[0]["iterations"] == 25
        assert solves[0]["iterations_to_convergence"] <= 25
        assert telemetry.metrics.counter("gsd.solves").value == 1
        assert telemetry.metrics.histogram("gsd.solve_time_s").count == 1

    def test_log_interval_validated(self):
        with pytest.raises(ValueError, match="log_interval"):
            GSDSolver(log_interval=0)


class TestMetricsRegistry:
    def test_histogram_percentiles_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for v in range(1, 101):  # 1..100
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.mean == pytest.approx(50.5)
        assert hist.max == 100.0
        assert hist.percentile(50) == pytest.approx(np.percentile(range(1, 101), 50))
        assert hist.percentile(90) == pytest.approx(np.percentile(range(1, 101), 90))
        assert hist.percentile(99) == pytest.approx(np.percentile(range(1, 101), 99))

    def test_get_or_create_and_type_conflict(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_state_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        b.gauge("g").set(7.0)
        b.histogram("h").observe(1.0)
        a.merge_state(b.state())
        assert a.counter("n").value == 5
        assert a.gauge("g").value == 7.0
        assert a.histogram("h").count == 1

    def test_snapshot_rows_sorted_with_percentiles(self):
        registry = MetricsRegistry()
        registry.counter("z.count").inc()
        registry.histogram("a.time").observe(2.0)
        rows = registry.snapshot_rows()
        assert [r["metric"] for r in rows] == ["a.time", "z.count"]
        assert rows[0]["p50"] == 2.0


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        events = [
            {"kind": "slot.decision", "t": 0, "objective": 1.5},
            {"kind": "gsd.solve", "iterations": 40, "note": "x"},
        ]
        path = tmp_path / "trace.jsonl"
        write_jsonl_events(events, path)
        read_back = read_jsonl_events(path)
        # Unstamped events acquire the v2 stamps on write; original fields
        # survive untouched.
        for original, loaded in zip(events, read_back):
            assert loaded["schema_version"] == SCHEMA_VERSION
            assert loaded["run_id"]
            assert {k: v for k, v in loaded.items()
                    if k not in ("schema_version", "run_id")} == original

    def test_jsonl_round_trip_preserves_existing_stamps(self, tmp_path):
        events = [
            {"kind": "queue.update", "schema_version": 1, "run_id": "abc", "t": 3}
        ]
        path = tmp_path / "stamped.jsonl"
        write_jsonl_events(events, path)
        assert read_jsonl_events(path) == events

    def test_jsonl_tracer_streams_and_counts(self, tmp_path, week_scenario):
        path = tmp_path / "run.jsonl"
        tracer = JsonlTracer(path)
        _run(week_scenario, telemetry=Telemetry(tracer=tracer))
        tracer.close()
        events = read_jsonl_events(path)
        assert tracer.count == len(events) > 0
        with open(path) as fh:
            for line in fh:
                json.loads(line)  # every line independently valid JSON

    def test_jsonl_tracer_serializes_numpy(self, tmp_path):
        path = tmp_path / "np.jsonl"
        tracer = JsonlTracer(path)
        tracer.emit("e", a=np.float64(1.5), b=np.int64(2), c=np.array([1.0, 2.0]))
        tracer.close()
        (event,) = read_jsonl_events(path)
        assert event == {
            "kind": "e",
            "schema_version": SCHEMA_VERSION,
            "run_id": tracer.run_id,
            "a": 1.5,
            "b": 2,
            "c": [1.0, 2.0],
        }

    def test_read_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "ok"}\n{"no_kind": 1}\n')
        with pytest.raises(ValueError, match=":2"):
            read_jsonl_events(path)

    def test_write_metrics_csv_and_markdown(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("sim.slots").inc(5)
        registry.histogram("sim.solve_time_s").observe(0.25)
        csv_path = tmp_path / "m.csv"
        write_metrics(registry, csv_path)
        text = csv_path.read_text()
        assert text.startswith("metric,")
        assert "sim.slots" in text
        md_path = tmp_path / "m.md"
        write_metrics(registry, md_path)
        assert "|" in md_path.read_text()
        assert "sim.slots" in metrics_to_markdown(registry)


class TestLoadTrace:
    """load_trace: the validating loader behind the CLI trace commands."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            load_trace(str(tmp_path / "nope.jsonl"))

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            load_trace(str(path))

    def test_corrupt_jsonl(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"kind": "ok"}\nnot json at all\n')
        with pytest.raises(TraceError, match="corrupt"):
            load_trace(str(path))

    def test_future_schema_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"kind": "x", "schema_version": SCHEMA_VERSION + 1}) + "\n"
        )
        with pytest.raises(TraceError, match="schema version"):
            load_trace(str(path))

    def test_unstamped_v1_trace_accepted(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        path.write_text('{"kind": "queue.update", "t": 0}\n')
        events = load_trace(str(path))
        assert events == [{"kind": "queue.update", "t": 0}]

    def test_loads_tracer_output(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = JsonlTracer(path)
        tracer.emit("slot.outcome", t=0, cost=1.0)
        tracer.close()
        (event,) = load_trace(str(path))
        assert event["schema_version"] == SCHEMA_VERSION
        assert event["run_id"] == tracer.run_id


class TestInProgressTraces:
    """Reading the ``.part`` stream of a still-running (or killed) run."""

    def _torn_part(self, tmp_path):
        path = tmp_path / "run.jsonl.part"
        path.write_text(
            '{"kind": "slot.outcome", "t": 0}\n'
            '{"kind": "slot.outcome", "t": 1}\n'
            '{"kind": "slot.outc'  # writer killed mid-append
        )
        return path

    def test_torn_tail_tolerated_on_request(self, tmp_path):
        path = self._torn_part(tmp_path)
        events = read_jsonl_events(path, tolerate_torn_tail=True)
        assert [e["t"] for e in events] == [0, 1]
        with pytest.raises(ValueError):  # strict mode still refuses
            read_jsonl_events(path)

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl.part"
        path.write_text('{"kind": "a"}\ngarbage\n{"kind": "b"}\n')
        with pytest.raises(ValueError, match=":2"):
            read_jsonl_events(path, tolerate_torn_tail=True)

    def test_load_trace_reads_part_with_torn_tail(self, tmp_path):
        events = load_trace(str(self._torn_part(tmp_path)))
        assert [e["t"] for e in events] == [0, 1]

    def test_missing_committed_path_hints_at_part_sibling(self, tmp_path):
        self._torn_part(tmp_path)
        with pytest.raises(TraceError, match=r"hint: .*run\.jsonl\.part"):
            load_trace(str(tmp_path / "run.jsonl"))

    def test_cli_consumers_read_part_traces(self, tmp_path, capsys):
        from repro.cli import main

        path = self._torn_part(tmp_path)
        assert main(["telemetry", str(path)]) == 0
        out = tmp_path / "dash.html"
        assert main(["dashboard", "--trace", str(path), "-o", str(out)]) == 0
        assert out.exists()
        capsys.readouterr()


class TestSummary:
    def test_trace_summary_tables(self, week_scenario):
        telemetry = Telemetry.recording()
        record = _run(week_scenario, telemetry=telemetry)
        tables = trace_summary_tables(telemetry.events)
        counts = {r["event"]: r["count"] for r in tables["events"]}
        assert counts["slot.outcome"] == len(record.cost)
        (run_row,) = tables["run"]
        assert run_row["slots"] == len(record.cost)
        assert run_row["total cost [$]"] == pytest.approx(float(record.cost.sum()))
        timers = {r["timer"] for r in tables["timings"]}
        assert any("solve_time_s" in t for t in timers)

    def test_render_trace_summary_is_text(self, week_scenario):
        telemetry = Telemetry.recording()
        _run(week_scenario, telemetry=telemetry)
        text = render_trace_summary(telemetry.events, title="t.jsonl")
        assert "t.jsonl" in text
        assert "slot.outcome" in text

    def test_empty_trace_summary(self):
        assert "0 events" in render_trace_summary([], title="empty")


class TestCLI:
    def test_quickstart_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "q.jsonl"
        metrics = tmp_path / "q.csv"
        rc = main(
            [
                "quickstart",
                "--horizon", "48",
                "--v", "50",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
            ]
        )
        assert rc == 0
        events = read_jsonl_events(trace)
        kinds = {e["kind"] for e in events}
        assert {"slot.decision", "slot.outcome", "queue.update"} <= kinds
        assert metrics.read_text().startswith("metric,")
        out = capsys.readouterr().out
        assert "trace written to" in out and "metrics written to" in out

    def test_telemetry_subcommand_summarizes(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "q.jsonl"
        assert main(
            ["quickstart", "--horizon", "48", "--v", "50", "--trace-out", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["telemetry", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "slot.outcome" in out
        assert "solve_time_s" in out


class TestParallelSweeps:
    def test_sweep_constant_v_parallel_matches_serial(self, week_scenario):
        from repro.analysis import sweep_constant_v

        values = [1.0, 10.0, 100.0]
        serial = sweep_constant_v(week_scenario, values)
        parallel = sweep_constant_v(week_scenario, values, workers=2)
        assert serial == parallel

    def test_overestimation_parallel_matches_serial(self, week_scenario):
        from repro.analysis import overestimation_sweep

        factors = [1.0, 1.2]
        serial = overestimation_sweep(week_scenario, factors, v=50.0)
        parallel = overestimation_sweep(week_scenario, factors, v=50.0, workers=2)
        assert serial == parallel

    def test_budget_sweep_parallel_matches_serial(self, week_scenario):
        from repro.analysis import budget_sweep

        fractions = [0.95, 1.0]
        serial = budget_sweep(
            week_scenario, fractions, include_opt=False, v_iters=4
        )
        parallel = budget_sweep(
            week_scenario, fractions, include_opt=False, v_iters=4, workers=2
        )
        assert serial == parallel

    def test_parallel_sweep_collects_telemetry(self, week_scenario):
        from repro.analysis import sweep_constant_v

        telemetry = Telemetry.recording()
        values = [1.0, 100.0]
        sweep_constant_v(week_scenario, values, workers=2, telemetry=telemetry)
        horizon = week_scenario.horizon
        assert telemetry.metrics.counter("sim.slots").value == len(values) * horizon
        outcomes = [e for e in telemetry.events if e["kind"] == "slot.outcome"]
        assert len(outcomes) == len(values) * horizon


class TestNonFiniteSanitization:
    """Non-finite floats must become ``null`` at the JSONL sink boundary.

    A GSD chain started under a peak-power cap that excludes every
    configuration carries ``best_objective = inf`` through its whole run;
    ``json.dumps`` would happily write the bare ``Infinity`` token, which is
    not JSON and breaks every strict parser downstream.  The tracer
    sanitizes at the boundary, and the CLI consumers (``repro telemetry``,
    ``repro dashboard``) must round-trip the resulting ``null``s.
    """

    def _write_inf_trace(self, tmp_path, tiny_model):
        from dataclasses import replace

        from repro.solvers import InfeasibleError
        from tests.conftest import make_problem

        p = replace(make_problem(tiny_model, lam_frac=0.3), peak_power_cap=1e-9)
        path = tmp_path / "inf.jsonl"
        tracer = JsonlTracer(path)
        solver = GSDSolver(iterations=40, rng=np.random.default_rng(0))
        solver.bind_telemetry(Telemetry(tracer=tracer))
        with pytest.raises(InfeasibleError):
            solver.solve(p)
        tracer.close()
        return path

    def test_trace_is_strict_json(self, tmp_path, tiny_model):
        path = self._write_inf_trace(tmp_path, tiny_model)
        text = path.read_text()
        assert "Infinity" not in text and "NaN" not in text

        def reject(token):  # json only calls this for Infinity/-Infinity/NaN
            raise AssertionError(f"non-strict token {token!r} in trace")

        events = [
            json.loads(line, parse_constant=reject) for line in text.splitlines()
        ]
        solves = [e for e in events if e["kind"] == "gsd.solve"]
        assert solves and solves[0]["best_objective"] is None

    def test_cli_consumers_survive_nulls(self, tmp_path, tiny_model, capsys):
        from repro.cli import main

        path = self._write_inf_trace(tmp_path, tiny_model)
        assert main(["telemetry", str(path)]) == 0
        out = tmp_path / "dash.html"
        assert main(["dashboard", "--trace", str(path), "-o", str(out)]) == 0
        assert out.exists() and "<html" in out.read_text().lower()
        capsys.readouterr()
