"""Tests for the weather-driven time-varying PUE (footnote 1)."""

import numpy as np
import pytest

from repro.baselines import CarbonUnaware, OfflineOptimal
from repro.cluster.thermal import pue_from_temperature, temperature_trace
from repro.sim import Environment, simulate
from repro.solvers.batch import batch_enumerate
from repro.traces import Trace


class TestTemperatureTrace:
    def test_reproducible(self):
        a = temperature_trace(500, seed=1)
        b = temperature_trace(500, seed=1)
        np.testing.assert_array_equal(a.values, b.values)

    def test_seasonal_structure(self):
        t = temperature_trace(8760, seed=2)
        daily = t.values[: 364 * 24].reshape(-1, 24).mean(axis=1)
        july = daily[182:213].mean()
        january = daily[:31].mean()
        assert july > january + 5.0

    def test_diurnal_structure(self):
        t = temperature_trace(24 * 60, seed=2)
        profile = t.daily_profile()
        assert profile[15] > profile[4]

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            temperature_trace(0)


class TestPUEMap:
    def test_floor_below_threshold(self):
        temp = Trace(np.array([5.0, 10.0, 18.0]))
        pue = pue_from_temperature(temp, base_pue=1.1, free_cooling_threshold=18.0)
        np.testing.assert_allclose(pue.values, 1.1)

    def test_linear_above_threshold(self):
        temp = Trace(np.array([20.0, 28.0]))
        pue = pue_from_temperature(
            temp, base_pue=1.1, free_cooling_threshold=18.0, slope_per_degree=0.02
        )
        np.testing.assert_allclose(pue.values, [1.14, 1.3])

    def test_saturation(self):
        temp = Trace(np.array([100.0]))
        pue = pue_from_temperature(temp, max_pue=1.5)
        assert pue.values[0] == 1.5

    def test_validation(self):
        temp = Trace(np.ones(3) * 20.0)
        with pytest.raises(ValueError):
            pue_from_temperature(temp, base_pue=0.9)
        with pytest.raises(ValueError):
            pue_from_temperature(temp, base_pue=1.5, max_pue=1.2)
        with pytest.raises(ValueError):
            pue_from_temperature(temp, slope_per_degree=-0.1)


class TestTimeVaryingPUEEndToEnd:
    def _env_with_pue(self, scenario, pue_values):
        return Environment(
            workload=scenario.environment.workload,
            portfolio=scenario.environment.portfolio,
            price=scenario.environment.price,
            pue=Trace(pue_values),
        )

    def test_constant_override_matches_scaled_power(self, week_scenario):
        sc = week_scenario
        env = self._env_with_pue(sc, np.full(sc.horizon, 1.4))
        base = simulate(sc.model, CarbonUnaware(sc.model), sc.environment)
        hot = simulate(sc.model, CarbonUnaware(sc.model), env)
        # Facility power strictly above the PUE=1 run whenever IT power > 0.
        mask = hot.it_power > 0
        assert np.all(
            hot.facility_power[mask] >= 1.4 * hot.it_power[mask] * (1 - 1e-12)
        )
        assert hot.total_brown > base.total_brown

    def test_pue_below_one_rejected(self, week_scenario):
        sc = week_scenario
        with pytest.raises(ValueError, match=">= 1"):
            self._env_with_pue(sc, np.full(sc.horizon, 0.8))

    def test_batch_sweep_pue_array_matches_scalar(self, tiny_model):
        rng = np.random.default_rng(3)
        n = 32
        lam = rng.uniform(0, 0.8, n) * tiny_model.fleet.capacity(tiny_model.gamma)
        onsite = np.zeros(n)
        price = rng.uniform(20, 60, n)
        scalar = batch_enumerate(tiny_model, lam, onsite, price, pue=1.3)
        array = batch_enumerate(
            tiny_model, lam, onsite, price, pue=np.full(n, 1.3)
        )
        np.testing.assert_allclose(scalar.objective, array.objective)
        np.testing.assert_allclose(scalar.brown_energy, array.brown_energy)

    def test_higher_pue_more_brown(self, tiny_model):
        rng = np.random.default_rng(4)
        n = 24
        lam = rng.uniform(0.2, 0.8, n) * tiny_model.fleet.capacity(tiny_model.gamma)
        onsite = np.zeros(n)
        price = np.full(n, 40.0)
        cool = batch_enumerate(tiny_model, lam, onsite, price, pue=1.1)
        hot = batch_enumerate(tiny_model, lam, onsite, price, pue=1.6)
        assert hot.total_brown > cool.total_brown

    def test_opt_respects_budget_under_pue_trace(self, week_scenario):
        sc = week_scenario
        pue = pue_from_temperature(
            temperature_trace(sc.horizon, seed=5), base_pue=1.1
        )
        env = Environment(
            workload=sc.environment.workload,
            portfolio=sc.environment.portfolio,
            price=sc.environment.price,
            pue=pue,
        )
        budget = 1.05 * sc.budget  # PUE overhead needs some slack
        opt = OfflineOptimal(sc.model, budget=budget, alpha=sc.alpha)
        record = simulate(sc.model, opt, env)
        assert record.total_brown <= budget * (1 + 1e-6)
