"""Tests for the synthetic workload/renewable/price generators."""

import numpy as np
import pytest

from repro.traces import (
    HOURS_PER_DAY,
    HOURS_PER_WEEK,
    HOURS_PER_YEAR,
    fiu_workload,
    msr_week,
    msr_workload,
    price_trace,
    solar_trace,
    wind_trace,
)


class TestFIUWorkload:
    def test_reproducible(self):
        a = fiu_workload(24 * 30, seed=7)
        b = fiu_workload(24 * 30, seed=7)
        np.testing.assert_array_equal(a.values, b.values)

    def test_seed_changes_trace(self):
        a = fiu_workload(24 * 30, seed=7)
        b = fiu_workload(24 * 30, seed=8)
        assert not np.array_equal(a.values, b.values)

    def test_peak_scaling(self):
        trace = fiu_workload(24 * 60, peak=5e5)
        assert trace.peak == pytest.approx(5e5)
        assert trace.values.min() >= 0

    def test_diurnal_structure(self):
        """Afternoon hours should carry more load than pre-dawn hours."""
        trace = fiu_workload(HOURS_PER_YEAR, seed=1)
        profile = trace.daily_profile()
        assert profile[13:16].mean() > 2.0 * profile[2:5].mean()

    def test_weekend_dip(self):
        trace = fiu_workload(HOURS_PER_YEAR, seed=1)
        daily = trace.values[: 364 * 24].reshape(-1, 24).mean(axis=1)
        dow = np.arange(daily.size) % 7
        weekday = daily[dow < 5].mean()
        weekend = daily[dow >= 5].mean()
        assert weekend < weekday

    def test_late_july_surge(self):
        """The paper's Fig. 1(a) feature: late-July peak over June."""
        trace = fiu_workload(HOURS_PER_YEAR, seed=1)
        daily = trace.values[: 364 * 24].reshape(-1, 24).mean(axis=1)
        late_july = daily[198:214].mean()  # ~Jul 18 - Aug 2
        june = daily[152:175].mean()
        assert late_july > 1.2 * june

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            fiu_workload(0)


class TestMSRWorkload:
    def test_week_length_and_normalization(self):
        week = msr_week()
        assert len(week) == HOURS_PER_WEEK
        assert week.peak == pytest.approx(1.0)

    def test_year_is_noisy_repetition(self):
        year = msr_workload(HOURS_PER_YEAR, seed=3, peak=1.0)
        assert len(year) == HOURS_PER_YEAR
        assert year.peak == pytest.approx(1.0)
        # Consecutive weeks correlate strongly (same base pattern) but are
        # not identical (noise).
        w0 = year.values[:HOURS_PER_WEEK]
        w1 = year.values[HOURS_PER_WEEK : 2 * HOURS_PER_WEEK]
        assert not np.array_equal(w0, w1)
        assert np.corrcoef(w0, w1)[0, 1] > 0.5

    def test_weekend_quieter(self):
        week = msr_week(seed=5)
        by_day = week.values.reshape(7, 24).mean(axis=1)
        # Days 2-3 of the window are the weekend in the generator.
        assert by_day[[2, 3]].mean() < by_day[[0, 1, 4, 5, 6]].mean()

    def test_burstier_than_fiu(self):
        """Coefficient of variation of MSR should exceed FIU's (different
        trace shape is the point of Fig. 5(b))."""
        fiu = fiu_workload(HOURS_PER_YEAR, seed=1, peak=1.0)
        msr = msr_workload(HOURS_PER_YEAR, seed=1, peak=1.0)
        cv = lambda x: x.values.std() / x.values.mean()
        assert cv(msr) > cv(fiu)


class TestSolar:
    def test_zero_at_night(self):
        trace = solar_trace(24 * 30, seed=2)
        night = trace.values.reshape(-1, 24)[:, [0, 1, 2, 23]]
        assert np.all(night == 0.0)

    def test_positive_at_noon(self):
        trace = solar_trace(24 * 30, seed=2)
        noon = trace.values.reshape(-1, 24)[:, 12]
        assert np.all(noon >= 0.0)
        assert noon.mean() > 0.1

    def test_summer_beats_winter(self):
        trace = solar_trace(HOURS_PER_YEAR, seed=2)
        daily = trace.values[: 364 * 24].reshape(-1, 24).sum(axis=1)
        summer = daily[152:244].mean()
        winter = np.concatenate([daily[:60], daily[334:]]).mean()
        assert summer > winter

    def test_nonnegative_and_reproducible(self):
        a = solar_trace(500, seed=9)
        b = solar_trace(500, seed=9)
        np.testing.assert_array_equal(a.values, b.values)
        assert a.values.min() >= 0


class TestWind:
    def test_bounded_by_rated_capacity(self):
        trace = wind_trace(HOURS_PER_YEAR, seed=4)
        assert trace.values.min() >= 0.0
        assert trace.values.max() <= 1.0

    def test_available_at_night(self):
        """Wind (unlike solar) produces at night."""
        trace = wind_trace(24 * 90, seed=4)
        night = trace.values.reshape(-1, 24)[:, 2]
        assert night.mean() > 0.05

    def test_autocorrelated(self):
        trace = wind_trace(24 * 90, seed=4)
        x = trace.values
        corr = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert corr > 0.7

    def test_sometimes_calm_sometimes_rated(self):
        trace = wind_trace(HOURS_PER_YEAR, seed=4)
        assert (trace.values == 0.0).mean() > 0.01
        assert (trace.values == 1.0).mean() > 0.01


class TestPrice:
    def test_mean_and_floor(self):
        trace = price_trace(HOURS_PER_YEAR, mean_price=35.0, seed=5)
        assert trace.values.min() >= 5.0
        assert trace.mean == pytest.approx(35.0, rel=0.15)

    def test_diurnal_shape(self):
        trace = price_trace(HOURS_PER_YEAR, seed=5)
        profile = trace.daily_profile()
        assert profile[17] > profile[3]

    def test_spikes_exist(self):
        trace = price_trace(HOURS_PER_YEAR, seed=5)
        assert trace.peak > 3.0 * trace.mean

    def test_reproducible(self):
        a = price_trace(300, seed=11)
        b = price_trace(300, seed=11)
        np.testing.assert_array_equal(a.values, b.values)
