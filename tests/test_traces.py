"""Tests for the Trace container and its transformations."""

import numpy as np
import pytest

from repro.traces import Trace
from repro.traces.base import HOURS_PER_DAY


class TestConstruction:
    def test_values_copied_and_readonly(self):
        src = np.array([1.0, 2.0, 3.0])
        trace = Trace(src)
        src[0] = 99.0
        assert trace[0] == 1.0
        with pytest.raises(ValueError):
            trace.values[0] = 5.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            Trace(np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            Trace(np.ones((2, 2)))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            Trace(np.array([1.0, np.nan]))
        with pytest.raises(ValueError, match="non-finite"):
            Trace(np.array([1.0, np.inf]))

    def test_casts_ints_to_float(self):
        trace = Trace(np.array([1, 2, 3]))
        assert trace.values.dtype == np.float64


class TestStatistics:
    def test_peak_total_mean(self):
        trace = Trace(np.array([1.0, 3.0, 2.0]))
        assert trace.peak == 3.0
        assert trace.total == 6.0
        assert trace.mean == 2.0

    def test_len_and_iter(self):
        trace = Trace(np.array([1.0, 2.0]))
        assert len(trace) == 2
        assert list(trace) == [1.0, 2.0]
        assert trace.horizon == 2


class TestScaling:
    def test_scale_to_peak(self):
        trace = Trace(np.array([2.0, 4.0])).scale_to_peak(10.0)
        assert trace.peak == pytest.approx(10.0)
        assert trace[0] == pytest.approx(5.0)

    def test_scale_to_total(self):
        trace = Trace(np.array([1.0, 3.0])).scale_to_total(8.0)
        assert trace.total == pytest.approx(8.0)

    def test_normalized_has_unit_peak(self):
        trace = Trace(np.array([5.0, 2.0])).normalized()
        assert trace.peak == pytest.approx(1.0)

    def test_scale_zero_trace_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(3)).scale_to_peak(1.0)
        with pytest.raises(ValueError):
            Trace(np.zeros(3)).scale_to_total(1.0)

    def test_name_and_unit_preserved(self):
        trace = Trace(np.array([1.0]), name="w", unit="req/s").scale(2.0)
        assert trace.name == "w" and trace.unit == "req/s"


class TestTransformations:
    def test_clip(self):
        trace = Trace(np.array([-1.0, 0.5, 2.0])).clip(0.0, 1.0)
        assert list(trace) == [0.0, 0.5, 1.0]

    def test_shift(self):
        assert Trace(np.array([1.0]))\
            .shift(2.0)[0] == 3.0

    def test_slice(self):
        trace = Trace(np.arange(10.0)).slice(2, 5)
        assert list(trace) == [2.0, 3.0, 4.0]

    def test_slice_bounds_checked(self):
        with pytest.raises(ValueError):
            Trace(np.arange(5.0)).slice(3, 11)
        with pytest.raises(ValueError):
            Trace(np.arange(5.0)).slice(4, 4)

    def test_repeat_to_tiles_and_truncates(self):
        trace = Trace(np.array([1.0, 2.0, 3.0])).repeat_to(7)
        assert list(trace) == [1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]

    def test_repeat_to_shorter_truncates(self):
        assert len(Trace(np.arange(10.0)).repeat_to(4)) == 4

    def test_map(self):
        trace = Trace(np.array([1.0, 4.0])).map(np.sqrt)
        assert list(trace) == [1.0, 2.0]

    def test_with_noise_bounded(self, rng):
        base = Trace(np.full(1000, 10.0))
        noisy = base.with_noise(rng, 0.4)
        assert noisy.values.min() >= 6.0 - 1e-12
        assert noisy.values.max() <= 14.0 + 1e-12
        assert noisy.values.std() > 0

    def test_with_noise_zero_is_identity(self, rng):
        base = Trace(np.arange(1.0, 5.0))
        noisy = base.with_noise(rng, 0.0)
        np.testing.assert_allclose(noisy.values, base.values)

    def test_with_noise_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            Trace(np.ones(3)).with_noise(rng, -0.1)


class TestAverages:
    def test_running_average(self):
        trace = Trace(np.array([2.0, 4.0, 6.0]))
        np.testing.assert_allclose(trace.running_average(), [2.0, 3.0, 4.0])

    def test_moving_average_growing_head(self):
        trace = Trace(np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_allclose(
            trace.moving_average(2), [1.0, 1.5, 2.5, 3.5]
        )

    def test_moving_average_window_one_is_identity(self):
        trace = Trace(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_allclose(trace.moving_average(1), trace.values)

    def test_moving_average_large_window_equals_running(self):
        trace = Trace(np.arange(10.0))
        np.testing.assert_allclose(
            trace.moving_average(100), trace.running_average()
        )

    def test_daily_profile(self):
        values = np.tile(np.arange(24.0), 3)
        profile = Trace(values).daily_profile()
        np.testing.assert_allclose(profile, np.arange(24.0))

    def test_daily_profile_needs_a_day(self):
        with pytest.raises(ValueError):
            Trace(np.ones(5)).daily_profile()

    def test_describe_mentions_name(self):
        assert "foo" in Trace(np.ones(3), name="foo").describe()
